#!/usr/bin/env bash
# CI gate for the projtile workspace: build, test, lint, format.
#
# Usage: scripts/ci.sh [--no-bench-build] [--no-bench-smoke]
#
# Mirrors the tier-1 verify command (`cargo build --release && cargo test -q`)
# and adds clippy (warnings are errors) and rustfmt checks over all targets,
# including the Criterion benches the tier-1 command does not compile, plus a
# bench smoke run (`report --bench` on a tiny budget) that executes every
# snapshot workload — including the warm-started batched LP sweeps and their
# cold differential twins — so solver regressions that only manifest under
# the batched path fail CI even when unit tests pass.

set -euo pipefail
cd "$(dirname "$0")/.."

build_benches=1
bench_smoke=1
for arg in "$@"; do
    case "$arg" in
        --no-bench-build) build_benches=0 ;;
        --no-bench-smoke) bench_smoke=0 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q (PROJTILE_THREADS=4: multi-threaded sweeps + SharedEngine stress)"
PROJTILE_THREADS=4 cargo test -q

echo "==> cargo build --examples (engine-session example programs)"
cargo build --examples

echo "==> cargo test --doc (runnable documentation examples)"
cargo test -q --doc

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

if [ "$build_benches" = 1 ]; then
    echo "==> cargo build --benches (compile Criterion benches)"
    cargo build --benches --workspace
fi

if [ "$bench_smoke" = 1 ]; then
    echo "==> bench smoke (report --bench, tiny budget)"
    smoke_out="$(mktemp)"
    cargo run --release -q -p projtile-bench --bin report -- \
        --bench --budget-ms 25 --label ci-smoke --out "$smoke_out"
    # A well-formed snapshot must mention the warm-started sweep workloads.
    grep -q "subset_enumeration_cold" "$smoke_out"
    grep -q "parametric/exponent_vs_beta" "$smoke_out"
    grep -q "parametric/exponent_surface" "$smoke_out"
    grep -q "engine/cold" "$smoke_out"
    grep -q "engine/cache_hit" "$smoke_out"
    grep -q "engine/concurrent" "$smoke_out"
    grep -q "engine/evicted_rewarm" "$smoke_out"
    grep -q "engine/snapshot_restore" "$smoke_out"
    rm -f "$smoke_out"
fi

echo "==> cargo clippy --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "ci.sh: all checks passed"
