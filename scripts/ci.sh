#!/usr/bin/env bash
# CI gate for the projtile workspace: build, test, lint, format.
#
# Usage: scripts/ci.sh [--no-bench-build]
#
# Mirrors the tier-1 verify command (`cargo build --release && cargo test -q`)
# and adds clippy (warnings are errors) and rustfmt checks over all targets,
# including the Criterion benches the tier-1 command does not compile.

set -euo pipefail
cd "$(dirname "$0")/.."

build_benches=1
for arg in "$@"; do
    case "$arg" in
        --no-bench-build) build_benches=0 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [ "$build_benches" = 1 ]; then
    echo "==> cargo build --benches (compile Criterion benches)"
    cargo build --benches --workspace
fi

echo "==> cargo clippy --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "ci.sh: all checks passed"
