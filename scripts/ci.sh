#!/usr/bin/env bash
# CI gate for the projtile workspace: build, test, lint, format.
#
# Usage: scripts/ci.sh [--no-bench-build] [--no-bench-smoke] [--no-service-smoke]
#
# Mirrors the tier-1 verify command (`cargo build --release && cargo test -q`)
# and adds clippy (warnings are errors) and rustfmt checks over all targets,
# including the Criterion benches the tier-1 command does not compile, plus a
# bench smoke run (`report --bench` on a tiny budget) that executes every
# snapshot workload — including the warm-started batched LP sweeps and their
# cold differential twins — so solver regressions that only manifest under
# the batched path fail CI even when unit tests pass.

set -euo pipefail
cd "$(dirname "$0")/.."

build_benches=1
bench_smoke=1
service_smoke=1
for arg in "$@"; do
    case "$arg" in
        --no-bench-build) build_benches=0 ;;
        --no-bench-smoke) bench_smoke=0 ;;
        --no-service-smoke) service_smoke=0 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q -p projtile-lint (the linter's own suite gates first)"
cargo test -q -p projtile-lint

echo "==> projtile-lint (workspace conventions; gating, see docs/lints.md)"
lint_json="${LINT_ARTIFACT:-target/lint-findings.json}"
mkdir -p "$(dirname "$lint_json")"
lint_start="$(date +%s)"
cargo run --release -q -p projtile-lint -- --json --baseline lint-baseline.txt \
    >"$lint_json" \
    || { echo "lint findings (artifact: $lint_json):" >&2; cat "$lint_json" >&2; exit 1; }
lint_secs=$(( $(date +%s) - lint_start ))
echo "    lint artifact: $lint_json (${lint_secs}s)"
if [ "$lint_secs" -gt 30 ]; then
    echo "projtile-lint took ${lint_secs}s (budget: 30s); the interprocedural \
pass must stay interactive" >&2
    exit 1
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q (PROJTILE_THREADS=4: multi-threaded sweeps + SharedEngine stress)"
PROJTILE_THREADS=4 cargo test -q

echo "==> cargo build --examples (engine-session example programs)"
cargo build --examples

echo "==> cargo test --doc (runnable documentation examples)"
cargo test -q --doc

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

if [ "$build_benches" = 1 ]; then
    echo "==> cargo build --benches (compile Criterion benches)"
    cargo build --benches --workspace
fi

if [ "$bench_smoke" = 1 ]; then
    echo "==> bench smoke (report --bench, tiny budget)"
    smoke_out="$(mktemp)"
    cargo run --release -q -p projtile-bench --bin report -- \
        --bench --budget-ms 25 --label ci-smoke --out "$smoke_out"
    # A well-formed snapshot must mention the warm-started sweep workloads.
    grep -q "subset_enumeration_cold" "$smoke_out"
    grep -q "parametric/exponent_vs_beta" "$smoke_out"
    grep -q "parametric/exponent_surface" "$smoke_out"
    grep -q "engine/cold" "$smoke_out"
    grep -q "engine/cache_hit" "$smoke_out"
    grep -q "engine/concurrent" "$smoke_out"
    grep -q "engine/evicted_rewarm" "$smoke_out"
    grep -q "engine/snapshot_restore" "$smoke_out"
    grep -q "service/roundtrip" "$smoke_out"
    grep -q "service/mixed_4threads/secs_per_request" "$smoke_out"
    grep -q "service/mixed_4threads/p99" "$smoke_out"
    grep -q "service/mixed_traffic/secs_per_request" "$smoke_out"
    grep -q "service/mixed_traffic/p99" "$smoke_out"
    rm -f "$smoke_out"
fi

if [ "$service_smoke" = 1 ]; then
    echo "==> service smoke (boot projtile-serve, verify bitwise, fault drill, drain)"
    snap_dir="$(mktemp -d)"
    serve_log="$(mktemp)"

    # Stage 1: clean server. Boot with a snapshot store AND a trace recorder
    # (PROJTILE_TRACE_CAPACITY), check health, run the bitwise oracle check
    # (`verify` compares every served answer against a cold local Engine),
    # then the cache-policy-lab drill: drive seeded generated load over HTTP,
    # drain the recorded trace via GET /trace, and replay it through the
    # exact-LRU simulator, which must reproduce the live hit/miss accounting
    # event for event (`--check-live` exits nonzero otherwise). Finally
    # drain — which must publish a final snapshot generation.
    PROJTILE_TRACE_CAPACITY=65536 \
        cargo run --release -q -p projtile-service --bin projtile-serve -- \
        --addr 127.0.0.1:0 --snapshot-dir "$snap_dir" \
        --snapshot-interval-ms 200 >"$serve_log" 2>&1 &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$serve_log")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "server never reported an address" >&2; exit 1; }
    query() { cargo run --release -q -p projtile-service --bin projtile-query -- --seed 42 "$@"; }
    lab() { cargo run --release -q -p projtile-lab --bin projtile-lab -- "$@"; }
    query "$addr" health
    query "$addr" verify
    trace_file="$(mktemp)"
    lab drive "$addr" --seed 42 --pattern mixed --batches 24
    lab drain "$addr" --out "$trace_file"
    lab replay "$trace_file" --check-live
    rm -f "$trace_file"
    query "$addr" drain
    wait "$serve_pid"
    ls "$snap_dir"/snap-*.json >/dev/null \
        || { echo "drain published no snapshot generation" >&2; exit 1; }

    # Stage 2: fault drill. Restart from the same store with injected panics
    # and torn snapshots; the client's retries must still get bitwise-exact
    # answers, and the store must stay restorable (verified by stage 3).
    PROJTILE_FAULTS=panic_every=3,torn_snapshot_every=2 \
        cargo run --release -q -p projtile-service --bin projtile-serve -- \
        --addr 127.0.0.1:0 --snapshot-dir "$snap_dir" \
        --snapshot-interval-ms 100 >"$serve_log" 2>&1 &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$serve_log")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "fault server never reported an address" >&2; exit 1; }
    # panic_every=3 counts analyze requests, and `verify` is exactly one, so
    # the cadence is deterministic: 1 ok, 2 ok, 3 panics (500), 4 ok again —
    # proving the panic is isolated and the engine stays exact afterwards.
    query "$addr" verify
    query "$addr" verify
    if query "$addr" verify; then
        echo "third analyze request should have answered 500" >&2
        exit 1
    fi
    query "$addr" verify
    query "$addr" drain
    wait "$serve_pid"

    # Stage 3: recovery. A third server restores from whatever the fault run
    # left behind (torn tmp files must be skipped) and still verifies.
    cargo run --release -q -p projtile-service --bin projtile-serve -- \
        --addr 127.0.0.1:0 --snapshot-dir "$snap_dir" >"$serve_log" 2>&1 &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$serve_log")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "recovery server never reported an address" >&2; exit 1; }
    query "$addr" verify
    query "$addr" drain
    wait "$serve_pid"
    rm -rf "$snap_dir" "$serve_log"
fi

echo "==> cargo clippy --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "ci.sh: all checks passed"
