//! `any::<T>()` — full-domain strategies for machine types.

use core::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_varies() {
        let mut rng = TestRng::new(9);
        let a = any::<u64>().generate(&mut rng);
        let b = any::<u64>().generate(&mut rng);
        assert_ne!(a, b);
    }
}
