//! Minimal `proptest`-compatible property-testing harness.
//!
//! The build environment has no access to crates.io, so this in-workspace
//! crate implements the slice of the `proptest` API that `projtile`'s test
//! suites use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`];
//! * integer range strategies (`lo..hi`, `lo..=hi`), [`any`],
//!   [`collection::vec`], [`bool::ANY`], tuple strategies, `prop_map`, and
//!   [`strategy::Just`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! case number and the deterministic seed, which is enough to reproduce it
//! (generation is seeded from the case index only).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Error raised inside a property body by the `prop_*` macros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; another input is drawn.
    Reject,
    /// The property failed with the given message.
    Fail(String),
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) so the harness can report the case number and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts exact equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case unless the condition holds; the harness draws a
/// fresh input instead of counting the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Mirrors proptest's macro for bodies of the form
/// `#[test] fn name(arg in strategy, ...) { ... }` with an optional
/// `#![proptest_config(...)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut case: u32 = 0;
                let mut rejects: u32 = 0;
                while case < config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        case,
                        rejects,
                    );
                    $( let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng); )+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => case += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejects += 1;
                            assert!(
                                rejects < config.cases.saturating_mul(64).max(1024),
                                "proptest `{}`: too many prop_assume! rejections",
                                stringify!($name),
                            );
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {case} (rejects {rejects}): {msg}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_range(a in -50i64..50, b in 1u64..=7, c in 0usize..3) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!((1..=7).contains(&b));
            prop_assert!(c < 3);
        }

        #[test]
        fn tuples_and_maps_compose(
            (x, y) in (0i64..10, 0i64..10),
            z in (0u32..5).prop_map(|v| v * 2),
        ) {
            prop_assert!(x + y <= 18);
            prop_assert_eq!(z % 2, 0);
        }

        #[test]
        fn vec_respects_size_range(v in crate::collection::vec(0u64..64, 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(v.iter().all(|&x| x < 64));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0i64..10) {
            prop_assume!(a != 3);
            prop_assert_ne!(a, 3);
        }

        #[test]
        fn any_and_bool_generate(x in any::<u64>(), flag in crate::bool::ANY) {
            // Trivially true; exercises the generators.
            prop_assert!(u64::from(flag) <= 1 && x.count_ones() <= 64);
        }

        #[test]
        fn just_yields_constant(v in Just(41)) {
            prop_assert_eq!(v, 41);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..1000, 5..10);
        let a = s.generate(&mut TestRng::for_case("det", 7, 0));
        let b = s.generate(&mut TestRng::for_case("det", 7, 0));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(a in 0i64..10) {
                prop_assert!(a > 100, "a = {a}");
            }
        }
        always_fails();
    }
}
