//! Configuration and the deterministic RNG behind the harness.

/// Per-suite configuration (`ProptestConfig::with_cases(n)`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator. Each case draws from a seed derived
/// from the test name, case index, and rejection count, so failures are
/// reproducible from the numbers in the panic message alone.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for a given seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// RNG for one case of a named property.
    pub fn for_case(name: &str, case: u32, rejects: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case coordinates.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h ^ ((case as u64) << 32) ^ rejects as u64)
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next pseudo-random 128-bit value.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        // Modulo bias is negligible for testing purposes.
        self.next_u128() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x", 3, 1);
        let mut b = TestRng::for_case("x", 3, 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4, 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            assert!(rng.below_u128(17) < 17);
        }
    }
}
