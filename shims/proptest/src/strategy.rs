//! The [`Strategy`] trait, integer range strategies, tuples, and adapters.

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Regenerates until `f` accepts the value (up to an attempt cap).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// Integer types usable as range strategies. Implemented over `i128`/`u128`
/// arithmetic so a single code path covers every machine-int width.
pub trait RangeValue: Copy {
    /// Widens to `i128`.
    fn to_wide(self) -> i128;
    /// Narrows from `i128` (the value is known to be in range).
    fn from_wide(wide: i128) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_wide(self) -> i128 {
                self as i128
            }
            fn from_wide(wide: i128) -> $t {
                wide as $t
            }
        }
    )*};
}

impl_range_value!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_wide();
        let hi = self.end.to_wide();
        assert!(lo < hi, "empty range strategy");
        let span = (hi - lo) as u128;
        T::from_wide(lo + rng.below_u128(span) as i128)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start().to_wide();
        let hi = self.end().to_wide();
        assert!(lo <= hi, "empty range strategy");
        let span = (hi - lo) as u128 + 1;
        T::from_wide(lo + rng.below_u128(span) as i128)
    }
}

// i128/u128 ranges cannot ride the widening path (the span may overflow),
// so they draw raw 128-bit values and reduce into the range.
impl Strategy for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below_u128(span) as i128)
    }
}

impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_small_domains() {
        let mut rng = TestRng::new(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[(0usize..5).generate(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = TestRng::new(4);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            match (1u32..=3).generate(&mut rng) {
                1 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn i128_range_in_bounds() {
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let v = (-1_000_000_000_000i128..1_000_000_000_000).generate(&mut rng);
            assert!((-1_000_000_000_000..1_000_000_000_000).contains(&v));
        }
    }

    #[test]
    fn filter_applies_predicate() {
        let mut rng = TestRng::new(6);
        let s = (0i64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
