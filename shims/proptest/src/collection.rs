//! Collection strategies (`proptest::collection::vec`).

use core::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u128 + 1;
        let len = self.size.min + rng.below_u128(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_length() {
        let mut rng = TestRng::new(2);
        let v = vec(0u64..10, 5).generate(&mut rng);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn ranged_length() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let v = vec(0u64..10, 1..4).generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }
}
