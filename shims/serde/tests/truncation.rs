//! Prefix-truncation fuzz: a socket can hand the parser any byte prefix of
//! a valid document (a client disconnects mid-request, a snapshot write is
//! torn). For every char-boundary prefix of a corpus covering each
//! syntactic construct, `json::parse` must return — never panic — and every
//! parse error must carry a byte position so service logs point at the
//! offending offset.

use serde::json;

/// One document per syntactic construct the grammar supports: nested
/// containers, every escape form, surrogate pairs, signed/fractional/
/// exponent numbers, literals, deep-ish nesting, and unicode text.
const CORPUS: &[&str] = &[
    r#"{"version":1,"entries":[{"canonical":{"indices":[{"name":"i","bound":64}],"arrays":[{"name":"A","support":1}]},"orientations":[{"loops":[0],"arrays":[0]}]}],"betas":[{"entry":0,"m":256,"value":["3/4"]}]}"#,
    r#"[null,true,false,0,-1,123456789012345678901234567890,1.5,-2.75e-3,1e10]"#,
    r#""plain string""#,
    r#""escapes: \" \\ \/ \n \r \t \b \f \u0041""#,
    "\"surrogate pair: \\ud83d\\ude00 done\"",
    r#"{"unicode":"héllo wörld ≤ θ","empty":{},"empty_list":[]}"#,
    r#"[[[[[[[[[["deep"]]]]]]]]]]"#,
    r#"{"a":{"b":{"c":[1,[2,[3,{"d":"e"}]]]}}}"#,
];

#[test]
fn every_prefix_parses_or_errors_with_position() {
    for doc in CORPUS {
        let full = json::parse(doc).unwrap_or_else(|e| panic!("corpus doc must parse: {e}"));
        // Round-trip sanity: printing and reparsing is the identity.
        let printed = json::to_string(&full);
        assert_eq!(json::parse(&printed).unwrap(), full, "round trip of {doc}");
        for (end, _) in doc.char_indices() {
            let prefix = &doc[..end];
            // The call must return; proper prefixes that happen to be valid
            // JSON (e.g. a truncated number literal) may legitimately
            // parse, so only the *error* shape is asserted.
            if let Err(e) = json::parse(prefix) {
                let msg = e.to_string();
                assert!(
                    msg.contains("at byte"),
                    "error for prefix {prefix:?} lacks a byte position: {msg}"
                );
            }
        }
    }
}

#[test]
fn truncation_points_inside_tokens_report_positions() {
    // Spot-check the constructs whose errors historically lacked positions:
    // each truncated document must name a byte offset in its error.
    let cases = [
        (r#"{"key": "#, "end of input mid-object"),
        (r#"["a", "#, "end of input mid-array"),
        (r#""unterminated"#, "unterminated string"),
        (r#""bad escape \u00"#, "truncated unicode escape"),
        (r#""bad escape \q""#, "invalid escape"),
        ("\"lone \\ud83d\"", "lone surrogate"),
        ("\"pair \\ud83d\\u0041\"", "unpaired high surrogate"),
        (r#"{"k" 1}"#, "missing colon"),
        (r#"[1 2]"#, "missing comma"),
        (r#"-"#, "bare minus sign"),
        (r#"nul"#, "truncated literal"),
    ];
    for (doc, what) in cases {
        let err = json::parse(doc).expect_err(what);
        let msg = err.to_string();
        assert!(
            msg.contains("at byte"),
            "{what}: error lacks a byte position: {msg}"
        );
    }
}
