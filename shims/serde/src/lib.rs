//! Minimal `serde` shim: no-op `Serialize` / `Deserialize` derive macros.
//!
//! The build environment has no access to crates.io. The workspace only uses
//! serde as `#[derive(Serialize, Deserialize)]` markers on plain data types —
//! nothing consumes the generated impls (there is no serde_json or similar in
//! the dependency set) — so the derives expand to nothing. Swapping this shim
//! for the real `serde` crate requires no source changes.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive macro.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive macro.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
