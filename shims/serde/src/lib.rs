//! In-workspace `serde` shim: a small, real serialization framework.
//!
//! The build environment has no access to crates.io, so this crate stands in
//! for `serde` (+ `serde_json`). Until PR 4 the shim's derives expanded to
//! nothing; the engine's wire-ready results need actual serialization, so the
//! shim now provides:
//!
//! * a JSON-shaped tree model ([`Value`]) with an exact printer and parser
//!   ([`json`]);
//! * [`Serialize`] / [`Deserialize`] traits over that model, implemented for
//!   the primitive and container types the workspace uses;
//! * working derive macros (re-exported from the `serde_derive` shim crate)
//!   for structs and externally-tagged enums.
//!
//! # Relation to real serde
//!
//! The derive attribute surface (`#[derive(Serialize, Deserialize)]`) and the
//! JSON wire format (field names as keys, externally tagged enums, newtype
//! transparency) match real serde's defaults, so documents produced here are
//! what `serde_json` would produce for the same types. The *trait shape* is
//! simplified: instead of serde's visitor architecture, `Serialize` produces
//! a [`Value`] tree and `Deserialize` consumes one. Swapping in the real
//! crates would keep every `#[derive(...)]` line unchanged; only direct
//! callers of [`json`] / manual trait impls (the `Rational` and engine wire
//! code) would need the mechanical rewrite to `serde_json` idioms.
//!
//! # Exactness
//!
//! `f64` values are printed with Rust's shortest-round-trip formatting and
//! re-parsed bit-exactly (non-finite values are encoded as tagged strings,
//! which plain JSON cannot represent); integers are carried as `i128`; exact
//! rationals serialize as `"p/q"` strings on the `projtile-arith` side. A
//! serialize → print → parse → deserialize round trip is therefore lossless
//! for every type in the workspace, which the engine's wire tests pin.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number without fractional or exponent part, within `i128`.
    Int(i128),
    /// Any other JSON number.
    Float(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object; insertion order is preserved when printing.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected an object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as an array of exactly `len` elements (used by
    /// derived impls for tuple structs and tuple enum variants).
    pub fn array_of(&self, len: usize, what: &str) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(Error::custom(format!(
                "expected {len} elements for {what}, found {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "expected an array for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// A short human-readable name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) | Value::Float(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}

/// A (de)serialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the document tree.
pub trait Serialize {
    /// Serializes `self` as a [`Value`].
    fn serialize(&self) -> Value;
}

/// Conversion from the document tree.
pub trait Deserialize: Sized {
    /// Deserializes a value of `Self` from `v`.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Implementations for primitives and containers
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::custom(format!(
                            "{i} out of range for {}", stringify!($t)
                        ))
                    }),
                    other => Err(Error::custom(format!(
                        "expected an integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected a boolean, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            // Non-finite floats are encoded as tagged strings (see `json`).
            Value::String(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                other => Err(Error::custom(format!("expected a number, found {other:?}"))),
            },
            other => Err(Error::custom(format!(
                "expected a number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected an array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = v.array_of(2, "a pair")?;
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = v.array_of(3, "a triple")?;
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// JSON printing and parsing for [`Value`] trees (the `serde_json` corner of
/// the shim).
pub mod json {
    use super::{Deserialize, Error, Serialize, Value};

    /// Maximum container nesting depth the parser accepts. The parser
    /// recurses once per nesting level, so an unbounded depth would let a
    /// hostile or corrupt document (e.g. a tampered engine snapshot of
    /// `[[[[…`) overflow the stack; beyond this cap it returns a parse
    /// error instead. 128 levels is far deeper than any document this
    /// workspace produces.
    pub const MAX_DEPTH: usize = 128;

    /// Serializes `t` and prints it as compact JSON.
    pub fn to_string<T: Serialize + ?Sized>(t: &T) -> String {
        let mut out = String::new();
        write_value(&t.serialize(), &mut out);
        out
    }

    /// Serializes `t` into a [`Value`] tree.
    pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
        t.serialize()
    }

    /// Deserializes a `T` from a [`Value`] tree.
    pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
        T::deserialize(v)
    }

    /// Parses JSON text and deserializes a `T` from it.
    pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
        T::deserialize(&parse(s)?)
    }

    /// Parses JSON text into a [`Value`] tree.
    pub fn parse(s: &str) -> Result<Value, Error> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::custom(format!(
                "trailing characters after JSON value at byte {pos}"
            )));
        }
        Ok(value)
    }

    fn write_value(v: &Value, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Rust's shortest-round-trip formatting: parsing the
                    // printed decimal recovers the exact bit pattern.
                    out.push_str(&format!("{f}"));
                    if f.fract() == 0.0 && !format!("{f}").contains(['e', 'E', '.']) {
                        out.push_str(".0");
                    }
                } else if f.is_nan() {
                    out.push_str("\"NaN\"");
                } else if *f > 0.0 {
                    out.push_str("\"inf\"");
                } else {
                    out.push_str("\"-inf\"");
                }
            }
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(item, out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    write_value(v, out);
                }
                out.push('}');
            }
        }
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                '\u{08}' => out.push_str("\\b"),
                '\u{0C}' => out.push_str("\\f"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{lit}` at byte {}", *pos)))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::custom(format!(
                "JSON nesting deeper than {MAX_DEPTH} levels at byte {}",
                *pos
            )));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(Error::custom(format!(
                "unexpected end of JSON input at byte {}",
                *pos
            ))),
            Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
            Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
            Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(Value::String),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos, depth + 1)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {pos}",
                                pos = *pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut entries = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, ":")?;
                    let value = parse_value(bytes, pos, depth + 1)?;
                    entries.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {pos}",
                                pos = *pos
                            )))
                        }
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(Error::custom(format!("expected a string at byte {}", *pos)));
        }
        let start = *pos;
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => {
                    return Err(Error::custom(format!(
                        "unterminated string starting at byte {start}"
                    )))
                }
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hi = parse_hex4(bytes, *pos + 1)?;
                            *pos += 4;
                            // Combine surrogate pairs; lone surrogates error.
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                if bytes.get(*pos + 1) == Some(&b'\\')
                                    && bytes.get(*pos + 2) == Some(&b'u')
                                {
                                    let lo = parse_hex4(bytes, *pos + 3)?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::custom(format!(
                                            "high surrogate not followed by a low surrogate at byte {}",
                                            *pos + 1
                                        )));
                                    }
                                    *pos += 6;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::custom(format!(
                                        "lone surrogate in string at byte {}",
                                        *pos - 5
                                    )));
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or_else(|| {
                                Error::custom(format!("invalid \\u escape at byte {}", *pos - 5))
                            })?);
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "invalid escape sequence at byte {}",
                                *pos - 1
                            )))
                        }
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(bytes.get(*pos..).unwrap_or_default())
                        .map_err(|_| Error::custom(format!("invalid UTF-8 at byte {}", *pos)))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(Error::custom(format!(
                            "unterminated string at byte {}",
                            *pos
                        )));
                    };
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(bytes: &[u8], pos: usize) -> Result<u32, Error> {
        if pos + 4 > bytes.len() {
            return Err(Error::custom(format!("truncated \\u escape at byte {pos}")));
        }
        let s = std::str::from_utf8(&bytes[pos..pos + 4])
            .map_err(|_| Error::custom(format!("invalid \\u escape at byte {pos}")))?;
        u32::from_str_radix(s, 16)
            .map_err(|_| Error::custom(format!("invalid \\u escape at byte {pos}")))
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut fractional = false;
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| Error::custom(format!("invalid number at byte {start}")))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("expected a number at byte {start}")));
        }
        if !fractional {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number literal `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(json::to_string(&42u64), "42");
        assert_eq!(json::from_str::<u64>("42").unwrap(), 42);
        assert_eq!(json::to_string(&true), "true");
        assert!(!json::from_str::<bool>("false").unwrap());
        assert_eq!(json::to_string(&"a\"b\\c\n".to_string()), r#""a\"b\\c\n""#);
        assert_eq!(
            json::from_str::<String>(r#""a\"b\\c\n""#).unwrap(),
            "a\"b\\c\n"
        );
        assert_eq!(json::to_string(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json::from_str::<Vec<u32>>("[1, 2, 3]").unwrap(), [1, 2, 3]);
        assert_eq!(json::to_string(&Option::<u8>::None), "null");
        assert_eq!(json::from_str::<Option<u8>>("7").unwrap(), Some(7));
        assert_eq!(json::to_string(&(1u8, "x".to_string())), r#"[1,"x"]"#);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [
            0.0f64,
            -0.0,
            1.5,
            1.0 / 3.0,
            6.02214076e23,
            f64::MIN_POSITIVE,
            f64::MAX,
            262144.0,
        ] {
            let text = json::to_string(&f);
            let back: f64 = json::from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {text}");
        }
        // Non-finite values use the tagged-string encoding.
        assert_eq!(json::to_string(&f64::INFINITY), "\"inf\"");
        assert!(json::from_str::<f64>("\"NaN\"").unwrap().is_nan());
        assert_eq!(
            json::from_str::<f64>("\"-inf\"").unwrap(),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn nested_values_parse() {
        let v = json::parse(r#"{"a": [1, 2.5, null], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.field("a").unwrap().array_of(3, "a").unwrap().len(), 3);
        assert_eq!(
            v.field("b").unwrap().field("c").unwrap(),
            &Value::String("d".into())
        );
        assert!(v.field("missing").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            json::from_str::<String>(r#""\u00e9\ud83d\ude00""#).unwrap(),
            "é😀"
        );
        let printed = json::to_string(&"control\u{01}".to_string());
        assert_eq!(printed, r#""control\u0001""#);
        assert_eq!(json::from_str::<String>(&printed).unwrap(), "control\u{01}");
    }

    #[test]
    fn malformed_documents_error() {
        assert!(json::parse("").is_err());
        assert!(json::parse("[1, 2").is_err());
        assert!(json::parse("{\"a\" 1}").is_err());
        assert!(json::parse("12 34").is_err());
        assert!(json::parse("\"lone \\ud800\"").is_err());
        // A high surrogate followed by a non-low-surrogate escape must be a
        // parse error, not a panic (regression: u32 underflow).
        assert!(json::parse("\"\\ud800\\u0041\"").is_err());
        assert!(json::parse("\"\\ud800\\ud800\"").is_err());
        assert!(json::from_str::<u8>("300").is_err());
        assert!(json::from_str::<bool>("\"yes\"").is_err());
    }

    #[test]
    fn nesting_depth_is_capped() {
        // Regression: a hostile/corrupt document with pathological nesting
        // must produce a parse error, not a stack overflow. The recursion
        // budget is consumed per container level for arrays and objects
        // alike, including mixed nesting.
        let deep_array = format!("{}1{}", "[".repeat(4096), "]".repeat(4096));
        assert!(json::parse(&deep_array).is_err());
        let deep_object = format!("{}1{}", "{\"k\":".repeat(4096), "}".repeat(4096));
        assert!(json::parse(&deep_object).is_err());
        let mixed = format!("{}1{}", "[{\"k\":".repeat(2048), "}]".repeat(2048));
        assert!(json::parse(&mixed).is_err());
        // Exactly at the cap still parses; one past it does not.
        let at_cap = format!(
            "{}1{}",
            "[".repeat(json::MAX_DEPTH),
            "]".repeat(json::MAX_DEPTH)
        );
        let parsed = json::parse(&at_cap).expect("nesting at the cap parses");
        assert_ne!(parsed, Value::Null);
        let past_cap = format!(
            "{}1{}",
            "[".repeat(json::MAX_DEPTH + 1),
            "]".repeat(json::MAX_DEPTH + 1)
        );
        assert!(json::parse(&past_cap).is_err());
        // Deep but in-bounds real documents still round trip.
        let mut v = Value::Int(7);
        for _ in 0..100 {
            v = Value::Array(vec![v]);
        }
        let text = json::to_string(&v);
        assert_eq!(json::parse(&text).unwrap(), v);
    }

    #[test]
    fn big_integers_fall_back_to_float() {
        // A 301-digit integer (Rust prints huge floats without an exponent)
        // exceeds i128 and is carried as f64, exactly as printed.
        let text = json::to_string(&1e300f64);
        let v: f64 = json::from_str(&text).unwrap();
        assert_eq!(v, 1e300);
    }
}
