//! Minimal `crossbeam` shim backed by `std::thread::scope`.
//!
//! The build environment has no access to crates.io, so this in-workspace
//! crate provides the one primitive `projtile` uses: `crossbeam::scope` with
//! spawn closures that receive the scope as their argument.

#![forbid(unsafe_code)]

use std::any::Any;

/// A scope handle passed to [`scope`] closures; mirrors
/// `crossbeam_utils::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// A handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope, so it can
    /// spawn further threads, matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a scope in which threads borrowing from the environment can
/// be spawned; all threads are joined before `scope` returns.
///
/// Unlike crossbeam, panics of child threads propagate as panics of the
/// calling thread (via `std::thread::scope`), so the returned `Result` is
/// always `Ok`; the `Result` wrapper is kept for call-site compatibility.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut results = vec![0u64; 2];
        let (left, right) = results.split_at_mut(1);
        scope(|s| {
            let d = &data;
            s.spawn(move |_| left[0] = d[..2].iter().sum());
            s.spawn(move |_| right[0] = d[2..].iter().sum());
        })
        .unwrap();
        assert_eq!(results, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
