//! Derive macros for the in-workspace `serde` shim.
//!
//! Unlike the pre-PR-4 shim (whose derives expanded to nothing), these macros
//! generate **working** `serde::Serialize` / `serde::Deserialize` impls over
//! the shim's [`Value`] tree model, so derived types round-trip through
//! `serde::json`. The build container has no crates.io access, hence no
//! `syn`/`quote`; the input item is parsed directly from its token stream and
//! the impl is emitted as source text. Supported shapes — everything this
//! workspace derives on:
//!
//! * structs with named fields (serialized as a JSON object keyed by field
//!   name);
//! * tuple structs (one field: the inner value, i.e. newtype transparency;
//!   several: a JSON array);
//! * unit structs (JSON `null`);
//! * enums, externally tagged like real serde: unit variants serialize as
//!   `"Variant"`, newtype/tuple variants as `{"Variant": payload}`, struct
//!   variants as `{"Variant": {..fields..}}`.
//!
//! Generic items are rejected with a compile error (nothing in the workspace
//! derives serde on a generic type). Field and variant attributes are skipped
//! verbatim, so doc comments are fine; `#[serde(...)]` customization is not
//! implemented.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim's tree-model flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize` (the shim's tree-model flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let src = if serialize {
        gen_serialize(&item)
    } else {
        gen_deserialize(&item)
    };
    src.parse().expect("generated impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("error literal parses")
}

// ---------------------------------------------------------------------------
// Input model & parser
// ---------------------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips leading attributes (`#[...]`) and a visibility modifier (`pub`,
/// optionally followed by a restriction group) starting at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 2,
                _ => return i,
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a token sequence on top-level commas, tracking `<...>` nesting so
/// commas inside generic argument lists (e.g. `Vec<(A, B)>`, `HashMap<K, V>`)
/// do not split. Delimited groups are atomic tokens, so their contents never
/// interfere.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for seg in split_top_level_commas(group_tokens) {
        let i = skip_attrs_and_vis(&seg, 0);
        match seg.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            Some(other) => return Err(format!("unexpected token in field list: `{other}`")),
            None => return Err("empty field in field list".into()),
        }
    }
    Ok(names)
}

fn parse_fields_group(g: &proc_macro::Group) -> Result<Fields, String> {
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    match g.delimiter() {
        Delimiter::Brace => Ok(Fields::Named(parse_named_fields(&tokens)?)),
        Delimiter::Parenthesis => Ok(Fields::Tuple(split_top_level_commas(&tokens).len())),
        _ => Err("unexpected delimiter in item body".into()),
    }
}

fn parse_variants(group_tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for seg in split_top_level_commas(group_tokens) {
        let i = skip_attrs_and_vis(&seg, 0);
        let name = match seg.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in enum body: `{other}`")),
            None => return Err("empty variant in enum body".into()),
        };
        let fields = match seg.get(i + 1) {
            Some(TokenTree::Group(g)) => parse_fields_group(g)?,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "variant `{name}`: explicit discriminants are not supported"
                ))
            }
            Some(other) => return Err(format!("variant `{name}`: unexpected token `{other}`")),
            None => Fields::Unit,
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        _ => return Err("serde derives support only structs and enums".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err(format!("expected a name after `{kind}`")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "`{name}`: the serde shim derives do not support generic types"
            ));
        }
    }
    if kind == "enum" {
        let Some(TokenTree::Group(g)) = tokens.get(i) else {
            return Err(format!("enum `{name}`: expected a brace-delimited body"));
        };
        let body: Vec<TokenTree> = g.stream().into_iter().collect();
        return Ok(Item::Enum {
            name,
            variants: parse_variants(&body)?,
        });
    }
    // Struct: brace group (named), paren group (tuple, then `;`), or `;`.
    let fields = match tokens.get(i) {
        Some(TokenTree::Group(g)) => parse_fields_group(g)?,
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        // `struct S where ...` is not used in this workspace.
        _ => return Err(format!("struct `{name}`: unsupported body shape")),
    };
    Ok(Item::Struct { name, fields })
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let mut s = String::from(
                        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                    );
                    for f in names {
                        s.push_str(&format!(
                            "__fields.push(({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f})));\n"
                        ));
                    }
                    s.push_str("::serde::Value::Object(__fields)");
                    s
                }
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "#[automatically_derived]\n#[allow(clippy::all)]\nimpl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Serialize::serialize(__f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fnames) => {
                        let binds = fnames.join(", ");
                        let mut inner = String::from(
                            "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fnames {
                            inner.push_str(&format!(
                                "__fields.push(({f:?}.to_string(), ::serde::Serialize::serialize({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), {{ {inner} ::serde::Value::Object(__fields) }})]),\n"
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n#[allow(clippy::all)]\nimpl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::deserialize(__v.field({f:?})?)?")
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::deserialize(&__items[{k}])?"))
                        .collect();
                    format!(
                        "let __items = __v.array_of({n}, {name:?})?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!(
                    "match __v {{\n\
                     ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(format!(\"expected null for unit struct {name}\"))),\n\
                     }}"
                ),
            };
            format!(
                "#[automatically_derived]\n#[allow(clippy::all)]\nimpl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => payload_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::deserialize(__payload)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::deserialize(&__items[{k}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "{vname:?} => {{\nlet __items = __payload.array_of({n}, {vname:?})?;\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}},\n",
                            inits.join(", ")
                        ));
                    }
                    Fields::Named(fnames) => {
                        let inits: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize(__payload.field({f:?})?)?"
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n#[allow(clippy::all)]\nimpl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 match __tag.as_str() {{\n{payload_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(format!(\"expected a {name} enum value\"))),\n\
                 }}\n}}\n}}\n"
            )
        }
    }
}
