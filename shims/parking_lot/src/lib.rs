//! Minimal `parking_lot` shim backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so this in-workspace
//! crate provides the tiny slice of the `parking_lot` API that `projtile`
//! uses: a `Mutex` whose `lock()` returns the guard directly (no poisoning)
//! and an `RwLock` with the same convention.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not expose poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock that does not expose poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
