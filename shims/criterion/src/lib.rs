//! Minimal Criterion-compatible benchmark harness.
//!
//! The build environment has no access to crates.io, so this in-workspace
//! crate implements the slice of the `criterion` API that `projtile`'s
//! benches use: `Criterion` with `sample_size` / `warm_up_time` /
//! `measurement_time` builders, `bench_function`, `benchmark_group` with
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up for the configured warm-up
//! time, then `sample_size` samples are taken; each sample runs a batch of
//! iterations sized so the samples together roughly fill the measurement
//! time. The median per-iteration time is reported on stdout as
//! `<name> time: <t>`, one line per benchmark, so results are easy to grep.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of a parameterized benchmark, e.g. `tiling_lp/3`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function_name.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.function_name)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Conversion trait so `bench_function` accepts both `&str` and
/// [`BenchmarkId`], as in real Criterion.
pub trait IntoBenchmarkId {
    /// Renders the id as the benchmark's display name.
    fn into_benchmark_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_name(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it in batches and recording one duration per
    /// sample. Return values are passed through [`black_box`] so the work is
    /// not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / u32::try_from(self.iters_per_sample).unwrap_or(1));
    }
}

/// The benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Criterion
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let name = id.into_benchmark_name();
        self.run_one(&name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks. Configuration overrides
    /// made through the group are scoped to it: the previous settings are
    /// restored when the group is finished or dropped, as in real Criterion.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let saved = (self.sample_size, self.warm_up_time, self.measurement_time);
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            saved,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: &mut F) {
        // Warm-up: also estimates the per-call cost so samples can be batched.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                iters_per_sample: 1,
                samples: Vec::new(),
            };
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / u32::try_from(warm_iters.max(1)).unwrap_or(1);
        let budget = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters_per_sample = (budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64;

        let mut bencher = Bencher {
            iters_per_sample,
            samples: Vec::new(),
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{name:<50} time: <no samples: closure never called iter()>");
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!("{name:<50} time: {}", format_duration(median));
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// Parent configuration to restore on drop (group overrides are scoped).
    saved: (usize, Duration, Duration),
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        let (sample_size, warm_up_time, measurement_time) = self.saved;
        self.criterion.sample_size = sample_size;
        self.criterion.warm_up_time = warm_up_time;
        self.criterion.measurement_time = measurement_time;
    }
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Overrides the warm-up time for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    /// Overrides the measurement time for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_name());
        self.criterion.run_one(&name, &mut f);
        self
    }

    /// Runs a benchmark that borrows a per-case input.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_name());
        self.criterion.run_one(&name, &mut |b| f(b, input));
        self
    }

    /// Finishes the group, restoring the parent configuration (via `Drop`).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u64;
        fast_config().bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_config_overrides_are_scoped() {
        let mut c = fast_config();
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(7)
                .measurement_time(Duration::from_millis(9));
            group.finish();
        }
        assert_eq!(c.sample_size, 3);
        assert_eq!(c.measurement_time, Duration::from_millis(5));
    }

    #[test]
    fn groups_and_ids_render() {
        let mut c = fast_config();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
