//! E6/E7 (Theorems 2 and 3): lower-bound machinery on random projective
//! programs.
//!
//! Benchmarks the bound LP against the explicit 2^d subset enumeration as the
//! loop depth grows (the enumeration is exponential in d, the LP is not), and
//! the full tightness check.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use projtile_bench::perf;
use projtile_core::{bounds, check_tightness, parametric};

fn bench_bound_vs_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_bound_vs_enumeration");
    // Inputs shared with the BENCH_*.json snapshot (see projtile_bench::perf).
    let m = perf::BOUND_M;
    for (d, nest) in perf::bound_vs_enumeration_nests() {
        group.bench_with_input(BenchmarkId::new("bound_lp", d), &nest, |b, nest| {
            b.iter(|| bounds::arbitrary_bound_exponent(black_box(nest), m))
        });
        group.bench_with_input(
            BenchmarkId::new("subset_enumeration_2^d", d),
            &nest,
            |b, nest| b.iter(|| bounds::enumerated_exponent(black_box(nest), m)),
        );
    }
    group.finish();
}

fn bench_tightness_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_tightness_random");
    let m = perf::TIGHTNESS_M;
    for (seed, nest) in perf::tightness_nests() {
        group.bench_with_input(
            BenchmarkId::new("check_tightness", seed),
            &nest,
            |b, nest| b.iter(|| check_tightness(black_box(nest), m)),
        );
    }
    group.finish();
}

fn bench_parametric_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_parametric_sweeps");
    for (name, nest, axis, m, hi) in perf::parametric_sweep_cases() {
        group.bench_with_input(BenchmarkId::new("warm", &name), &nest, |b, nest| {
            b.iter(|| parametric::exponent_vs_beta(black_box(nest), m, axis, 1, hi))
        });
        group.bench_with_input(BenchmarkId::new("cold", &name), &nest, |b, nest| {
            b.iter(|| parametric::exponent_vs_beta_cold(black_box(nest), m, axis, 1, hi))
        });
    }
    group.finish();
}

fn bench_exponent_surfaces(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_exponent_surfaces");
    for (name, nest, axes, m, hi) in perf::surface_cases() {
        let lo = vec![1u64; axes.len()];
        let hi_bounds = vec![hi; axes.len()];
        group.bench_with_input(BenchmarkId::new("warm", &name), &nest, |b, nest| {
            b.iter(|| parametric::exponent_surface(black_box(nest), m, &axes, &lo, &hi_bounds))
        });
        group.bench_with_input(BenchmarkId::new("cold", &name), &nest, |b, nest| {
            b.iter(|| parametric::exponent_surface_cold(black_box(nest), m, &axes, &lo, &hi_bounds))
        });
    }
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("e6_table", |b| b.iter(projtile_bench::e6_random_programs));
    c.bench_function("e7_table", |b| b.iter(projtile_bench::e7_tightness));
    c.bench_function("e9_table", |b| b.iter(projtile_bench::e9_parametric));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_bound_vs_enumeration, bench_tightness_random, bench_parametric_sweeps, bench_exponent_surfaces, bench_tables
}
criterion_main!(benches);
