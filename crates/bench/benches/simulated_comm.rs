//! E8 (§1 motivation): measured communication on the cache simulator.
//!
//! Benchmarks the simulation of the untiled, classical-square, and optimal
//! schedules on an LRU cache, for instances small enough to simulate quickly
//! but large enough relative to the cache that the schedules differ.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use projtile_exec::{
    classical_square_tiling, measure, optimal_tiling_schedule, untiled_schedule, CachePolicy,
    Schedule,
};
use projtile_loopnest::builders;

fn bench_simulated_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_simulated_comm");
    group.sample_size(10);
    let cache = 128u64;
    let nest = builders::matmul(32, 32, 32);

    let untiled = untiled_schedule(&nest);
    group.bench_with_input(BenchmarkId::new("lru", "untiled"), &untiled, |b, s| {
        b.iter(|| measure(black_box(&nest), s, cache, CachePolicy::Lru))
    });

    let mut classical = classical_square_tiling(&nest, cache);
    classical.shrink_to_fit(1.0);
    let classical_schedule = Schedule::from_tiling(&classical);
    group.bench_with_input(
        BenchmarkId::new("lru", "classical_square"),
        &classical_schedule,
        |b, s| b.iter(|| measure(black_box(&nest), s, cache, CachePolicy::Lru)),
    );

    let (_, optimal) = optimal_tiling_schedule(&nest, cache);
    group.bench_with_input(BenchmarkId::new("lru", "optimal"), &optimal, |b, s| {
        b.iter(|| measure(black_box(&nest), s, cache, CachePolicy::Lru))
    });

    // The ideal (Belady) policy on a smaller instance: it materializes the
    // trace, so keep it modest.
    let small = builders::matmul(12, 12, 12);
    let (_, optimal_small) = optimal_tiling_schedule(&small, 64);
    group.bench_with_input(
        BenchmarkId::new("ideal", "optimal"),
        &optimal_small,
        |b, s| b.iter(|| measure(black_box(&small), s, 64, CachePolicy::Ideal)),
    );
    group.finish();
}

fn bench_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_table");
    group.sample_size(10);
    group.bench_function("e8_table", |b| b.iter(projtile_bench::e8_simulated));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_simulated_schedules, bench_table
}
criterion_main!(benches);
