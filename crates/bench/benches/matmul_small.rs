//! E2 (§6.1b): matrix multiplication across the small-L3 crossover.
//!
//! Benchmarks the arbitrary-bound analysis as L3 sweeps through the regime
//! change at √M, and the explicit 2^d subset enumeration against the single
//! bound-LP solve.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use projtile_core::{bounds, check_tightness, optimal_tiling};
use projtile_loopnest::builders;

fn bench_small_l3(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_matmul_small_l3");
    let m = 1u64 << 10;
    for log_l3 in [0u32, 2, 5, 7] {
        let l3 = 1u64 << log_l3;
        let nest = builders::matmul(1 << 9, 1 << 9, l3);
        group.bench_with_input(BenchmarkId::new("bound_lp", l3), &nest, |b, nest| {
            b.iter(|| bounds::arbitrary_bound_exponent(black_box(nest), m))
        });
        group.bench_with_input(
            BenchmarkId::new("subset_enumeration", l3),
            &nest,
            |b, nest| b.iter(|| bounds::enumerated_exponent(black_box(nest), m)),
        );
        group.bench_with_input(BenchmarkId::new("optimal_tiling", l3), &nest, |b, nest| {
            b.iter(|| optimal_tiling(black_box(nest), m))
        });
        group.bench_with_input(BenchmarkId::new("tightness_check", l3), &nest, |b, nest| {
            b.iter(|| check_tightness(black_box(nest), m))
        });
    }
    group.finish();
}

fn bench_table(c: &mut Criterion) {
    c.bench_function("e2_table", |b| b.iter(projtile_bench::e2_matmul_small));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_small_l3, bench_table
}
criterion_main!(benches);
