//! E5 (§6.3): n-body pairwise interactions.
//!
//! Benchmarks the analysis and the closed forms across the three size regimes
//! (both lists large, one small, both small).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use projtile_core::{closed_forms, communication_lower_bound, optimal_tiling};
use projtile_loopnest::builders;

fn bench_nbody(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_nbody");
    let m = 1u64 << 8;
    for (label, l1, l2) in [
        ("both_large", 1u64 << 12, 1u64 << 12),
        ("one_small", 1 << 4, 1 << 12),
        ("both_small", 1 << 4, 1 << 6),
    ] {
        let nest = builders::nbody(l1, l2);
        group.bench_with_input(BenchmarkId::new("lower_bound", label), &nest, |b, nest| {
            b.iter(|| communication_lower_bound(black_box(nest), m))
        });
        group.bench_with_input(
            BenchmarkId::new("optimal_tiling", label),
            &nest,
            |b, nest| b.iter(|| optimal_tiling(black_box(nest), m)),
        );
        group.bench_with_input(BenchmarkId::new("closed_form", label), &(), |b, _| {
            b.iter(|| {
                (
                    closed_forms::nbody_exponent(l1, l2, m),
                    closed_forms::nbody_lower_bound_words(l1, l2, m),
                )
            })
        });
    }
    group.finish();
}

fn bench_table(c: &mut Criterion) {
    c.bench_function("e5_table", |b| b.iter(projtile_bench::e5_nbody));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_nbody, bench_table
}
criterion_main!(benches);
