//! E1 (§6.1a): matrix multiplication with large bounds.
//!
//! Benchmarks the cost of the full analysis pipeline (HBL LP, Theorem-2 bound
//! LP, tiling LP) as the cache size grows, and regenerates the E1 table rows.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use projtile_bench::perf;
use projtile_core::{communication_lower_bound, hbl, optimal_tiling};

fn bench_matmul_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_matmul_large");
    // Inputs shared with the BENCH_*.json snapshot (see projtile_bench::perf).
    let nest = perf::matmul_nest();

    group.bench_function("hbl_exponent", |b| {
        b.iter(|| hbl::hbl_exponent(black_box(&nest)))
    });

    for log_m in perf::MATMUL_LOG_MS {
        let m = 1u64 << log_m;
        group.bench_with_input(BenchmarkId::new("lower_bound", log_m), &m, |b, &m| {
            b.iter(|| communication_lower_bound(black_box(&nest), m))
        });
        group.bench_with_input(BenchmarkId::new("optimal_tiling", log_m), &m, |b, &m| {
            b.iter(|| optimal_tiling(black_box(&nest), m))
        });
    }
    group.finish();
}

fn bench_table(c: &mut Criterion) {
    c.bench_function("e1_table", |b| b.iter(projtile_bench::e1_matmul_large));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_matmul_large, bench_table
}
criterion_main!(benches);
