//! E4 (§6.2): tensor contractions, pointwise convolutions and fully-connected
//! layers.
//!
//! Benchmarks the analysis on machine-learning layer shapes (small channel
//! counts), and the generic d-dimensional contraction as the depth grows.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use projtile_core::{check_tightness, contraction, solve_tiling_lp};
use projtile_loopnest::builders;

fn bench_pointwise_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_pointwise_conv");
    let m = 1u64 << 12;
    let shapes: [(u64, u64, u64, u64, u64); 3] = [
        (1, 3, 32, 112, 112),
        (4, 16, 16, 28, 28),
        (8, 256, 256, 7, 7),
    ];
    for (i, &(b_, cc, k, w, h)) in shapes.iter().enumerate() {
        let nest = builders::pointwise_conv(b_, cc, k, w, h);
        group.bench_with_input(BenchmarkId::new("tiling_lp", i), &nest, |bch, nest| {
            bch.iter(|| solve_tiling_lp(black_box(nest), m))
        });
        group.bench_with_input(BenchmarkId::new("closed_form", i), &(), |bch, _| {
            bch.iter(|| contraction::pointwise_conv_exponent(b_, cc, k, w, h, m))
        });
        group.bench_with_input(BenchmarkId::new("tightness", i), &nest, |bch, nest| {
            bch.iter(|| check_tightness(black_box(nest), m))
        });
    }
    group.finish();
}

fn bench_generic_contraction_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_contraction_depth");
    let m = 1u64 << 10;
    for d in [4usize, 5, 6, 7] {
        let bounds: Vec<u64> = (0..d).map(|i| 1u64 << ((i % 4) + 1)).collect();
        let nest = builders::tensor_contraction(1, 3, &bounds);
        group.bench_with_input(BenchmarkId::new("tightness_check", d), &nest, |b, nest| {
            b.iter(|| check_tightness(black_box(nest), m))
        });
    }
    group.finish();
}

fn bench_table(c: &mut Criterion) {
    c.bench_function("e4_table", |b| b.iter(projtile_bench::e4_contraction));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_pointwise_conv, bench_generic_contraction_depth, bench_table
}
criterion_main!(benches);
