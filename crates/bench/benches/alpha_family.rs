//! E3 (§6.1c): the α-parameterized family of optimal tilings.
//!
//! Benchmarks computing the optimal face of the tiling LP and materializing
//! family members, for a matmul whose inner bound is small (the degenerate
//! case where the family is non-trivial).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use projtile_arith::ratio;
use projtile_core::alpha;
use projtile_loopnest::builders;

fn bench_alpha_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_alpha_family");
    let m = 1u64 << 10;
    let nest = builders::matmul(1 << 9, 1 << 9, 1 << 2);

    group.bench_function("optimal_family", |b| {
        b.iter(|| alpha::optimal_family(black_box(&nest), m, 0))
    });

    let family = alpha::optimal_family(&nest, m, 0);
    group.bench_function("tiling_at_alpha", |b| {
        b.iter(|| {
            for num in 0..=4i64 {
                let a = ratio(num, 4);
                black_box(family.tiling_at(&nest, m, &a));
            }
        })
    });
    group.finish();
}

fn bench_table(c: &mut Criterion) {
    c.bench_function("e3_table", |b| b.iter(projtile_bench::e3_alpha_family));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_alpha_family, bench_table
}
criterion_main!(benches);
