//! Regenerates every experiment table from DESIGN.md / EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p projtile-bench --bin report            # all experiments
//! cargo run --release -p projtile-bench --bin report -- e2 e8   # a subset
//! ```

use projtile_bench::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let tables = all_experiments();

    let selected: Vec<_> = if args.is_empty() {
        tables
    } else {
        tables
            .into_iter()
            .filter(|t| args.iter().any(|a| a == &t.id.to_lowercase()))
            .collect()
    };

    if selected.is_empty() {
        eprintln!("no experiment matched; valid ids are e1..e9");
        std::process::exit(1);
    }

    println!("projtile experiment report");
    println!("reproducing: Dinh & Demmel, SPAA 2020 (arXiv:2003.00119), Sections 3-7");
    println!();
    for table in selected {
        println!("{}", table.render());
    }
}
