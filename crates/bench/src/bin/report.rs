//! Regenerates every experiment table from DESIGN.md / EXPERIMENTS.md, and
//! emits machine-readable perf snapshots.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p projtile-bench --bin report            # all experiments
//! cargo run --release -p projtile-bench --bin report -- e2 e8   # a subset
//!
//! # Perf snapshot mode: wall-time the lower_bound / matmul bench inputs and
//! # write a BENCH_*.json document (see projtile_arith docs for the protocol).
//! cargo run --release -p projtile-bench --bin report -- --bench \
//!     --label after --out BENCH_1.json [--baseline prev_current.json]
//! ```

use std::time::Duration;

use projtile_bench::{all_experiments, perf, service_perf};

fn run_bench_mode(args: &[String]) {
    let mut label = "snapshot".to_string();
    let mut out: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut budget_ms: u64 = 500;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => {}
            "--label" => label = it.next().expect("--label needs a value").clone(),
            "--out" => out = Some(it.next().expect("--out needs a value").clone()),
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline needs a value").clone())
            }
            "--budget-ms" => {
                budget_ms = it
                    .next()
                    .expect("--budget-ms needs a value")
                    .parse()
                    .expect("--budget-ms must be an integer")
            }
            other => {
                eprintln!("unknown --bench option: {other}");
                std::process::exit(1);
            }
        }
    }

    // The baseline file may be a full snapshot document or a bare
    // measurements object; embed the `current` object when present.
    let baseline = baseline_path.map(|p| {
        let text =
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"));
        match text.find("\"current\":") {
            Some(pos) => {
                let obj = &text[pos + "\"current\":".len()..];
                let end = obj.rfind('}').expect("baseline JSON has no closing brace");
                obj[..end].trim().to_string()
            }
            None => text.trim().to_string(),
        }
    });

    eprintln!(
        "timing {} workloads ({budget_ms} ms budget each)...",
        perf::default_workloads().len()
    );
    let mut measurements = perf::measure_all(
        &perf::default_workloads(),
        Duration::from_millis(budget_ms),
        5,
    );
    eprintln!("timing the service group (in-process server over loopback)...");
    measurements.extend(service_perf::service_measurements(Duration::from_millis(
        budget_ms,
    )));
    let doc = perf::snapshot_json(&label, &measurements, baseline.as_deref());
    match out {
        Some(path) => {
            std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{doc}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--bench") {
        run_bench_mode(&args);
        return;
    }

    let args: Vec<String> = args.iter().map(|a| a.to_lowercase()).collect();
    let tables = all_experiments();

    let selected: Vec<_> = if args.is_empty() {
        tables
    } else {
        tables
            .into_iter()
            .filter(|t| args.iter().any(|a| a == &t.id.to_lowercase()))
            .collect()
    };

    if selected.is_empty() {
        eprintln!("no experiment matched; valid ids are e1..e9");
        std::process::exit(1);
    }

    println!("projtile experiment report");
    println!("reproducing: Dinh & Demmel, SPAA 2020 (arXiv:2003.00119), Sections 3-7");
    println!();
    for table in selected {
        println!("{}", table.render());
    }
}
