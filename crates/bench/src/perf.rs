//! Wall-clock perf snapshots for the `report --bench` mode.
//!
//! This module mirrors the simplex-heavy inputs of the `lower_bound` and
//! `matmul` Criterion benches and times them with a plain
//! warm-up + batched-samples loop, emitting a machine-readable JSON snapshot
//! (`BENCH_*.json`) so successive PRs have a perf trajectory to compare
//! against. See the module docs of `projtile_arith` for the full benchmark
//! protocol.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use projtile_core::engine::{Engine, Query};
use projtile_core::{
    bounds, check_tightness, communication_lower_bound, hbl, optimal_tiling, parametric,
};
use projtile_loopnest::{builders, LoopNest};

/// Cache size for the bound-LP / subset-enumeration workloads (E6).
pub const BOUND_M: u64 = 1 << 6;

/// Cache size for the tightness workloads (E7).
pub const TIGHTNESS_M: u64 = 1 << 8;

/// Loop-bound edge length of the large matmul workload (E1).
pub const MATMUL_L: u64 = 1 << 9;

/// `log2(M)` sweep of the matmul workloads (E1).
pub const MATMUL_LOG_MS: [u32; 3] = [8, 12, 16];

/// The depth-swept random nests of the `lower_bound` bench, as `(d, nest)`.
///
/// These constructors are the **single source of truth** for the bench
/// inputs: `benches/lower_bound.rs` / `benches/matmul.rs` and the
/// `BENCH_*.json` snapshot both call them, so the Criterion view and the
/// perf trajectory can never time different workloads under the same name.
pub fn bound_vs_enumeration_nests() -> Vec<(usize, LoopNest)> {
    [3usize, 5, 7, 9, 11]
        .into_iter()
        .map(|d| (d, builders::random_projective(42, d, 4, (1, 256))))
        .collect()
}

/// The parametric β-sweeps of the §7 analysis, as
/// `(name, nest, axis, m, hi_bound)`: the exponent-vs-β value function of
/// `nest` along loop `axis`, swept over bounds `1..=hi_bound`.
///
/// These exercise the warm-started right-hand-side sweeps of
/// `lp::parametric`; the matching `_cold` workloads time the same sweeps with
/// independent cold solves per probe, so a snapshot shows the warm-start
/// speedup directly. The swept ranges extend well past every crossover, and
/// the swept axes are ones whose value function actually has a breakpoint
/// (most axes of the random nests are flat — a sweep with nothing to find
/// ends after a handful of probes and times only fixed overhead).
pub fn parametric_sweep_cases() -> Vec<(String, LoopNest, usize, u64, u64)> {
    let mut cases = vec![(
        "matmul".to_string(),
        builders::matmul(1 << 9, 1 << 9, 1 << 9),
        2usize,
        1u64 << 10,
        1u64 << 10,
    )];
    for (d, axis) in [(9usize, 6usize), (11, 3)] {
        cases.push((
            format!("d{d}"),
            builders::random_projective(42, d, 4, (1, 256)),
            axis,
            BOUND_M,
            1u64 << 16,
        ));
    }
    cases
}

/// The multiparametric §7 surfaces of the `exponent_surface` analysis, as
/// `(name, nest, axes, m, hi_bound)`: the full value surface of `nest` over
/// the swept `axes`, each ranging over bounds `1..=hi_bound`.
///
/// These exercise the critical-region traversal of `lp::mplp`: every region
/// hop re-enters the warm dual simplex, and the matching `_cold` workloads
/// rebuild the tableau from scratch at every probe, so a snapshot shows the
/// warm-start speedup of the multi-axis analysis directly.
pub fn surface_cases() -> Vec<(String, LoopNest, Vec<usize>, u64, u64)> {
    vec![
        (
            "matmul3".to_string(),
            builders::matmul(1 << 9, 1 << 9, 1 << 9),
            vec![0, 1, 2],
            1u64 << 10,
            1u64 << 10,
        ),
        (
            "d7x2".to_string(),
            builders::random_projective(42, 7, 4, (1, 256)),
            vec![3, 6],
            BOUND_M,
            1u64 << 12,
        ),
    ]
}

/// The seed-swept random nests of the tightness bench, as `(seed, nest)`.
pub fn tightness_nests() -> Vec<(u64, LoopNest)> {
    [0u64, 1, 2]
        .into_iter()
        .map(|seed| (seed, builders::random_projective(seed, 5, 4, (1, 512))))
        .collect()
}

/// The large matmul nest of the `matmul` bench.
pub fn matmul_nest() -> LoopNest {
    builders::matmul(MATMUL_L, MATMUL_L, MATMUL_L)
}

/// One named, timed workload.
pub struct Workload {
    /// Stable snapshot key, e.g. `lower_bound/bound_lp/d7`.
    pub name: String,
    /// Runs the workload once.
    pub run: Box<dyn Fn()>,
}

/// A timing result for one workload.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload key.
    pub name: String,
    /// Median seconds per iteration.
    pub secs_per_iter: f64,
    /// Total iterations timed (across all samples).
    pub iters: u64,
}

/// The workload set snapshotted into `BENCH_*.json`: the bound LP and subset
/// enumeration of the `lower_bound` bench plus the full matmul pipeline of
/// the `matmul` bench. All of these bottom out in the exact simplex solver.
pub fn default_workloads() -> Vec<Workload> {
    let mut workloads: Vec<Workload> = Vec::new();

    // lower_bound bench inputs (E6/E7).
    for (d, nest) in bound_vs_enumeration_nests() {
        let n = nest.clone();
        workloads.push(Workload {
            name: format!("lower_bound/bound_lp/d{d}"),
            run: Box::new(move || {
                std::hint::black_box(bounds::arbitrary_bound_exponent(&n, BOUND_M));
            }),
        });
        let n = nest.clone();
        workloads.push(Workload {
            name: format!("lower_bound/subset_enumeration/d{d}"),
            run: Box::new(move || {
                std::hint::black_box(bounds::enumerated_exponent(&n, BOUND_M));
            }),
        });
        // Cold differential twin at the largest depths: times the
        // one-independent-solve-per-subset oracle on the same input, so the
        // warm-start speedup is visible within a single snapshot.
        if d >= 9 {
            let n = nest;
            workloads.push(Workload {
                name: format!("lower_bound/subset_enumeration_cold/d{d}"),
                run: Box::new(move || {
                    std::hint::black_box(bounds::enumerated_exponent_cold(&n, BOUND_M));
                }),
            });
        }
    }

    // Parametric β-sweeps (§7 / E9), warm-started and cold.
    for (name, nest, axis, m, hi) in parametric_sweep_cases() {
        let n = nest.clone();
        workloads.push(Workload {
            name: format!("parametric/exponent_vs_beta/{name}"),
            run: Box::new(move || {
                std::hint::black_box(
                    parametric::exponent_vs_beta(&n, m, axis, 1, hi).expect("sweep solves"),
                );
            }),
        });
        let n = nest;
        workloads.push(Workload {
            name: format!("parametric/exponent_vs_beta_cold/{name}"),
            run: Box::new(move || {
                std::hint::black_box(
                    parametric::exponent_vs_beta_cold(&n, m, axis, 1, hi).expect("sweep solves"),
                );
            }),
        });
    }
    // Multiparametric §7 surfaces, warm-started and cold.
    for (name, nest, axes, m, hi) in surface_cases() {
        let n = nest.clone();
        let ax = axes.clone();
        let lo = vec![1u64; axes.len()];
        let hi_bounds = vec![hi; axes.len()];
        let (lo2, hi2) = (lo.clone(), hi_bounds.clone());
        workloads.push(Workload {
            name: format!("parametric/exponent_surface/{name}"),
            run: Box::new(move || {
                std::hint::black_box(
                    parametric::exponent_surface(&n, m, &ax, &lo2, &hi2).expect("surface solves"),
                );
            }),
        });
        let n = nest;
        workloads.push(Workload {
            name: format!("parametric/exponent_surface_cold/{name}"),
            run: Box::new(move || {
                std::hint::black_box(
                    parametric::exponent_surface_cold(&n, m, &axes, &lo, &hi_bounds)
                        .expect("surface solves"),
                );
            }),
        });
    }
    for (seed, nest) in tightness_nests() {
        workloads.push(Workload {
            name: format!("lower_bound/check_tightness/seed{seed}"),
            run: Box::new(move || {
                std::hint::black_box(check_tightness(&nest, TIGHTNESS_M));
            }),
        });
    }

    // Engine session workloads (PR 4). The cold workload pays full session
    // start-up per query (fresh engine each iteration); the cache_hit
    // workload answers the identical query from a warmed engine's memo. Both
    // use the same input as `lower_bound/check_tightness/seed0`, so one
    // snapshot shows the free-function cost, the engine's cold overhead, and
    // the amortized repeated-query cost side by side.
    let (_, tightness_nest) = tightness_nests().remove(0);
    let tightness_query = Query::Tightness {
        cache_size: TIGHTNESS_M,
    };
    let n = tightness_nest.clone();
    let q = tightness_query.clone();
    workloads.push(Workload {
        name: "engine/cold/tightness_seed0".to_string(),
        run: Box::new(move || {
            let mut engine = Engine::new();
            std::hint::black_box(engine.analyze(&n, &q).expect("valid query"));
        }),
    });
    let n = tightness_nest.clone();
    let q = tightness_query.clone();
    let warmed = RefCell::new(Engine::new());
    warmed
        .borrow_mut()
        .analyze(&tightness_nest, &tightness_query)
        .expect("valid query");
    workloads.push(Workload {
        name: "engine/cache_hit/tightness_seed0".to_string(),
        run: Box::new(move || {
            std::hint::black_box(warmed.borrow_mut().analyze(&n, &q).expect("valid query"));
        }),
    });

    // Service-layer workloads (PR 5).
    //
    // engine/concurrent: four real threads per iteration hammering one
    // warmed SharedEngine with the same tightness query — every answer is a
    // shard read-lock hit served through the lock-free peek path. The
    // measured time includes the per-iteration thread fan-out cost, which
    // is the realistic unit of a concurrent serving workload.
    let shared = projtile_core::engine::SharedEngine::new();
    shared
        .analyze(&tightness_nest, &tightness_query)
        .expect("valid query");
    let n = tightness_nest.clone();
    let q = tightness_query.clone();
    workloads.push(Workload {
        name: "engine/concurrent/tightness_hits_x4/seed0".to_string(),
        run: Box::new(move || {
            let results =
                projtile_par::fan_out(4, |_| shared.analyze(&n, &q).expect("valid query"));
            std::hint::black_box(results);
        }),
    });

    // engine/evicted_rewarm: the results budget holds the tightness
    // report's components plus ONE of {report, filler}, so each iteration
    // (1) re-answers the tightness query by recomposing the previously
    // evicted report from its surviving components (no LP solve — the
    // engine's derived-last recency policy keeps the inputs warmer than
    // the report), and (2) issues filler traffic that evicts the report
    // again. The measured cycle therefore includes the eviction-causing
    // traffic, and must still beat the cold free function by >= 10x (the
    // acceptance criterion).
    let filler_nest = projtile_loopnest::LoopNest::builder()
        .index("i", 2)
        .array("A", ["i"])
        .build()
        .expect("trivial filler nest is valid");
    let filler_query = Query::OptimalTiling { cache_size: 4 };
    let set_cost = {
        let mut sizing = Engine::new();
        sizing
            .analyze(&tightness_nest, &tightness_query)
            .expect("valid query");
        sizing.cache_metrics().results.cost
    };
    let filler_cost = {
        let mut sizing = Engine::new();
        sizing
            .analyze(&filler_nest, &filler_query)
            .expect("valid query");
        sizing.cache_metrics().results.cost
    };
    let evict_engine = RefCell::new(Engine::with_config(projtile_core::engine::EngineConfig {
        results_capacity: set_cost + filler_cost - 1,
        ..Default::default()
    }));
    let n = tightness_nest.clone();
    let q = tightness_query.clone();
    let fnest = filler_nest.clone();
    let fquery = filler_query.clone();
    let run_cycle = move || {
        let mut engine = evict_engine.borrow_mut();
        std::hint::black_box(engine.analyze(&n, &q).expect("valid query"));
        engine.analyze(&fnest, &fquery).expect("valid query");
    };
    run_cycle(); // prime: reach the steady evicted-report state
    workloads.push(Workload {
        name: "engine/evicted_rewarm/tightness_seed0".to_string(),
        run: Box::new(run_cycle),
    });

    // engine/snapshot_restore: parse + warm-restore a persisted session and
    // answer the tightness query from the restored cache, per iteration.
    let snapshot_text = {
        let mut warmed = Engine::new();
        warmed
            .analyze(&tightness_nest, &tightness_query)
            .expect("valid query");
        warmed.snapshot_json()
    };
    let n = tightness_nest.clone();
    let q = tightness_query.clone();
    workloads.push(Workload {
        name: "engine/snapshot_restore/tightness_seed0".to_string(),
        run: Box::new(move || {
            let mut restored = Engine::restore_json(&snapshot_text).expect("snapshot restores");
            std::hint::black_box(restored.analyze(&n, &q).expect("valid query"));
        }),
    });

    // The memoized exponent_at_bound path (JIT probe): cold oracle (one LP
    // solve per probe) vs engine (slice lookup after the first sweep).
    let probe_nest = matmul_nest();
    let probe_m = 1u64 << MATMUL_LOG_MS[0];
    let n = probe_nest.clone();
    workloads.push(Workload {
        name: "engine/cold/exponent_at_bound/matmul".to_string(),
        run: Box::new(move || {
            std::hint::black_box(parametric::exponent_at_bound_cold(&n, probe_m, 2, 37));
        }),
    });
    let n = probe_nest.clone();
    let warmed = RefCell::new(Engine::new());
    warmed
        .borrow_mut()
        .exponent_at_bound(&probe_nest, probe_m, 2, 37)
        .expect("valid probe");
    workloads.push(Workload {
        name: "engine/cache_hit/exponent_at_bound/matmul".to_string(),
        run: Box::new(move || {
            std::hint::black_box(
                warmed
                    .borrow_mut()
                    .exponent_at_bound(&n, probe_m, 2, 37)
                    .expect("valid probe"),
            );
        }),
    });

    // matmul bench inputs (E1).
    let nest = matmul_nest();
    let n = nest.clone();
    workloads.push(Workload {
        name: "matmul/hbl_exponent".to_string(),
        run: Box::new(move || {
            std::hint::black_box(hbl::hbl_exponent(&n));
        }),
    });
    for log_m in MATMUL_LOG_MS {
        let m = 1u64 << log_m;
        let n = nest.clone();
        workloads.push(Workload {
            name: format!("matmul/lower_bound/logM{log_m}"),
            run: Box::new(move || {
                std::hint::black_box(communication_lower_bound(&n, m));
            }),
        });
        let n = nest.clone();
        workloads.push(Workload {
            name: format!("matmul/optimal_tiling/logM{log_m}"),
            run: Box::new(move || {
                std::hint::black_box(optimal_tiling(&n, m));
            }),
        });
    }
    workloads
}

/// Times one closure: warm up, then `samples` batched samples; returns the
/// median seconds/iteration and the total iteration count.
pub fn time_workload(run: &dyn Fn(), budget: Duration, samples: usize) -> (f64, u64) {
    // Warm-up & calibration: run until ~1/8 of the budget is spent.
    let calibration_budget = budget / 8;
    let start = Instant::now();
    let mut warm_iters = 0u64;
    while start.elapsed() < calibration_budget {
        run();
        warm_iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
    let sample_budget = budget.as_secs_f64() * 7.0 / 8.0 / samples as f64;
    let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 30);

    let mut medians: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters_per_sample {
            run();
        }
        medians.push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
    }
    medians.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    (
        medians[medians.len() / 2],
        iters_per_sample * samples as u64 + warm_iters,
    )
}

/// Times every workload in `workloads` with the given per-workload budget.
pub fn measure_all(workloads: &[Workload], budget: Duration, samples: usize) -> Vec<Measurement> {
    workloads
        .iter()
        .map(|w| {
            let (secs_per_iter, iters) = time_workload(&*w.run, budget, samples);
            eprintln!("  {:<42} {:>12.3} µs/iter", w.name, secs_per_iter * 1e6);
            Measurement {
                name: w.name.clone(),
                secs_per_iter,
                iters,
            }
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders measurements as a JSON object `{name: {secs_per_iter, iters}}`.
pub fn measurements_json(measurements: &[Measurement], indent: &str) -> String {
    let mut out = String::from("{\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "{indent}  \"{}\": {{\"secs_per_iter\": {:.9e}, \"iters\": {}}}{}\n",
            json_escape(&m.name),
            m.secs_per_iter,
            m.iters,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!("{indent}}}"));
    out
}

/// Renders the full snapshot document. `baseline_json`, when given, must be a
/// JSON object (e.g. the `current` object of an earlier snapshot) and is
/// embedded verbatim under `"baseline"`.
pub fn snapshot_json(
    label: &str,
    measurements: &[Measurement],
    baseline_json: Option<&str>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"projtile-bench-v1\",\n");
    out.push_str(&format!("  \"label\": \"{}\",\n", json_escape(label)));
    if let Some(base) = baseline_json {
        out.push_str(&format!("  \"baseline\": {},\n", base.trim()));
    }
    out.push_str(&format!(
        "  \"current\": {}\n",
        measurements_json(measurements, "  ")
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_returns_positive_values() {
        let counter = std::cell::Cell::new(0u64);
        let (secs, iters) = time_workload(
            &|| counter.set(counter.get() + 1),
            Duration::from_millis(20),
            3,
        );
        assert!(secs >= 0.0);
        assert!(iters > 0);
        assert!(counter.get() >= iters);
    }

    #[test]
    fn snapshot_json_shape() {
        let ms = vec![
            Measurement {
                name: "a/b".into(),
                secs_per_iter: 1.25e-6,
                iters: 100,
            },
            Measurement {
                name: "c".into(),
                secs_per_iter: 2.0,
                iters: 3,
            },
        ];
        let doc = snapshot_json("test", &ms, Some("{\"x\": {}}"));
        assert!(doc.contains("\"schema\": \"projtile-bench-v1\""));
        assert!(doc.contains("\"a/b\""));
        assert!(doc.contains("\"baseline\": {\"x\": {}}"));
        // Balanced braces — a cheap well-formedness check without a parser.
        let open = doc.matches('{').count();
        let close = doc.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn default_workloads_have_unique_names() {
        let w = default_workloads();
        let mut names: Vec<_> = w.iter().map(|x| x.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), w.len());
    }
}
