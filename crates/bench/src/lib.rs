//! Experiment definitions shared by the Criterion benchmarks and the `report`
//! binary.
//!
//! The paper's evaluation is its Examples section (§6) plus the analytic
//! claims of §3–§5 and §7; DESIGN.md maps those onto experiments E1–E9. Each
//! function here regenerates the rows of one experiment as plain data, so the
//! `report` binary can print them (and EXPERIMENTS.md can record them), and
//! the benchmarks can time the underlying computations on the same inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;
pub mod service_perf;

use projtile_core::{
    alpha, bounds, check_tightness, closed_forms, communication_lower_bound, contraction, hbl,
    optimal_tiling, parametric, solve_tiling_lp,
};
use projtile_exec::{compare_schedules, CachePolicy};
use projtile_loopnest::builders;
use projtile_par::par_map;

/// One formatted row of an experiment table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Column values, already rendered as strings.
    pub cells: Vec<String>,
}

/// A complete experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment identifier, e.g. `"E2"`.
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// Column headers.
    pub header: Vec<&'static str>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.cells.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n\n", self.id, self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(
            &self
                .header
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        ));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(&row.cells));
            out.push('\n');
        }
        out
    }
}

fn row(cells: Vec<String>) -> Row {
    Row { cells }
}

/// E1 (§6.1a): matrix multiplication with large bounds — classical exponent
/// and tile, across cache sizes.
pub fn e1_matmul_large() -> Table {
    let mut rows = Vec::new();
    for log_m in [8u32, 10, 12, 14, 16] {
        let m = 1u64 << log_m;
        let l = 1u64 << 9;
        let nest = builders::matmul(l, l, l);
        let k = hbl::hbl_exponent(&nest);
        let lb = communication_lower_bound(&nest, m);
        let tiling = optimal_tiling(&nest, m);
        rows.push(row(vec![
            format!("{l}^3"),
            format!("2^{log_m}"),
            k.to_string(),
            lb.exponent.to_string(),
            format!("{:?}", tiling.tile_dims()),
            format!("{:.3e}", lb.words),
        ]));
    }
    Table {
        id: "E1",
        title: "matmul, all bounds large: classical exponent 3/2 and square tiles",
        header: vec![
            "L",
            "M",
            "k_HBL",
            "k_hat",
            "optimal tile",
            "lower bound (words)",
        ],
        rows,
    }
}

/// E2 (§6.1b): matrix multiplication across the small-L3 crossover.
pub fn e2_matmul_small() -> Table {
    let m = 1u64 << 10;
    let l = 1u64 << 9;
    let logs: Vec<u32> = (0..=7).collect();
    let rows: Vec<Row> = par_map(&logs, |&log_l3| {
        let l3 = 1u64 << log_l3;
        let nest = builders::matmul(l, l, l3);
        let classical = hbl::large_bound_lower_bound(&nest, m);
        let lb = communication_lower_bound(&nest, m);
        let closed = closed_forms::matmul_lower_bound_words(l, l, l3, m);
        let tiling = optimal_tiling(&nest, m);
        let tight = check_tightness(&nest, m).tight;
        row(vec![
            l3.to_string(),
            format!("{classical:.0}"),
            format!("{:.0}", lb.words),
            format!("{closed:.0}"),
            lb.exponent.to_string(),
            format!("{:?}", tiling.tile_dims()),
            tight.to_string(),
        ])
    });
    Table {
        id: "E2",
        title: "matmul 512x512xL3, M=1024: arbitrary-bound LB vs classical, optimal tile",
        header: vec![
            "L3",
            "classical LB",
            "arbitrary LB",
            "closed form",
            "k_hat",
            "optimal tile",
            "tight",
        ],
        rows,
    }
}

/// E3 (§6.1c): the α-family of optimal tilings for a small-L3 matmul.
pub fn e3_alpha_family() -> Table {
    let m = 1u64 << 10;
    let nest = builders::matmul(1 << 9, 1 << 9, 1 << 2);
    let family = alpha::optimal_family(&nest, m, 0);
    let lb = communication_lower_bound(&nest, m);
    let mut rows = Vec::new();
    for num in 0..=4i64 {
        let a = projtile_arith::ratio(num, 4);
        let tiling = family.tiling_at(&nest, m, &a);
        let model = tiling.communication_model();
        rows.push(row(vec![
            a.to_string(),
            format!("{:?}", tiling.tile_dims()),
            model.total_words.to_string(),
            format!("{:.0}", lb.words),
            format!("{:.2}", model.ratio_to_lower_bound),
        ]));
    }
    Table {
        id: "E3",
        title: "alpha-parameterized family of optimal tilings (matmul 512x512x4, M=1024)",
        header: vec!["alpha", "tile", "analytic words", "lower bound", "ratio"],
        rows,
    }
}

/// E4 (§6.2): tensor contractions / pointwise convolutions — closed form vs LP.
pub fn e4_contraction() -> Table {
    let m = 1u64 << 12;
    let shapes: Vec<(u64, u64, u64, u64, u64)> = vec![
        (1, 3, 32, 112, 112),
        (1, 32, 64, 56, 56),
        (4, 16, 16, 28, 28),
        (8, 256, 256, 7, 7),
        (1, 1024, 1024, 1, 1),
    ];
    let rows: Vec<Row> = par_map(&shapes, |&(b, c, k, w, h)| {
        let nest = builders::pointwise_conv(b, c, k, w, h);
        let lp = solve_tiling_lp(&nest, m).value;
        let closed = contraction::pointwise_conv_exponent(b, c, k, w, h, m);
        let lb = communication_lower_bound(&nest, m);
        let tiling = optimal_tiling(&nest, m);
        row(vec![
            format!("({b},{c},{k},{w},{h})"),
            lp.to_string(),
            closed.to_string(),
            (lp == closed).to_string(),
            format!("{:.3e}", lb.words),
            format!("{:?}", tiling.tile_dims()),
        ])
    });
    Table {
        id: "E4",
        title: "pointwise convolutions (B,C,K,W,H), M=4096: closed form (6.2) vs tiling LP",
        header: vec![
            "shape",
            "LP exponent",
            "closed form",
            "agree",
            "lower bound",
            "optimal tile",
        ],
        rows,
    }
}

/// E5 (§6.3): n-body pairwise interactions across size regimes.
pub fn e5_nbody() -> Table {
    let m = 1u64 << 8;
    let l2 = 1u64 << 11;
    let mut rows = Vec::new();
    for log_l1 in [2u32, 4, 6, 8, 10, 12] {
        let l1 = 1u64 << log_l1;
        let nest = builders::nbody(l1, l2);
        let lb = communication_lower_bound(&nest, m);
        let closed = closed_forms::nbody_lower_bound_words(l1, l2, m);
        let tile = closed_forms::nbody_tile_size(l1, l2, m);
        let tiling = optimal_tiling(&nest, m);
        rows.push(row(vec![
            l1.to_string(),
            tile.to_string(),
            format!("{closed:.0}"),
            format!("{:.0}", lb.words),
            lb.exponent.to_string(),
            format!("{:?}", tiling.tile_dims()),
        ]));
    }
    Table {
        id: "E5",
        title: "n-body pairwise interactions, |Other|=2048, M=256: closed forms (6.3) vs machinery",
        header: vec![
            "L1",
            "max tile (6.3)",
            "closed LB",
            "general LB",
            "k_hat",
            "optimal tile",
        ],
        rows,
    }
}

/// E6 (Thm 2 vs §3): random projective programs — arbitrary-bound exponent vs
/// the classical one, and where they differ.
pub fn e6_random_programs() -> Table {
    let m = 1u64 << 6;
    let seeds: Vec<u64> = (0..12).collect();
    let rows: Vec<Row> = par_map(&seeds, |&seed| {
        let nest = builders::random_projective(seed, 4, 4, (1, 256));
        let classical = hbl::hbl_exponent(&nest);
        let lb = bounds::arbitrary_bound_exponent(&nest, m);
        let enumerated = bounds::enumerated_exponent(&nest, m);
        row(vec![
            seed.to_string(),
            format!("{:?}", nest.bounds()),
            classical.to_string(),
            lb.exponent.to_string(),
            enumerated.exponent.to_string(),
            format!("{:?}", lb.witness_subset),
        ])
    });
    Table {
        id: "E6",
        title:
            "random projective programs (d=4, n=4), M=64: classical vs arbitrary-bound exponents",
        header: vec![
            "seed",
            "bounds",
            "k_HBL",
            "k_hat (LP)",
            "k_hat (enum)",
            "witness Q",
        ],
        rows,
    }
}

/// E7 (Thm 3): tightness verification across every kernel family.
pub fn e7_tightness() -> Table {
    let mut rows = Vec::new();
    let cases: Vec<(&str, projtile_loopnest::LoopNest, u64)> = vec![
        (
            "matmul large",
            builders::matmul(1 << 8, 1 << 8, 1 << 8),
            1 << 10,
        ),
        (
            "matmul small L3",
            builders::matmul(1 << 8, 1 << 8, 4),
            1 << 10,
        ),
        ("matvec", builders::matvec(1 << 8, 1 << 8), 1 << 10),
        (
            "pointwise conv",
            builders::pointwise_conv(1, 3, 32, 112, 112),
            1 << 12,
        ),
        (
            "fully connected",
            builders::fully_connected(32, 1 << 10, 1 << 10),
            1 << 12,
        ),
        ("n-body", builders::nbody(1 << 4, 1 << 11), 1 << 8),
        (
            "contraction d=5",
            builders::tensor_contraction(2, 4, &[4, 8, 2, 16, 32]),
            1 << 8,
        ),
    ];
    for (name, nest, m) in cases {
        let report = check_tightness(&nest, m);
        rows.push(row(vec![
            name.to_string(),
            format!("2^{}", (m as f64).log2() as u32),
            report.tiling_exponent.to_string(),
            report.bound_exponent.to_string(),
            report.enumerated_exponent.to_string(),
            report.tight.to_string(),
        ]));
    }
    Table {
        id: "E7",
        title: "Theorem 3 tightness: tiling-LP optimum vs Theorem-2 exponent (exact equality)",
        header: vec![
            "kernel",
            "M",
            "tiling exp",
            "bound exp",
            "enum exp",
            "tight",
        ],
        rows,
    }
}

/// E8 (§1 motivation): measured traffic on the LRU simulator — untiled vs
/// classical square tiling vs optimal tiling, against the lower bound.
pub fn e8_simulated() -> Table {
    let cases: Vec<(&str, projtile_loopnest::LoopNest, u64)> = vec![
        ("matmul 32^3", builders::matmul(32, 32, 32), 128),
        ("matmul 64x64x2", builders::matmul(64, 64, 2), 256),
        ("matvec 64x64", builders::matvec(64, 64), 256),
        (
            "conv 2x2x8x12x12",
            builders::pointwise_conv(2, 2, 8, 12, 12),
            128,
        ),
        ("nbody 32x2048", builders::nbody(32, 2048), 256),
    ];
    let rows: Vec<Row> = par_map(&cases, |(name, nest, m)| {
        let cmp = compare_schedules(nest, *m, CachePolicy::Lru);
        row(vec![
            name.to_string(),
            m.to_string(),
            format!("{:.0}", cmp.lower_bound_words),
            cmp.untiled().words.to_string(),
            cmp.classical().words.to_string(),
            cmp.optimal().words.to_string(),
            format!("{:.2}", cmp.optimal().ratio_to_lower_bound),
            format!("{:.2}", cmp.untiled().ratio_to_lower_bound),
        ])
    });
    Table {
        id: "E8",
        title: "measured words moved on an LRU cache: untiled vs classical vs optimal tiling",
        header: vec![
            "kernel",
            "M",
            "lower bound",
            "untiled",
            "classical",
            "optimal",
            "opt/LB",
            "untiled/LB",
        ],
        rows,
    }
}

/// E9 (§7): piecewise-linear exponent as a function of one log-bound.
pub fn e9_parametric() -> Table {
    let m = 1u64 << 10;
    let mut rows = Vec::new();
    let cases: Vec<(&str, projtile_loopnest::LoopNest, usize)> = vec![
        ("matmul vs L3", builders::matmul(1 << 9, 1 << 9, 1 << 9), 2),
        ("nbody vs L1", builders::nbody(1 << 4, 1 << 12), 0),
        (
            "conv vs C",
            builders::pointwise_conv(2, 1, 1 << 6, 1 << 5, 1 << 5),
            1,
        ),
    ];
    for (name, nest, axis) in cases {
        let vf = parametric::exponent_vs_beta(&nest, m, axis, 1, m).expect("parametric analysis");
        let breakpoints: Vec<String> = vf
            .breakpoints
            .iter()
            .map(|(b, v)| format!("(beta={b}, k={v})"))
            .collect();
        rows.push(row(vec![
            name.to_string(),
            vf.num_pieces().to_string(),
            format!(
                "{:?}",
                vf.slopes()
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
            ),
            breakpoints.join(" "),
        ]));
    }
    Table {
        id: "E9",
        title:
            "piecewise-linear optimal exponent vs one log-bound (breakpoints are exact rationals)",
        header: vec!["sweep", "pieces", "slopes", "breakpoints"],
        rows,
    }
}

/// All experiments in order.
pub fn all_experiments() -> Vec<Table> {
    vec![
        e1_matmul_large(),
        e2_matmul_small(),
        e3_alpha_family(),
        e4_contraction(),
        e5_nbody(),
        e6_random_programs(),
        e7_tightness(),
        e8_simulated(),
        e9_parametric(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_rows() {
        for table in all_experiments() {
            assert!(!table.rows.is_empty(), "{} has no rows", table.id);
            let text = table.render();
            assert!(text.contains(table.id));
            // Every row has as many cells as the header.
            for r in &table.rows {
                assert_eq!(r.cells.len(), table.header.len(), "{}", table.id);
            }
        }
    }

    #[test]
    fn e7_reports_tight_everywhere() {
        let t = e7_tightness();
        let tight_col = t.header.iter().position(|h| *h == "tight").unwrap();
        assert!(t.rows.iter().all(|r| r.cells[tight_col] == "true"));
    }

    #[test]
    fn e2_lower_bound_never_below_classical() {
        let t = e2_matmul_small();
        for r in &t.rows {
            let classical: f64 = r.cells[1].parse().unwrap();
            let arbitrary: f64 = r.cells[2].parse().unwrap();
            assert!(arbitrary + 1e-6 >= classical);
        }
    }

    #[test]
    fn e8_optimal_never_meaningfully_worse_than_untiled() {
        // On cache-bound instances the optimal tiling wins by large factors;
        // on compulsory-miss-dominated instances (e.g. matvec-like shapes that
        // stream one big array once) the two are within a few percent of each
        // other, so allow that slack instead of demanding strict dominance.
        let t = e8_simulated();
        let mut big_wins = 0;
        for r in &t.rows {
            let untiled: u64 = r.cells[3].parse().unwrap();
            let optimal: u64 = r.cells[5].parse().unwrap();
            assert!(
                optimal as f64 <= untiled as f64 * 1.05,
                "optimal {optimal} much worse than untiled {untiled}: {r:?}"
            );
            if (untiled as f64) > 2.0 * optimal as f64 {
                big_wins += 1;
            }
        }
        // At least some of the instances show the headline separation.
        assert!(
            big_wins >= 2,
            "expected at least two large wins, saw {big_wins}"
        );
    }
}
