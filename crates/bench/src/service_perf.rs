//! Wall-clock perf for the network service (`crates/service`), emitted
//! into the `BENCH_*.json` snapshots as the `service/` group.
//!
//! Unlike the closure workloads of [`crate::perf`], the service numbers
//! come from driving a real in-process server over loopback sockets:
//!
//! * `service/roundtrip/tightness_hit` — one warm request round-trip
//!   (connect, POST `/analyze`, cache-hit compute, response) through the
//!   standard timing loop;
//! * `service/mixed_4threads/secs_per_request` — four concurrent client
//!   threads issue a mixed query stream (tightness, tiling, lower-bound,
//!   slice over three kernels) for the whole budget; the value is wall
//!   time over total completed requests (inverse throughput), `iters` the
//!   request count;
//! * `service/mixed_4threads/{p50,p99}` — the server's own request-latency
//!   histogram after that run, as seconds (upper bucket edge; the
//!   histogram's buckets are powers of two of microseconds);
//! * `service/mixed_traffic/{secs_per_request,p50,p99}` — the same
//!   accounting against a **fresh** server (clean caches, clean histogram)
//!   under four threads of the cache policy lab's seeded zipf workload
//!   generator (`projtile_lab::Workload`), so the snapshot also tracks
//!   cold-to-warm service behaviour under reproducible generated load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use projtile_core::engine::Query;
use projtile_lab::{GeneratorConfig, Pattern, Workload};
use projtile_loopnest::{builders, LoopNest};
use projtile_service::{Client, FaultPlan, Server, ServerConfig};

use crate::perf::{time_workload, Measurement};

/// The mixed-traffic corpus: `(nest, queries)` pairs cycled by every
/// client thread.
fn corpus() -> Vec<(LoopNest, Vec<Query>)> {
    let m = 1u64 << 10;
    vec![
        (
            builders::matmul(1 << 9, 1 << 9, 1 << 5),
            vec![
                Query::Tightness { cache_size: m },
                Query::OptimalTiling { cache_size: m },
            ],
        ),
        (
            builders::nbody(1 << 6, 1 << 9),
            vec![
                Query::LowerBound { cache_size: m },
                Query::Slice {
                    cache_size: m,
                    axis: 0,
                    lo_bound: 1,
                    hi_bound: 1 << 8,
                },
            ],
        ),
        (
            builders::random_projective(7, 4, 4, (1, 256)),
            vec![Query::Tightness { cache_size: m }],
        ),
    ]
}

/// Measures the service group against an in-process server; `budget` is
/// the per-measurement time budget (the mixed-traffic run uses it once).
pub fn service_measurements(budget: Duration) -> Vec<Measurement> {
    let handle =
        Server::start(ServerConfig::default(), FaultPlan::default()).expect("bench server starts");
    let addr = handle.addr().to_string();
    let corpus = corpus();

    // Warm every corpus entry so the measured traffic is the service's
    // steady state (read-path cache hits), not first-touch LP solves.
    let warm = Client::new(addr.clone());
    for (nest, queries) in &corpus {
        let served = warm.analyze(nest, queries).expect("warm-up served");
        assert!(
            served.iter().all(Result::is_ok),
            "warm-up queries are valid"
        );
    }

    let mut out = Vec::new();

    // Single-connection round-trip on the standard timing loop.
    let (nest, queries) = (&corpus[0].0, &corpus[0].1[..1]);
    let client = Client::new(addr.clone());
    let (secs, iters) = time_workload(
        &|| {
            std::hint::black_box(client.analyze(nest, queries).expect("served"));
        },
        budget,
        5,
    );
    eprintln!(
        "  {:<42} {:>12.3} µs/iter",
        "service/roundtrip/tightness_hit",
        secs * 1e6
    );
    out.push(Measurement {
        name: "service/roundtrip/tightness_hit".to_string(),
        secs_per_iter: secs,
        iters,
    });

    // Mixed traffic: 4 client threads for the whole budget.
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let counts = projtile_par::fan_out(4, |worker| {
        let client = Client::new(addr.clone());
        let mut served = 0u64;
        let mut step = worker; // decorrelate the per-thread cycles
        while !stop.load(Ordering::Relaxed) {
            let (nest, queries) = &corpus[step % corpus.len()];
            let answers = client.analyze(nest, queries).expect("served");
            std::hint::black_box(&answers);
            served += 1;
            step += 1;
            if worker == 0 && started.elapsed() >= budget {
                stop.store(true, Ordering::Relaxed);
            }
        }
        served
    });
    let wall = started.elapsed().as_secs_f64();
    let total: u64 = counts.iter().sum();
    eprintln!(
        "  {:<42} {:>12.3} µs/iter ({} requests)",
        "service/mixed_4threads/secs_per_request",
        wall / total as f64 * 1e6,
        total
    );
    out.push(Measurement {
        name: "service/mixed_4threads/secs_per_request".to_string(),
        secs_per_iter: wall / total.max(1) as f64,
        iters: total,
    });

    // Tail latency from the server's own histogram (upper bucket edges).
    let latency = &handle.metrics().request_latency;
    for (tag, q) in [("p50", 0.50), ("p99", 0.99)] {
        let micros = latency.quantile_micros(q).unwrap_or(0);
        eprintln!(
            "  {:<42} {:>12.3} µs/iter",
            format!("service/mixed_4threads/{tag}"),
            micros as f64
        );
        out.push(Measurement {
            name: format!("service/mixed_4threads/{tag}"),
            secs_per_iter: micros as f64 * 1e-6,
            iters: latency.count(),
        });
    }

    handle.join();
    out.extend(generated_traffic_measurements(budget));
    out
}

/// Generated mixed traffic against a fresh server: four client threads
/// each replay deterministic seeded zipf workloads from the lab generator
/// (distinct per-thread, per-round seeds), so the request stream — and the
/// cold-to-warm hit-rate trajectory it induces — is identical run to run.
/// One HTTP `POST /analyze` per workload batch is the counted request.
fn generated_traffic_measurements(budget: Duration) -> Vec<Measurement> {
    let handle =
        Server::start(ServerConfig::default(), FaultPlan::default()).expect("bench server starts");
    let addr = handle.addr().to_string();

    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let counts = projtile_par::fan_out(4, |worker| {
        let client = Client::new(addr.clone());
        let mut requests = 0u64;
        let mut round = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let config = GeneratorConfig {
                seed: 0xC0FFEE + worker as u64 + round * 101,
                pattern: Pattern::Zipf,
                batches: 8,
                batch_size: 4,
            };
            let stats = Workload::generate(&config)
                .drive_client(&client)
                .expect("generated load served");
            requests += stats.batches;
            round += 1;
            if worker == 0 && started.elapsed() >= budget {
                stop.store(true, Ordering::Relaxed);
            }
        }
        requests
    });
    let wall = started.elapsed().as_secs_f64();
    let total: u64 = counts.iter().sum();
    eprintln!(
        "  {:<42} {:>12.3} µs/iter ({} requests)",
        "service/mixed_traffic/secs_per_request",
        wall / total.max(1) as f64 * 1e6,
        total
    );
    let mut out = vec![Measurement {
        name: "service/mixed_traffic/secs_per_request".to_string(),
        secs_per_iter: wall / total.max(1) as f64,
        iters: total,
    }];

    let latency = &handle.metrics().request_latency;
    for (tag, q) in [("p50", 0.50), ("p99", 0.99)] {
        let micros = latency.quantile_micros(q).unwrap_or(0);
        eprintln!(
            "  {:<42} {:>12.3} µs/iter",
            format!("service/mixed_traffic/{tag}"),
            micros as f64
        );
        out.push(Measurement {
            name: format!("service/mixed_traffic/{tag}"),
            secs_per_iter: micros as f64 * 1e-6,
            iters: latency.count(),
        });
    }

    handle.join();
    out
}
