//! End-to-end tests for the hardened service: exactness against cold
//! oracles, the full error taxonomy, shedding under overload, panic
//! isolation, the crash-safe snapshot lifecycle (with injected faults),
//! and graceful drain. Every server binds `127.0.0.1:0` in-process.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use projtile_core::engine::{Engine, Query, SharedEngine, SnapshotStore};
use projtile_loopnest::builders;
use projtile_service::http::{read_response, Response};
use projtile_service::{Client, FaultPlan, Server, ServerConfig, ServerHandle};
use serde::{json, Serialize, Value};

fn start(mutate: impl FnOnce(&mut ServerConfig), fault: FaultPlan) -> ServerHandle {
    let mut config = ServerConfig::default();
    mutate(&mut config);
    Server::start(config, fault).expect("server starts")
}

/// Sends raw bytes and reads the one response (error-path tests).
fn raw(handle: &ServerHandle, bytes: &[u8]) -> Response {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(bytes).expect("send");
    read_response(&mut stream, Duration::from_secs(10)).expect("response")
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// A mixed batch covering every query kind; `axis` must be a valid loop
/// position of the queried nest.
fn all_kinds_on(m: u64, axis: usize) -> Vec<Query> {
    vec![
        Query::LowerBound { cache_size: m },
        Query::EnumeratedBound { cache_size: m },
        Query::OptimalTiling { cache_size: m },
        Query::Tightness { cache_size: m },
        Query::Surface {
            cache_size: m,
            axes: vec![axis],
            lo_bounds: vec![1],
            hi_bounds: vec![64],
        },
        Query::Slice {
            cache_size: m,
            axis,
            lo_bound: 1,
            hi_bound: 64,
        },
    ]
}

fn metric(doc: &Value, name: &str) -> i128 {
    match doc.field(name) {
        Ok(Value::Int(n)) => *n,
        other => panic!("metric {name}: {other:?}"),
    }
}

#[test]
fn served_answers_are_bitwise_equal_to_cold_oracles() {
    let handle = start(|_| {}, FaultPlan::default());
    let client = Client::new(handle.addr().to_string());
    let m = 1u64 << 8;

    for (nest, axis) in [
        (builders::matmul(64, 64, 64), 2),
        (builders::nbody(32, 64), 1),
    ] {
        let queries = all_kinds_on(m, axis);
        // Twice: the second pass is served from the memo caches and must
        // not drift from the first (cold) pass.
        for pass in 0..2 {
            let served = client.analyze(&nest, &queries).expect("analyze");
            assert_eq!(served.len(), queries.len());
            let mut oracle = Engine::new();
            for (i, (query, answer)) in queries.iter().zip(&served).enumerate() {
                let answer = answer.as_ref().unwrap_or_else(|e| {
                    panic!("pass {pass}, query {i} answered with an error: {e}")
                });
                let expected = oracle.analyze(&nest, query).expect("oracle");
                assert_eq!(
                    json::to_string(&answer.serialize()),
                    json::to_string(&expected.serialize()),
                    "pass {pass}, query {i} diverges from the cold oracle"
                );
            }
        }
    }
    // The second pass was pure cache hits.
    assert!(
        handle.engine().stats().hits > 0,
        "second pass hit the cache"
    );
    handle.join();
}

#[test]
fn per_query_errors_ride_inside_a_200_batch() {
    let handle = start(|_| {}, FaultPlan::default());
    let client = Client::new(handle.addr().to_string());
    let nest = builders::matmul(16, 16, 16);
    let queries = vec![
        Query::Tightness { cache_size: 64 },
        Query::Tightness { cache_size: 1 }, // below the model's minimum M
        Query::Slice {
            cache_size: 64,
            axis: 99, // no such loop
            lo_bound: 1,
            hi_bound: 4,
        },
    ];
    let served = client.analyze(&nest, &queries).expect("batch answers 200");
    assert!(
        served[0].is_ok(),
        "valid query unaffected by bad batch-mates"
    );
    let err1 = served[1].as_ref().expect_err("M=1 is invalid");
    assert!(err1.contains("invalid query"), "taxonomy message: {err1}");
    assert!(served[2].is_err(), "bad axis is a per-query error");
    handle.join();
}

#[test]
fn error_taxonomy_maps_to_status_codes() {
    let handle = start(
        |c| c.read_deadline = Duration::from_millis(300),
        FaultPlan::default(),
    );

    // 400: body is not JSON.
    let r = raw(&handle, &post("/analyze", "{not json"));
    assert_eq!(r.status, 400);

    // 400: JSON but an invalid nest (loop `j` appears in no array's
    // support) — the validated deserializer rejects it before any compute.
    let bad_nest = r#"{"nest":{"indices":[{"name":"i","bound":4},{"name":"j","bound":4}],"arrays":[{"name":"A","support":1}]},"queries":[{"Tightness":{"cache_size":64}}]}"#;
    let r = raw(&handle, &post("/analyze", bad_nest));
    assert_eq!(r.status, 400, "invalid nest rejected: {:?}", r.body);

    // 404 and 405.
    assert_eq!(raw(&handle, &post("/nope", "{}")).status, 404);
    assert_eq!(
        raw(
            &handle,
            b"GET /analyze HTTP/1.1\r\ncontent-length: 0\r\n\r\n"
        )
        .status,
        405
    );

    // 413: oversized declared body.
    let r = raw(
        &handle,
        b"POST /analyze HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n",
    );
    assert_eq!(r.status, 413);

    // 408: a byte-dribbling client is cut off by the wall-clock deadline
    // even though each individual byte arrives "promptly".
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    let doc = post("/analyze", r#"{"nest":null,"queries":[]}"#);
    for &byte in doc.iter() {
        if stream.write_all(&[byte]).is_err() {
            break; // server already disconnected us mid-dribble
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    // Dropping the dribbler without a response is also acceptable.
    if let Ok(r) = read_response(&mut stream, Duration::from_secs(5)) {
        assert_eq!(r.status, 408, "dribbler answered {}", r.status);
    }

    let client = Client::new(handle.addr().to_string());
    let m = client.metrics().expect("metrics");
    assert!(metric(&m, "parse_errors") >= 2, "two 400s counted");
    assert!(metric(&m, "read_timeouts") >= 1, "dribbler counted");
    handle.join();
}

#[test]
fn overload_sheds_with_503_instead_of_queueing_unboundedly() {
    let handle = start(
        |c| {
            c.workers = 1;
            c.queue_capacity = 1;
        },
        FaultPlan::new(150, 0, 0), // every compute takes ≥150ms
    );
    let addr = handle.addr();
    let nest = builders::matmul(16, 16, 16);
    let body = json::to_string(&Value::Object(vec![
        ("nest".to_string(), nest.serialize()),
        (
            "queries".to_string(),
            Value::Array(vec![Query::Tightness { cache_size: 64 }.serialize()]),
        ),
    ]));
    let doc = post("/analyze", &body);

    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let doc = doc.clone();
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.write_all(&doc).expect("send");
                    read_response(&mut stream, Duration::from_secs(30))
                        .expect("every admitted or shed connection gets an answer")
                        .status
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = statuses.iter().filter(|&&s| s == 200).count();
    let shed = statuses.iter().filter(|&&s| s == 503).count();
    assert_eq!(ok + shed, 8, "only 200 or 503, got {statuses:?}");
    assert!(ok >= 1, "someone got served: {statuses:?}");
    assert!(
        shed >= 1,
        "a 1-deep queue with slow compute sheds: {statuses:?}"
    );

    let client = Client::new(addr.to_string());
    let m = client.metrics().expect("metrics");
    assert!(metric(&m, "shed_queue_full") >= shed as i128);
    handle.join();
}

#[test]
fn stale_queued_requests_are_shed_on_dequeue() {
    let handle = start(|c| c.queue_deadline = Duration::ZERO, FaultPlan::default());
    let r = raw(&handle, &post("/analyze", "{}"));
    assert_eq!(r.status, 503, "zero queue deadline sheds everything");
    assert!(
        r.header("retry-after").is_some(),
        "shed answers carry Retry-After"
    );
    handle.join();
}

#[test]
fn worker_panics_answer_500_and_leave_the_engine_consistent() {
    let handle = start(|c| c.workers = 1, FaultPlan::new(0, 2, 0));
    let client = Client::new(handle.addr().to_string());
    let nest = builders::matmul(32, 32, 32);
    let queries = vec![Query::Tightness { cache_size: 256 }];

    let mut oracle = Engine::new();
    let expected = json::to_string(
        &oracle
            .analyze(&nest, &queries[0])
            .expect("oracle")
            .serialize(),
    );

    let mut five_hundreds = 0;
    let mut successes = 0;
    for _ in 0..6 {
        match client.analyze(&nest, &queries) {
            Ok(results) => {
                successes += 1;
                let answer = results[0].as_ref().expect("valid query");
                assert_eq!(
                    json::to_string(&answer.serialize()),
                    expected,
                    "answers after a panic are still bitwise-exact"
                );
            }
            Err(projtile_service::ClientError::Status(500, _)) => five_hundreds += 1,
            Err(other) => panic!("unexpected client error: {other}"),
        }
    }
    assert_eq!(five_hundreds, 3, "every second request panics");
    assert_eq!(successes, 3);
    let m = client.metrics().expect("metrics");
    assert_eq!(metric(&m, "panics"), 3);
    handle.join();
}

/// A scratch directory cleaned on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("projtile-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn snapshot_lifecycle_survives_torn_writes_and_restores_on_restart() {
    let tmp = TempDir::new("lifecycle");
    let config = |c: &mut ServerConfig| {
        c.snapshot_dir = Some(tmp.0.clone());
        c.snapshot_interval = Some(Duration::from_millis(40));
        c.snapshot_keep = 2;
    };
    let nest = builders::matmul(64, 64, 64);
    let queries = all_kinds_on(1 << 8, 2);

    // First life: warm the caches while every second periodic snapshot is
    // torn mid-write; drain (which publishes a clean final generation).
    {
        let handle = start(config, FaultPlan::new(0, 0, 2));
        let client = Client::new(handle.addr().to_string());
        let served = client.analyze(&nest, &queries).expect("warm");
        assert!(served.iter().all(Result::is_ok));
        std::thread::sleep(Duration::from_millis(200));
        let m = client.metrics().expect("metrics");
        assert!(metric(&m, "snapshots_published") >= 1, "periodic loop ran");
        assert!(metric(&m, "snapshot_failures") >= 1, "tear fault fired");
        handle.join();
    }

    // The store on disk: at most `keep` generations, and the newest valid
    // one restores even though torn staging data may be lying around.
    let store = SnapshotStore::open(&tmp.0, 2).expect("open");
    let generations = store.generations().expect("list");
    assert!(
        (1..=2).contains(&generations.len()),
        "GC bounds retention: {generations:?}"
    );
    let restored = store
        .restore_latest(SharedEngine::restore_json)
        .expect("walk")
        .expect("at least the drain snapshot is valid");
    assert!(restored.0 >= 1);

    // Second life: restart from the same directory; the warmed artifacts
    // must serve bitwise-identical answers as cache *hits*.
    let handle = start(config, FaultPlan::default());
    let client = Client::new(handle.addr().to_string());
    let served = client.analyze(&nest, &queries).expect("restored analyze");
    let mut oracle = Engine::new();
    for (i, (query, answer)) in queries.iter().zip(&served).enumerate() {
        let answer = answer.as_ref().expect("restored answers are whole");
        let expected = oracle.analyze(&nest, query).expect("oracle");
        assert_eq!(
            json::to_string(&answer.serialize()),
            json::to_string(&expected.serialize()),
            "restored query {i} diverges from the cold oracle"
        );
    }
    let stats = handle.engine().stats();
    assert!(
        stats.hits >= queries.len() as u64 - 1,
        "restored cache serves hits, got {stats:?}"
    );
    handle.join();
}

#[test]
fn drain_finishes_in_flight_work_then_closes_the_port() {
    let tmp = TempDir::new("drain");
    let handle = start(
        |c| {
            c.workers = 1;
            c.snapshot_dir = Some(tmp.0.clone());
        },
        FaultPlan::new(150, 0, 0),
    );
    let addr = handle.addr();

    // One slow request in flight...
    let worker = std::thread::spawn(move || {
        let client = Client::new(addr.to_string());
        client.analyze(
            &builders::matmul(16, 16, 16),
            &[Query::Tightness { cache_size: 64 }],
        )
    });
    std::thread::sleep(Duration::from_millis(50));

    // ...when an HTTP drain lands. The in-flight request still completes.
    let client = Client::new(addr.to_string());
    client.drain().expect("drain acknowledged");
    let served = worker.join().unwrap().expect("in-flight request finished");
    assert!(served[0].is_ok());

    handle.wait();
    assert!(
        TcpStream::connect(addr).is_err(),
        "port is closed after drain"
    );
    let store = SnapshotStore::open(&tmp.0, 3).expect("open");
    assert!(
        !store.generations().expect("list").is_empty(),
        "drain published a final snapshot"
    );
}

#[test]
fn client_retries_through_shedding_until_served() {
    let handle = start(
        |c| {
            c.workers = 1;
            c.queue_capacity = 1;
            c.retry_after_secs = 0;
        },
        FaultPlan::new(100, 0, 0),
    );
    let addr = handle.addr().to_string();
    let nest = builders::matmul(16, 16, 16);

    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let addr = addr.clone();
                let nest = &nest;
                scope.spawn(move || {
                    let client = Client::with_retry(
                        addr,
                        projtile_service::RetryConfig {
                            max_attempts: 12,
                            base_backoff: Duration::from_millis(40),
                            jitter_seed: 1 + i as u64,
                            ..Default::default()
                        },
                    );
                    client.analyze(nest, &[Query::Tightness { cache_size: 64 }])
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, outcome) in outcomes.iter().enumerate() {
        let served = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("client {i} not served through retries: {e}"));
        assert!(served[0].is_ok());
    }
    handle.join();
}

/// `/trace` serves the recorded query trace when the server boots with a
/// trace capacity (and an empty document otherwise), and `/metrics` breaks
/// the engine's hit/miss counters down per query kind.
#[test]
fn trace_endpoint_serves_a_replayable_document() {
    use projtile_core::engine::TraceDocument;

    // Without a trace capacity: the endpoint answers, with zero events.
    let handle = start(|_| {}, FaultPlan::default());
    let client = Client::new(handle.addr().to_string());
    let doc =
        TraceDocument::from_value(&client.trace().expect("trace")).expect("empty trace parses");
    assert!(doc.events.is_empty());
    handle.join();

    // With one: recorded events cover exactly the served queries, and the
    // document's counters reconcile with `/metrics` per-kind counters.
    let handle = start(|c| c.trace_capacity = 1 << 14, FaultPlan::default());
    let client = Client::new(handle.addr().to_string());
    let nest = builders::matmul(64, 64, 64);
    let queries = all_kinds_on(1 << 8, 2);
    for _ in 0..2 {
        let served = client.analyze(&nest, &queries).expect("analyze");
        assert!(served.iter().all(Result::is_ok));
    }
    let doc = TraceDocument::from_value(&client.trace().expect("trace")).expect("trace parses");
    assert_eq!(doc.events.len(), 2 * queries.len());
    assert_eq!(
        doc.queries,
        doc.hits + doc.misses,
        "no invalid queries sent"
    );
    assert!(doc.hits >= queries.len() as u64, "second round hits");

    let m = client.metrics().expect("metrics");
    let per_kind = m
        .field("engine")
        .and_then(|e| e.field("per_kind"))
        .expect("per-kind counters exported");
    let mut hits = 0i128;
    let mut misses = 0i128;
    for name in projtile_core::engine::QUERY_KIND_NAMES {
        let counters = per_kind.field(name).expect("every kind exported");
        hits += metric(counters, "hits");
        misses += metric(counters, "misses");
    }
    assert_eq!(hits as u64, doc.hits);
    assert_eq!(misses as u64, doc.misses);
    handle.join();
}
