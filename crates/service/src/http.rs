//! Minimal HTTP/1.1 request/response handling over raw [`TcpStream`]s.
//!
//! Exactly the subset the service needs: one request per connection, JSON
//! bodies, `Content-Length` framing, and — the robustness headline — a hard
//! wall-clock deadline on the *entire* read. Per-`recv` socket timeouts
//! alone do not stop a byte-dribbling client (each byte resets the timer);
//! here every read also re-checks the request's overall deadline, so a
//! client that trickles one byte per second is disconnected when the
//! deadline lapses, not when it finishes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard cap on request head (request line + headers) bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Hard cap on request body bytes; larger bodies answer `413`.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request: method, path, and raw body.
#[derive(Debug)]
pub struct Request {
    /// Uppercased request method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string included verbatim.
    pub path: String,
    /// Raw request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why reading a request failed, mapped by the server to a status code.
#[derive(Debug)]
pub enum ReadError {
    /// The read deadline lapsed before the full request arrived (`408`).
    Deadline,
    /// The request head or body exceeded its size cap (`413`).
    TooLarge,
    /// The bytes are not a parseable HTTP/1.1 request (`400`).
    Malformed(String),
    /// The connection failed mid-read (no response possible).
    Io(std::io::Error),
}

/// Reads one HTTP/1.1 request from `stream`, enforcing `deadline` over the
/// whole transfer (dribble-proof) and the head/body size caps.
pub fn read_request(stream: &mut TcpStream, deadline: Duration) -> Result<Request, ReadError> {
    let start = Instant::now();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];

    // Head: read until the blank line, re-arming a short socket timeout per
    // recv so the overall deadline is observed within ~100ms.
    let head_end = loop {
        if let Some(i) = find_blank_line(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge);
        }
        let filled = read_some(stream, &mut chunk, start, deadline)?;
        if filled.is_empty() {
            return Err(ReadError::Malformed("connection closed mid-head".into()));
        }
        buf.extend_from_slice(filled);
    };

    let head_bytes = buf
        .get(..head_end)
        .ok_or_else(|| ReadError::Malformed("head marker out of range".into()))?;
    let head = std::str::from_utf8(head_bytes)
        .map_err(|_| ReadError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line has no path".into()))?
        .to_string();

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ReadError::Malformed("bad Content-Length".into()))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }

    // Body: whatever followed the blank line, then read to length.
    let mut body = buf.get(head_end + 4..).unwrap_or_default().to_vec();
    while body.len() < content_length {
        let filled = read_some(stream, &mut chunk, start, deadline)?;
        if filled.is_empty() {
            return Err(ReadError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(filled);
    }
    body.truncate(content_length);

    Ok(Request { method, path, body })
}

/// One deadline-aware socket read: arms a short per-recv timeout, retries
/// on spurious timeouts while the overall deadline holds, and fails with
/// [`ReadError::Deadline`] once it lapses. Returns the filled prefix of
/// `chunk` (empty on orderly close), so callers never index the buffer.
fn read_some<'c>(
    stream: &mut TcpStream,
    chunk: &'c mut [u8],
    start: Instant,
    deadline: Duration,
) -> Result<&'c [u8], ReadError> {
    loop {
        let elapsed = start.elapsed();
        if elapsed >= deadline {
            return Err(ReadError::Deadline);
        }
        let leash = (deadline - elapsed).min(Duration::from_millis(100));
        stream
            .set_read_timeout(Some(leash.max(Duration::from_millis(1))))
            .map_err(ReadError::Io)?;
        match stream.read(chunk) {
            Ok(n) => return Ok(chunk.get(..n).unwrap_or(&[])),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete HTTP/1.1 response with a JSON body and closes framing
/// (`Connection: close`). `extra_headers` are emitted verbatim.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A parsed HTTP/1.1 response (client side).
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Lowercased `(name, value)` header pairs.
    pub headers: Vec<(String, String)>,
    /// Raw response body.
    pub body: Vec<u8>,
}

impl Response {
    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reads a full response from `stream` under an overall deadline (the
/// server closes after one response, so read-to-length then verify).
pub fn read_response(stream: &mut TcpStream, deadline: Duration) -> Result<Response, ReadError> {
    let start = Instant::now();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = find_blank_line(&buf) {
            break i;
        }
        let filled = read_some(stream, &mut chunk, start, deadline)?;
        if filled.is_empty() {
            return Err(ReadError::Malformed("connection closed mid-head".into()));
        }
        buf.extend_from_slice(filled);
    };
    let head_bytes = buf
        .get(..head_end)
        .ok_or_else(|| ReadError::Malformed("head marker out of range".into()))?;
    let head = std::str::from_utf8(head_bytes)
        .map_err(|_| ReadError::Malformed("response head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ReadError::Malformed(format!("bad status line `{status_line}`")))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Malformed("bad Content-Length".into()))?;
        }
        headers.push((name, value));
    }
    let mut body = buf.get(head_end + 4..).unwrap_or_default().to_vec();
    while body.len() < content_length {
        let filled = read_some(stream, &mut chunk, start, deadline)?;
        if filled.is_empty() {
            return Err(ReadError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(filled);
    }
    body.truncate(content_length);
    Ok(Response {
        status,
        headers,
        body,
    })
}
