//! Deliberate fault injection, so the robustness claims are *tested*
//! machinery rather than dead configuration.
//!
//! A [`FaultPlan`] is constructed programmatically by the integration suite
//! or parsed from the `PROJTILE_FAULTS` environment variable for manual
//! runs, e.g.:
//!
//! ```text
//! PROJTILE_FAULTS=compute_delay_ms=50,panic_every=3,torn_snapshot_every=2
//! ```
//!
//! Faults injected:
//! * `compute_delay_ms` — sleep before every compute (exercises queueing
//!   and deadline behavior under a slow engine);
//! * `panic_every` — every Nth analyze request panics mid-worker
//!   (exercises `catch_unwind` isolation and the `500` path);
//! * `torn_snapshot_every` — every Nth snapshot publication writes a torn
//!   staging file and "crashes" before the rename (exercises crash-safe
//!   publication and walk-back restore).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which faults to inject, and how often. The zero value (`default`)
/// injects nothing.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Milliseconds of artificial delay before each compute.
    pub compute_delay_ms: u64,
    /// Panic on every Nth analyze request (0 = never).
    pub panic_every: u64,
    /// Tear every Nth snapshot publication (0 = never).
    pub torn_snapshot_every: u64,
    requests: AtomicU64,
    snapshots: AtomicU64,
}

impl FaultPlan {
    /// A plan with explicit knobs (counters start at zero).
    pub fn new(compute_delay_ms: u64, panic_every: u64, torn_snapshot_every: u64) -> FaultPlan {
        FaultPlan {
            compute_delay_ms,
            panic_every,
            torn_snapshot_every,
            ..FaultPlan::default()
        }
    }

    /// Parses the `PROJTILE_FAULTS` environment variable; unset, empty, or
    /// unrecognized entries leave the corresponding knob at zero.
    pub fn from_env() -> FaultPlan {
        Self::parse(
            std::env::var("PROJTILE_FAULTS")
                .ok()
                .as_deref()
                .unwrap_or(""),
        )
    }

    /// Parses a `key=value,key=value` fault spec (the env-var syntax).
    pub fn parse(spec: &str) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let Some((key, value)) = part.split_once('=') else {
                continue;
            };
            let Ok(value) = value.trim().parse::<u64>() else {
                continue;
            };
            match key.trim() {
                "compute_delay_ms" => plan.compute_delay_ms = value,
                "panic_every" => plan.panic_every = value,
                "torn_snapshot_every" => plan.torn_snapshot_every = value,
                _ => {}
            }
        }
        plan
    }

    /// Applies the compute-delay fault, then panics if this request number
    /// hits the `panic_every` cadence. Callers run this *inside* their
    /// `catch_unwind` region, before touching any shared state.
    pub fn before_compute(&self) {
        if self.compute_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.compute_delay_ms));
        }
        if self.panic_every > 0 {
            let n = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
            if n.is_multiple_of(self.panic_every) {
                // lint: allow(L002) injected fault caught by the worker's catch_unwind
                panic!("injected worker panic (request {n})");
            }
        }
    }

    /// `true` when this snapshot publication should be torn instead of
    /// completed (the caller uses
    /// [`SnapshotStore::torn_publish`](projtile_core::engine::SnapshotStore::torn_publish)).
    pub fn tear_this_snapshot(&self) -> bool {
        if self.torn_snapshot_every == 0 {
            return false;
        }
        let n = self.snapshots.fetch_add(1, Ordering::Relaxed) + 1;
        n.is_multiple_of(self.torn_snapshot_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spec_and_ignores_junk() {
        let plan = FaultPlan::parse("compute_delay_ms=5, panic_every=3,junk,bad=x");
        assert_eq!(plan.compute_delay_ms, 5);
        assert_eq!(plan.panic_every, 3);
        assert_eq!(plan.torn_snapshot_every, 0);
    }

    #[test]
    fn panic_cadence_fires_every_nth() {
        let plan = FaultPlan::new(0, 3, 0);
        let mut panicked = 0;
        for _ in 0..9 {
            if std::panic::catch_unwind(|| plan.before_compute()).is_err() {
                panicked += 1;
            }
        }
        assert_eq!(panicked, 3, "every third request panics");
    }

    #[test]
    fn tear_cadence_fires_every_nth() {
        let plan = FaultPlan::new(0, 0, 2);
        let torn: Vec<bool> = (0..6).map(|_| plan.tear_this_snapshot()).collect();
        assert_eq!(torn, vec![false, true, false, true, false, true]);
    }
}
