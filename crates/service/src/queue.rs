//! The bounded admission queue between the accept loop and the workers.
//!
//! Built on [`std::sync::Mutex`]/[`Condvar`] (the workspace's
//! `parking_lot`/`crossbeam` shims expose no condition variables or
//! channels — see `shims/`). Capacity is fixed at construction:
//! [`BoundedQueue::try_push`] never blocks and reports a full queue to the
//! caller, which is what lets the accept loop shed load with `503` instead
//! of queueing unboundedly.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A fixed-capacity MPMC queue with non-blocking push and timed blocking
/// pop, plus a close signal that drains in-flight items before waking
/// every consumer with `None`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item` if there is room, returning it to the caller when
    /// the queue is full or closed (the caller sheds or drops it).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.items.len() >= inner.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking up to `patience` for one to
    /// arrive. Returns `None` on timeout or when the queue is closed *and*
    /// empty — a closed queue still hands out its remaining items, which is
    /// what makes a drain graceful.
    pub fn pop(&self, patience: Duration) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let (guard, wait) = self
                .ready
                .wait_timeout(inner, patience)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if wait.timed_out() {
                return inner.items.pop_front();
            }
        }
    }

    /// Closes the queue: future pushes fail, and consumers drain what
    /// remains before observing `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// `true` once [`BoundedQueue::close`] has been called. Consumers use
    /// this to tell a pop timeout (keep polling) from a drained shutdown.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_fails_at_capacity_and_pop_drains_in_order() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue sheds");
        assert_eq!(q.pop(Duration::from_millis(1)), Some(1));
        assert_eq!(q.pop(Duration::from_millis(1)), Some(2));
        assert_eq!(q.pop(Duration::from_millis(1)), None, "empty times out");
    }

    #[test]
    fn close_wakes_consumers_after_drain() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue rejects pushes");
        assert_eq!(q.pop(Duration::from_secs(5)), Some(7), "drains remainder");
        assert_eq!(q.pop(Duration::from_secs(5)), None, "then observes close");
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(64));
        let produced = 4 * 100;
        let qp = Arc::clone(&q);
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&qp);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let mut item = t * 1000 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0usize;
                    while q.pop(Duration::from_millis(200)).is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let got: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(got, produced, "every produced item is consumed once");
    }
}
