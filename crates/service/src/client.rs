//! A retrying client for the analysis service, used by the
//! `projtile-query` binary and the integration suite.
//!
//! Transient failures — connection refused, `503` shed, read deadline —
//! are retried with exponential backoff plus deterministic xorshift
//! jitter (so simultaneous clients decorrelate without a clock or OS
//! entropy dependency). A `503`'s `Retry-After` header, when present,
//! overrides the computed backoff for that attempt. Non-transient answers
//! (`400`, `404`, `500`, …) surface immediately: retrying a malformed
//! request cannot fix it, and the engine recomputes deterministically, so
//! replaying a `500`-answered request after a panic is *safe* but not
//! automatic.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use projtile_core::engine::{AnalysisResult, Query};
use projtile_loopnest::LoopNest;
use serde::{json, Deserialize, Serialize, Value};

use crate::http::{read_response, ReadError, Response};

/// Retry policy for [`Client`].
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Total attempts before giving up (min 1).
    pub max_attempts: usize,
    /// Backoff before the second attempt; doubles per retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff (also caps honored `Retry-After`).
    pub max_backoff: Duration,
    /// Per-attempt deadline for reading the full response.
    pub response_deadline: Duration,
    /// Seed for the deterministic jitter stream (same seed, same jitter).
    pub jitter_seed: u64,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            max_attempts: 5,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            response_deadline: Duration::from_secs(30),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Why a client call failed after exhausting its retry budget (or hitting
/// a non-retryable answer).
#[derive(Debug)]
pub enum ClientError {
    /// Every attempt failed with a transient error; the payload is the
    /// last one observed.
    Exhausted(String),
    /// The server answered with a non-transient error status.
    Status(u16, String),
    /// The server's bytes were not a valid response for this protocol.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted(last) => {
                write!(f, "retries exhausted; last error: {last}")
            }
            ClientError::Status(code, body) => write!(f, "server answered {code}: {body}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A client bound to one server address. Cheap to construct; every request
/// opens a fresh connection (the server speaks `Connection: close`).
#[derive(Debug)]
pub struct Client {
    addr: String,
    retry: RetryConfig,
    jitter: AtomicU64,
}

impl Client {
    /// A client with the default retry policy.
    pub fn new(addr: impl Into<String>) -> Client {
        Client::with_retry(addr, RetryConfig::default())
    }

    /// A client with an explicit retry policy.
    pub fn with_retry(addr: impl Into<String>, retry: RetryConfig) -> Client {
        let jitter = AtomicU64::new(retry.jitter_seed.max(1));
        Client {
            addr: addr.into(),
            retry,
            jitter,
        }
    }

    /// Analyzes `queries` against `nest`, returning per-query outcomes in
    /// input order (engine errors ride as `Err(message)` entries).
    pub fn analyze(
        &self,
        nest: &LoopNest,
        queries: &[Query],
    ) -> Result<Vec<Result<AnalysisResult, String>>, ClientError> {
        let body = json::to_string(&Value::Object(vec![
            ("nest".to_string(), nest.serialize()),
            (
                "queries".to_string(),
                Value::Array(queries.iter().map(Serialize::serialize).collect()),
            ),
        ]));
        let response = self.request("POST", "/analyze", &body)?;
        let text = std::str::from_utf8(&response.body)
            .map_err(|_| ClientError::Protocol("response body is not UTF-8".to_string()))?;
        let doc =
            json::parse(text).map_err(|e| ClientError::Protocol(format!("response body: {e}")))?;
        let entries = match doc.field("results") {
            Ok(Value::Array(entries)) => entries,
            _ => {
                return Err(ClientError::Protocol(
                    "response lacks a `results` array".to_string(),
                ))
            }
        };
        entries
            .iter()
            .map(|entry| {
                if let Ok(ok) = entry.field("ok") {
                    return AnalysisResult::deserialize(ok)
                        .map(Ok)
                        .map_err(|e| ClientError::Protocol(format!("result entry: {e}")));
                }
                match entry.field("err") {
                    Ok(Value::String(msg)) => Ok(Err(msg.clone())),
                    _ => Err(ClientError::Protocol(
                        "result entry has neither `ok` nor `err`".to_string(),
                    )),
                }
            })
            .collect()
    }

    /// Fetches the `/metrics` document.
    pub fn metrics(&self) -> Result<Value, ClientError> {
        let response = self.request("GET", "/metrics", "")?;
        let text = std::str::from_utf8(&response.body)
            .map_err(|_| ClientError::Protocol("metrics body is not UTF-8".to_string()))?;
        json::parse(text).map_err(|e| ClientError::Protocol(format!("metrics body: {e}")))
    }

    /// Fetches the `/trace` document (the recorded query trace; an empty
    /// document when the server runs without `--trace-capacity`).
    pub fn trace(&self) -> Result<Value, ClientError> {
        let response = self.request("GET", "/trace", "")?;
        let text = std::str::from_utf8(&response.body)
            .map_err(|_| ClientError::Protocol("trace body is not UTF-8".to_string()))?;
        json::parse(text).map_err(|e| ClientError::Protocol(format!("trace body: {e}")))
    }

    /// Health check; `Ok` means the server answered `200`.
    pub fn healthz(&self) -> Result<(), ClientError> {
        self.request("GET", "/healthz", "").map(|_| ())
    }

    /// Asks the server to drain gracefully.
    pub fn drain(&self) -> Result<(), ClientError> {
        self.request("POST", "/admin/drain", "").map(|_| ())
    }

    /// One logical request with the retry loop: connect failures, read
    /// deadlines, and `503` answers back off and retry; anything else
    /// returns (success) or surfaces (client/server error).
    fn request(&self, method: &str, path: &str, body: &str) -> Result<Response, ClientError> {
        let attempts = self.retry.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff(attempt, &last));
            }
            match self.attempt(method, path, body) {
                Ok(response) if response.status == 503 => {
                    last = format!(
                        "503 ({})",
                        response.header("retry-after").unwrap_or("no retry-after")
                    );
                }
                Ok(response) if response.status == 200 => return Ok(response),
                Ok(response) => {
                    let body = String::from_utf8_lossy(&response.body).into_owned();
                    return Err(ClientError::Status(response.status, body));
                }
                Err(transient) => last = transient,
            }
        }
        Err(ClientError::Exhausted(last))
    }

    /// A single connect-send-read attempt; `Err` is a transient failure
    /// description.
    fn attempt(&self, method: &str, path: &str, body: &str) -> Result<Response, String> {
        let mut stream = TcpStream::connect(&self.addr).map_err(|e| format!("connect: {e}"))?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .and_then(|()| stream.flush())
            .map_err(|e| format!("send: {e}"))?;
        match read_response(&mut stream, self.retry.response_deadline) {
            Ok(response) => Ok(response),
            Err(ReadError::Deadline) => Err("response deadline exceeded".to_string()),
            Err(ReadError::TooLarge) => Err("oversized response".to_string()),
            Err(ReadError::Malformed(msg)) => Err(format!("malformed response: {msg}")),
            Err(ReadError::Io(e)) => Err(format!("read: {e}")),
        }
    }

    /// Backoff before retry number `attempt` (≥ 1): a `Retry-After` from
    /// the previous answer when present, otherwise exponential growth from
    /// the base — either way jittered and capped.
    fn backoff(&self, attempt: usize, last: &str) -> Duration {
        let advised = last
            .strip_prefix("503 (")
            .and_then(|rest| rest.strip_suffix(')'))
            .and_then(|secs| secs.parse::<u64>().ok())
            .map(Duration::from_secs)
            // `Retry-After: 0` means "no advice", not "hammer immediately".
            .filter(|d| !d.is_zero());
        let base = advised.unwrap_or_else(|| {
            self.retry
                .base_backoff
                .saturating_mul(1u32 << (attempt - 1).min(16) as u32)
        });
        let capped = base.min(self.retry.max_backoff);
        // xorshift64*: deterministic per-client jitter in [0, capped/2].
        let mut x = self.jitter.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter.store(x, Ordering::Relaxed);
        let half = capped.as_millis().max(2) as u64 / 2;
        capped + Duration::from_millis(x.checked_rem(half.max(1)).unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_honors_retry_after() {
        let client = Client::new("127.0.0.1:1");
        let b1 = client.backoff(1, "connect: refused");
        let b3 = client.backoff(3, "connect: refused");
        assert!(b3 > b1, "backoff grows: {b1:?} vs {b3:?}");
        let advised = client.backoff(1, "503 (2)");
        assert!(
            advised >= Duration::from_secs(2),
            "Retry-After floor: {advised:?}"
        );
        let capped = client.backoff(16, "connect: refused");
        assert!(
            capped <= RetryConfig::default().max_backoff * 3 / 2,
            "cap plus jitter: {capped:?}"
        );
    }

    #[test]
    fn jitter_stream_is_deterministic_per_seed() {
        let a = Client::new("x");
        let b = Client::new("x");
        for attempt in 1..5 {
            assert_eq!(a.backoff(attempt, ""), b.backoff(attempt, ""));
        }
    }
}
