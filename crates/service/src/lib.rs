//! A hardened TCP front end for the projtile analysis engine.
//!
//! The service answers the existing [`Query`]/[`AnalysisResult`] JSON over
//! a minimal HTTP/1.1 listener ([`std::net::TcpListener`]), with the
//! robustness properties a long-running exact-LP service needs — each one
//! deliberately fault-injectable ([`FaultPlan`]) and covered by the
//! integration suite:
//!
//! * **Read deadlines** — a client must deliver its whole request within
//!   [`ServerConfig::read_deadline`]; byte-dribbling clients are
//!   disconnected with `408` instead of pinning a worker.
//! * **Backpressure** — admission goes through a bounded queue
//!   ([`queue::BoundedQueue`]); when it is full the accept loop sheds with
//!   `503 + Retry-After` instead of queueing unboundedly, and requests that
//!   sat queued past [`ServerConfig::queue_deadline`] are shed on dequeue
//!   rather than computed late.
//! * **Panic isolation** — worker compute runs under
//!   [`std::panic::catch_unwind`]; a panicking request answers `500` and
//!   the engine stays consistent (computation happens outside the shard
//!   locks, so an unwound worker cannot poison shared state).
//! * **Exactness** — every served answer goes through
//!   [`SharedEngine::analyze_batch`] (which dedups canonically-equal
//!   queries within a request), so responses are bitwise-identical to the
//!   cold free-function oracles no matter how requests are dropped,
//!   retried, or replayed after a crash.
//! * **Crash-safe persistence** — a background loop publishes snapshots
//!   through [`projtile_core::engine::SnapshotStore`] (atomic
//!   `snap.tmp` → fsync → rename, bounded retention), and startup restore
//!   walks back to the newest *valid* generation.
//! * **Observability** — `GET /metrics` surfaces cache metrics, queue
//!   depth, shed/panic/timeout counters, and per-query-kind latency
//!   histograms with p50/p99.
//!
//! # Wire protocol
//!
//! One request per connection (`Connection: close`); bodies are JSON.
//!
//! | Route | Body | Answer |
//! |---|---|---|
//! | `POST /analyze` | `{"nest": <LoopNest>, "queries": [<Query>…]}` | `{"results": [{"ok": <AnalysisResult>} \| {"err": "…"}…]}` |
//! | `GET /healthz` | — | `{"status":"ok"}` |
//! | `GET /metrics` | — | metrics JSON (see [`metrics`]) |
//! | `POST /admin/drain` | — | `{"draining":true}`, then graceful drain |
//!
//! Error taxonomy: `400` malformed JSON / invalid nest, `404` unknown
//! route, `405` wrong method, `408` read deadline exceeded, `413` body too
//! large, `500` worker panic, `503` shed (with `Retry-After`). Per-query
//! engine errors ride inside a `200` body as `{"err": …}` entries so one
//! bad query does not void its batch-mates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The no-panic request surface (lint rule L002), also enforced by clippy so
// plain `cargo clippy` flags a new unwrap before the lint stage runs. Test
// code (the `#[cfg(test)]` modules below) may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod fault;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod server;

pub use client::{Client, ClientError, RetryConfig};
pub use fault::FaultPlan;
pub use metrics::Metrics;
pub use server::{Server, ServerConfig, ServerHandle};

// Re-exported for doc links and downstream convenience: the wire types the
// service speaks are exactly the engine's, and `/metrics` documents parse
// into the workspace serde `Value` tree.
pub use projtile_core::engine::{AnalysisResult, Query, SharedEngine};
pub use serde::Value;
