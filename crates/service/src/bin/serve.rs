//! `projtile-serve` — run the hardened analysis service.
//!
//! ```text
//! projtile-serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!                [--read-deadline-ms N] [--queue-deadline-ms N]
//!                [--snapshot-dir DIR] [--snapshot-interval-ms N]
//!                [--snapshot-keep K] [--retry-after-secs N]
//!                [--trace-capacity N]
//! ```
//!
//! Faults are injected via the `PROJTILE_FAULTS` environment variable
//! (see `projtile_service::FaultPlan`). Query-trace recording for the
//! cache policy lab is enabled with `--trace-capacity N` or the
//! `PROJTILE_TRACE_CAPACITY` environment variable (the flag wins when
//! both are set); the trace is drained via `GET /trace`. The bound
//! address is printed on stdout as `listening on ADDR` once the listener
//! is live; the process exits after a graceful drain
//! (`POST /admin/drain`).

use std::path::PathBuf;
use std::time::Duration;

use projtile_service::{FaultPlan, Server, ServerConfig};

fn main() {
    let mut config = ServerConfig::default();
    if let Ok(value) = std::env::var("PROJTILE_TRACE_CAPACITY") {
        config.trace_capacity = parse("PROJTILE_TRACE_CAPACITY", &value);
    }
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            eprintln!("{}", USAGE);
            return;
        }
        let Some(value) = args.next() else {
            die(&format!("flag `{flag}` needs a value"));
        };
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--workers" => config.workers = parse(&flag, &value),
            "--queue-capacity" => config.queue_capacity = parse(&flag, &value),
            "--read-deadline-ms" => {
                config.read_deadline = Duration::from_millis(parse(&flag, &value));
            }
            "--queue-deadline-ms" => {
                config.queue_deadline = Duration::from_millis(parse(&flag, &value));
            }
            "--snapshot-dir" => config.snapshot_dir = Some(PathBuf::from(value)),
            "--snapshot-interval-ms" => {
                config.snapshot_interval = Some(Duration::from_millis(parse(&flag, &value)));
            }
            "--snapshot-keep" => config.snapshot_keep = parse(&flag, &value),
            "--retry-after-secs" => config.retry_after_secs = parse(&flag, &value),
            "--trace-capacity" => config.trace_capacity = parse(&flag, &value),
            other => die(&format!("unknown flag `{other}`\n{USAGE}")),
        }
    }

    let fault = FaultPlan::from_env();
    match Server::start(config, fault) {
        Ok(handle) => {
            // `println!` + explicit flush so wrappers polling stdout see the
            // address immediately.
            println!("listening on {}", handle.addr());
            use std::io::Write;
            let _ = std::io::stdout().flush();
            handle.wait();
            println!("drained; exiting");
        }
        Err(e) => die(&format!("failed to start: {e}")),
    }
}

const USAGE: &str = "usage: projtile-serve [--addr HOST:PORT] [--workers N] \
[--queue-capacity N] [--read-deadline-ms N] [--queue-deadline-ms N] \
[--snapshot-dir DIR] [--snapshot-interval-ms N] [--snapshot-keep K] \
[--retry-after-secs N] [--trace-capacity N]";

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("flag `{flag}`: bad value `{value}`")))
}

fn die(msg: &str) -> ! {
    eprintln!("projtile-serve: {msg}");
    std::process::exit(2);
}
