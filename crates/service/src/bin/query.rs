//! `projtile-query` — CLI client for the analysis service.
//!
//! ```text
//! projtile-query [--seed N] ADDR health      # 200 check
//! projtile-query [--seed N] ADDR metrics     # print /metrics JSON
//! projtile-query [--seed N] ADDR trace       # print /trace JSON
//! projtile-query [--seed N] ADDR drain       # graceful shutdown
//! projtile-query [--seed N] ADDR analyze FILE|-  # {"nest":…,"queries":[…]}
//! projtile-query [--seed N] ADDR verify      # served == local oracle check
//! ```
//!
//! All commands retry transient failures (connect refused, `503`, read
//! deadline) with exponential backoff and jitter; see
//! `projtile_service::RetryConfig` for the policy. `--seed N` pins the
//! jitter stream so a drill's backoff schedule replays exactly. `verify`
//! asks the server a mixed batch about the paper's matmul nest and
//! insists each answer is bitwise-identical to a cold local engine — the
//! same oracle the integration suite uses, runnable against a live
//! deployment.

use std::io::Read;

use projtile_core::engine::{Engine, Query};
use projtile_loopnest::{builders, LoopNest};
use projtile_service::{Client, RetryConfig};
use serde::{json, Deserialize, Serialize, Value};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut retry = RetryConfig::default();
    if args.first().map(String::as_str) == Some("--seed") {
        let Some(value) = args.get(1) else {
            die("flag `--seed` needs a value");
        };
        match value.parse::<u64>() {
            Ok(seed) => retry.jitter_seed = seed.max(1),
            Err(_) => die(&format!("flag `--seed`: bad value `{value}`")),
        }
        args.drain(..2);
    }
    let (addr, command, rest) = match args.as_slice() {
        [addr, command, rest @ ..] => (addr.as_str(), command.as_str(), rest),
        _ => die(USAGE),
    };
    let client = Client::with_retry(addr, retry);
    let outcome = match (command, rest) {
        ("health", []) => client.healthz().map(|()| println!("ok")),
        ("metrics", []) => client
            .metrics()
            .map(|doc| println!("{}", json::to_string(&doc))),
        ("trace", []) => client
            .trace()
            .map(|doc| println!("{}", json::to_string(&doc))),
        ("drain", []) => client.drain().map(|()| println!("draining")),
        ("analyze", [file]) => match read_request_file(file) {
            Ok((nest, queries)) => client
                .analyze(&nest, &queries)
                .map(|results| print_results(&results)),
            Err(msg) => die(&msg),
        },
        ("verify", []) => match verify(&client) {
            Ok(checked) => {
                println!("verified: {checked} served answers match the local oracle");
                Ok(())
            }
            Err(msg) => die(&msg),
        },
        _ => die(USAGE),
    };
    if let Err(e) = outcome {
        eprintln!("projtile-query: {e}");
        std::process::exit(1);
    }
}

const USAGE: &str =
    "usage: projtile-query [--seed N] ADDR health|metrics|trace|drain|verify|analyze FILE";

/// Reads and validates an analyze request document (path or `-` = stdin).
fn read_request_file(path: &str) -> Result<(LoopNest, Vec<Query>), String> {
    let text = if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("stdin: {e}"))?;
        text
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let nest = doc
        .field("nest")
        .and_then(LoopNest::deserialize)
        .map_err(|e| format!("{path}: nest: {e}"))?;
    let queries = doc
        .field("queries")
        .and_then(Vec::<Query>::deserialize)
        .map_err(|e| format!("{path}: queries: {e}"))?;
    Ok((nest, queries))
}

fn print_results(results: &[Result<projtile_core::engine::AnalysisResult, String>]) {
    let entries: Vec<Value> = results
        .iter()
        .map(|r| {
            let (tag, payload) = match r {
                Ok(result) => ("ok", result.serialize()),
                Err(msg) => ("err", Value::String(msg.clone())),
            };
            Value::Object(vec![(tag.to_string(), payload)])
        })
        .collect();
    println!(
        "{}",
        json::to_string(&Value::Object(vec![(
            "results".to_string(),
            Value::Array(entries)
        )]))
    );
}

/// Asks the server a mixed batch and checks every answer bitwise against a
/// cold local engine. Returns the number of answers checked.
fn verify(client: &Client) -> Result<usize, String> {
    let nest = builders::matmul(64, 64, 64);
    let m = 1u64 << 8;
    let queries = vec![
        Query::LowerBound { cache_size: m },
        Query::EnumeratedBound { cache_size: m },
        Query::OptimalTiling { cache_size: m },
        Query::Tightness { cache_size: m },
        Query::Slice {
            cache_size: m,
            axis: 2,
            lo_bound: 1,
            hi_bound: 64,
        },
    ];
    let served = client
        .analyze(&nest, &queries)
        .map_err(|e| format!("analyze: {e}"))?;
    if served.len() != queries.len() {
        return Err(format!(
            "expected {} answers, got {}",
            queries.len(),
            served.len()
        ));
    }
    let mut oracle = Engine::new();
    for (i, (query, answer)) in queries.iter().zip(&served).enumerate() {
        let answer = answer
            .as_ref()
            .map_err(|msg| format!("query {i} answered with an error: {msg}"))?;
        let expected = oracle
            .analyze(&nest, query)
            .map_err(|e| format!("local oracle failed on query {i}: {e}"))?;
        let served_json = json::to_string(&answer.serialize());
        let expected_json = json::to_string(&expected.serialize());
        if served_json != expected_json {
            return Err(format!(
                "query {i} diverges from the local oracle:\n  served:   {served_json}\n  expected: {expected_json}"
            ));
        }
    }
    Ok(served.len())
}

fn die(msg: &str) -> ! {
    eprintln!("projtile-query: {msg}");
    std::process::exit(2);
}
