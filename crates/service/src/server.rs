//! The server proper: accept loop, bounded admission, worker pool, panic
//! isolation, snapshot lifecycle, and graceful drain.
//!
//! Threading layout: [`Server::start`] spawns one supervisor thread which
//! runs [`projtile_par::fan_out`] over `workers + 2` roles — role 0 is the
//! accept loop, role 1 the snapshot loop, and the rest are request workers
//! pulling from the shared [`BoundedQueue`]. A drain (triggered by
//! [`ServerHandle::begin_drain`] or `POST /admin/drain`) stops the accept
//! loop, closes the queue (workers finish what is queued, then exit),
//! publishes a final snapshot once the last in-flight request completes,
//! and lets `fan_out` join everything.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use projtile_core::engine::{
    query_kind_index, BoundedLruStats, Query, SharedEngine, SnapshotStore,
};
use projtile_loopnest::LoopNest;
use serde::{json, Deserialize, Serialize, Value};

use crate::fault::FaultPlan;
use crate::http::{read_request, write_response, ReadError, Request};
use crate::metrics::{Metrics, QUERY_KINDS};
use crate::queue::BoundedQueue;

/// Server tuning knobs. [`Default`] is suitable for tests and local runs:
/// an ephemeral loopback port, one worker per available thread, and no
/// snapshot persistence.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Request workers (0 means [`projtile_par::num_threads`]).
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed with `503`.
    pub queue_capacity: usize,
    /// Wall-clock deadline for reading one full request (dribble-proof).
    pub read_deadline: Duration,
    /// Maximum time a connection may sit queued before it is shed on
    /// dequeue instead of computed late.
    pub queue_deadline: Duration,
    /// Interval between background snapshot publications (`None` disables
    /// the periodic loop; a final drain snapshot still happens when
    /// `snapshot_dir` is set).
    pub snapshot_interval: Option<Duration>,
    /// Snapshot directory (`None` disables persistence entirely).
    pub snapshot_dir: Option<PathBuf>,
    /// Snapshot generations retained by GC.
    pub snapshot_keep: usize,
    /// Value of the `Retry-After` header on `503` responses, in seconds.
    pub retry_after_secs: u64,
    /// Capacity (in events) of the engine's query-trace recorder, drained
    /// via `GET /trace` for the cache policy lab; 0 disables recording.
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            read_deadline: Duration::from_secs(2),
            queue_deadline: Duration::from_secs(5),
            snapshot_interval: None,
            snapshot_dir: None,
            snapshot_keep: 3,
            retry_after_secs: 1,
            trace_capacity: 0,
        }
    }
}

/// One admitted connection, stamped so stale queue entries can be shed.
struct Job {
    stream: TcpStream,
    enqueued: Instant,
}

/// State shared by the accept loop, workers, snapshot loop, and handle.
struct Shared {
    engine: SharedEngine,
    queue: BoundedQueue<Job>,
    metrics: Metrics,
    fault: FaultPlan,
    store: Option<SnapshotStore>,
    draining: AtomicBool,
    in_flight: AtomicU64,
    config: ServerConfig,
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Binds, restores the newest valid snapshot generation (when
    /// persistence is configured), and starts the accept/worker/snapshot
    /// threads. Returns once the listener is live.
    pub fn start(config: ServerConfig, fault: FaultPlan) -> std::io::Result<ServerHandle> {
        let store = match &config.snapshot_dir {
            Some(dir) => Some(SnapshotStore::open(dir, config.snapshot_keep)?),
            None => None,
        };
        let mut engine = match &store {
            Some(store) => store
                .restore_latest(SharedEngine::restore_json)?
                .map(|(_, engine)| engine)
                .unwrap_or_default(),
            None => SharedEngine::new(),
        };
        if config.trace_capacity > 0 {
            // Attached before the engine is shared: the recorder itself is
            // lock-free, but installing it needs `&mut`.
            engine.set_trace_capacity(config.trace_capacity);
        }

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let workers = if config.workers == 0 {
            projtile_par::num_threads()
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            engine,
            queue: BoundedQueue::new(config.queue_capacity),
            metrics: Metrics::default(),
            fault,
            store,
            draining: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            config,
        });

        let shared_for_threads = Arc::clone(&shared);
        let join = std::thread::spawn(move || {
            let shared = shared_for_threads;
            projtile_par::fan_out(workers + 2, |role| match role {
                0 => accept_loop(&shared, &listener),
                1 => snapshot_loop(&shared),
                _ => worker_loop(&shared),
            });
        });

        Ok(ServerHandle {
            addr,
            shared,
            join: Some(join),
        })
    }
}

/// A running server: its bound address, drain control, and introspection
/// for tests. Dropping the handle without [`ServerHandle::join`] leaves the
/// server running detached.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound socket address (resolves `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service metrics, shared live with the worker threads.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The engine behind the service (for oracle comparisons in tests).
    pub fn engine(&self) -> &SharedEngine {
        &self.shared.engine
    }

    /// Starts a graceful drain: stop accepting, finish queued and in-flight
    /// requests, publish a final snapshot, exit all threads. Idempotent;
    /// returns immediately (use [`ServerHandle::join`] to wait).
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Drains (if not already draining) and blocks until every server
    /// thread has exited.
    pub fn join(mut self) {
        self.begin_drain();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Blocks until the server exits on its own (a `POST /admin/drain`),
    /// without initiating a drain — what the `projtile-serve` binary does.
    pub fn wait(mut self) {
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Role 0: accept connections and admit them to the bounded queue,
/// shedding with `503 + Retry-After` when it is full. Exits on drain and
/// closes the queue behind itself (no further pushes can happen).
fn accept_loop(shared: &Shared, listener: &TcpListener) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Accepted sockets must not inherit the listener's
                // non-blocking mode (platform-dependent); reads are paced
                // by per-recv timeouts instead.
                let _ = stream.set_nonblocking(false);
                shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                let job = Job {
                    stream,
                    enqueued: Instant::now(),
                };
                if let Err(mut job) = shared.queue.try_push(job) {
                    shared
                        .metrics
                        .shed_queue_full
                        .fetch_add(1, Ordering::Relaxed);
                    respond_overloaded(&mut job.stream, shared);
                }
                shared
                    .metrics
                    .queue_depth
                    .store(shared.queue.len() as u64, Ordering::Relaxed);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    shared.queue.close();
}

/// Role 1: periodic snapshot publication, plus the final drain snapshot
/// once the queue has emptied and the last in-flight request finished.
fn snapshot_loop(shared: &Shared) {
    let mut last = Instant::now();
    loop {
        if shared.draining.load(Ordering::SeqCst)
            && shared.queue.is_closed()
            && shared.queue.is_empty()
            && shared.in_flight.load(Ordering::SeqCst) == 0
        {
            // Final snapshot: always a real publication (the tear fault
            // models a crash mid-write, not a failed graceful drain).
            if let Some(store) = &shared.store {
                publish(shared, store, false);
            }
            return;
        }
        if let (Some(store), Some(interval)) = (&shared.store, shared.config.snapshot_interval) {
            if last.elapsed() >= interval {
                last = Instant::now();
                publish(shared, store, shared.fault.tear_this_snapshot());
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One snapshot publication; `torn` simulates a crash between staging and
/// rename (the staging file is written truncated and never renamed).
fn publish(shared: &Shared, store: &SnapshotStore, torn: bool) {
    let text = shared.engine.snapshot_json();
    // A torn publication counts as a failure: the staging file was written
    // truncated and never renamed, exactly as if the process died mid-write.
    let succeeded = !torn && store.publish(&text).is_ok();
    if torn {
        let _ = store.torn_publish(&text, text.len() / 2);
    }
    let counter = if succeeded {
        &shared.metrics.snapshots_published
    } else {
        &shared.metrics.snapshot_failures
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Roles 2 and up: pull admitted connections and serve them. Exits when
/// the queue is closed and drained.
fn worker_loop(shared: &Shared) {
    loop {
        match shared.queue.pop(Duration::from_millis(100)) {
            Some(job) => {
                shared.in_flight.fetch_add(1, Ordering::SeqCst);
                shared
                    .metrics
                    .queue_depth
                    .store(shared.queue.len() as u64, Ordering::Relaxed);
                handle(shared, job);
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if shared.queue.is_closed() {
                    return;
                }
            }
        }
    }
}

/// Serves one admitted connection end to end, mapping every failure mode
/// to its status code (see the crate docs for the taxonomy).
fn handle(shared: &Shared, mut job: Job) {
    let started = Instant::now();
    if job.enqueued.elapsed() > shared.config.queue_deadline {
        shared.metrics.shed_expired.fetch_add(1, Ordering::Relaxed);
        respond_overloaded(&mut job.stream, shared);
        return;
    }
    let request = match read_request(&mut job.stream, shared.config.read_deadline) {
        Ok(request) => request,
        Err(ReadError::Deadline) => {
            shared.metrics.read_timeouts.fetch_add(1, Ordering::Relaxed);
            respond_error(
                &mut job.stream,
                408,
                "Request Timeout",
                "read deadline exceeded",
            );
            return;
        }
        Err(ReadError::TooLarge) => {
            respond_error(
                &mut job.stream,
                413,
                "Payload Too Large",
                "request exceeds size cap",
            );
            return;
        }
        Err(ReadError::Malformed(msg)) => {
            shared.metrics.parse_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(&mut job.stream, 400, "Bad Request", &msg);
            return;
        }
        Err(ReadError::Io(_)) => return,
    };
    route(shared, &mut job.stream, &request);
    shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
    shared.metrics.request_latency.record(started.elapsed());
}

fn route(shared: &Shared, stream: &mut TcpStream, request: &Request) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/analyze") => analyze(shared, stream, &request.body),
        ("GET", "/healthz") => {
            let _ = write_response(stream, 200, "OK", &[], r#"{"status":"ok"}"#);
        }
        ("GET", "/metrics") => {
            let body = json::to_string(&shared.metrics.render(engine_value(shared)));
            let _ = write_response(stream, 200, "OK", &[], &body);
        }
        ("GET", "/trace") => {
            // Drains the recorded query trace (without resetting it); an
            // empty document with zero events when recording is disabled.
            let body = shared.engine.trace_document().to_json();
            let _ = write_response(stream, 200, "OK", &[], &body);
        }
        ("POST", "/admin/drain") => {
            let _ = write_response(stream, 200, "OK", &[], r#"{"draining":true}"#);
            shared.draining.store(true, Ordering::SeqCst);
        }
        (_, "/analyze" | "/healthz" | "/metrics" | "/trace" | "/admin/drain") => {
            respond_error(stream, 405, "Method Not Allowed", "wrong method for route");
        }
        _ => respond_error(stream, 404, "Not Found", "unknown route"),
    }
}

/// `POST /analyze`: parse, validate, compute under `catch_unwind`, answer.
fn analyze(shared: &Shared, stream: &mut TcpStream, body: &[u8]) {
    let parsed = std::str::from_utf8(body)
        .map_err(|_| serde::Error::custom("body is not UTF-8"))
        .and_then(json::parse)
        .and_then(|v| {
            let nest = LoopNest::deserialize(v.field("nest")?)?;
            let queries = Vec::<Query>::deserialize(v.field("queries")?)?;
            Ok((nest, queries))
        });
    let (nest, queries) = match parsed {
        Ok(pair) => pair,
        Err(e) => {
            shared.metrics.parse_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, 400, "Bad Request", &e.to_string());
            return;
        }
    };

    let compute_start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        shared.fault.before_compute();
        shared.engine.analyze_batch(&nest, &queries)
    }));
    let results = match outcome {
        Ok(results) => results,
        Err(_) => {
            shared.metrics.panics.fetch_add(1, Ordering::Relaxed);
            respond_error(
                stream,
                500,
                "Internal Server Error",
                "worker panicked during analysis; engine state is unaffected",
            );
            return;
        }
    };
    shared
        .metrics
        .record_kinds(&kind_indices(&queries), compute_start.elapsed());

    let entries: Vec<Value> = results
        .iter()
        .map(|r| {
            let (tag, payload) = match r {
                Ok(result) => ("ok", result.serialize()),
                Err(e) => ("err", Value::String(e.to_string())),
            };
            Value::Object(vec![(tag.to_string(), payload)])
        })
        .collect();
    let body = json::to_string(&Value::Object(vec![(
        "results".to_string(),
        Value::Array(entries),
    )]));
    let _ = write_response(stream, 200, "OK", &[], &body);
}

/// Maps each query to its [`QUERY_KINDS`] histogram index, deduplicated.
/// Indices come from the engine's stable kind order, which `QUERY_KINDS`
/// mirrors name-for-name.
fn kind_indices(queries: &[Query]) -> Vec<usize> {
    let mut kinds: Vec<usize> = queries.iter().map(query_kind_index).collect();
    kinds.sort_unstable();
    kinds.dedup();
    debug_assert!(kinds.iter().all(|&k| k < QUERY_KINDS.len()));
    kinds
}

/// The `"engine"` section of `/metrics`: cache occupancy per artifact
/// class plus the front's hit/miss counters. Built by hand because the
/// engine's metrics structs are plain data, not wire types.
fn engine_value(shared: &Shared) -> Value {
    let caches = shared.engine.cache_metrics();
    let stats = shared.engine.stats();
    let cache = |s: BoundedLruStats| {
        Value::Object(vec![
            ("entries".to_string(), Value::Int(s.entries as i128)),
            ("cost".to_string(), Value::Int(s.cost as i128)),
            ("capacity".to_string(), Value::Int(s.capacity as i128)),
            ("evictions".to_string(), Value::Int(s.evictions as i128)),
        ])
    };
    let per_kind: Vec<(String, Value)> = QUERY_KINDS
        .iter()
        .zip(caches.kinds.iter())
        .map(|(name, k)| {
            (
                name.to_string(),
                Value::Object(vec![
                    ("hits".to_string(), Value::Int(k.hits as i128)),
                    ("misses".to_string(), Value::Int(k.misses as i128)),
                ]),
            )
        })
        .collect();
    Value::Object(vec![
        ("betas".to_string(), cache(caches.betas)),
        ("results".to_string(), cache(caches.results)),
        ("slices".to_string(), cache(caches.slices)),
        ("surfaces".to_string(), cache(caches.surfaces)),
        ("queries".to_string(), Value::Int(stats.queries as i128)),
        ("hits".to_string(), Value::Int(stats.hits as i128)),
        ("misses".to_string(), Value::Int(stats.misses as i128)),
        ("interned".to_string(), Value::Int(stats.interned as i128)),
        ("per_kind".to_string(), Value::Object(per_kind)),
    ])
}

fn respond_overloaded(stream: &mut TcpStream, shared: &Shared) {
    let retry_after = shared.config.retry_after_secs.to_string();
    let _ = write_response(
        stream,
        503,
        "Service Unavailable",
        &[("retry-after", retry_after.as_str())],
        r#"{"error":"server overloaded, retry later"}"#,
    );
}

fn respond_error(stream: &mut TcpStream, status: u16, reason: &str, detail: &str) {
    let body = json::to_string(&Value::Object(vec![(
        "error".to_string(),
        Value::String(detail.to_string()),
    )]));
    let _ = write_response(stream, status, reason, &[], &body);
}
