//! Service observability: lock-free counters, a queue-depth gauge, and
//! per-query-kind latency histograms, rendered as the `/metrics` JSON body.
//!
//! Histograms use power-of-two microsecond buckets (`bucket k` holds
//! samples in `[2^k, 2^{k+1})` µs), which spans 1 µs to ~35 minutes in 31
//! buckets; p50/p99 are reported as the upper edge of the quantile's
//! bucket. A request computing several query kinds through one
//! [`SharedEngine::analyze_batch`](projtile_core::engine::SharedEngine)
//! call records its compute latency under *each* kind present, so a kind's
//! histogram reads "latency of requests involving this kind".

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::Value;

/// Number of histogram buckets (powers of two of microseconds).
pub const HISTOGRAM_BUCKETS: usize = 31;

/// The query kinds tracked by per-kind histograms, in render order.
pub const QUERY_KINDS: [&str; 6] = [
    "lower_bound",
    "enumerated_bound",
    "optimal_tiling",
    "tightness",
    "surface",
    "slice",
];

/// A fixed-bucket latency histogram safe for concurrent recording.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().max(1) as u64;
        let bucket = (63 - micros.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        if let Some(b) = self.buckets.get(bucket) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bucket edge (µs) at quantile `q` in `[0, 1]`, or `None`
    /// with no samples.
    pub fn quantile_micros(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (k, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(1u64 << (k + 1));
            }
        }
        None
    }

    fn render(&self) -> Value {
        let mut fields = vec![("count", Value::Int(self.count() as i128))];
        let p50 = self
            .quantile_micros(0.50)
            .map_or(Value::Null, |v| Value::Int(v as i128));
        let p99 = self
            .quantile_micros(0.99)
            .map_or(Value::Null, |v| Value::Int(v as i128));
        fields.push(("p50_micros", p50));
        fields.push(("p99_micros", p99));
        obj(fields)
    }
}

/// All service counters and histograms. Shared by reference between the
/// accept loop, workers, snapshot loop, and the `/metrics` route.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections admitted to the queue.
    pub accepted: AtomicU64,
    /// Requests answered (any status).
    pub completed: AtomicU64,
    /// Connections shed because the admission queue was full.
    pub shed_queue_full: AtomicU64,
    /// Requests shed because they waited past the queue deadline.
    pub shed_expired: AtomicU64,
    /// Worker panics caught and answered with `500`.
    pub panics: AtomicU64,
    /// Requests disconnected for exceeding the read deadline.
    pub read_timeouts: AtomicU64,
    /// Requests rejected as malformed (HTTP or JSON).
    pub parse_errors: AtomicU64,
    /// Snapshot generations published.
    pub snapshots_published: AtomicU64,
    /// Snapshot publications that failed (I/O or injected tear).
    pub snapshot_failures: AtomicU64,
    /// Current admission-queue depth.
    pub queue_depth: AtomicU64,
    /// Per-query-kind compute latency, indexed like [`QUERY_KINDS`].
    pub per_kind: [Histogram; QUERY_KINDS.len()],
    /// Whole-request latency (read to response), all routes.
    pub request_latency: Histogram,
}

impl Metrics {
    /// Records a compute latency sample under each kind index present.
    pub fn record_kinds(&self, kinds: &[usize], latency: Duration) {
        for &k in kinds {
            if let Some(h) = self.per_kind.get(k) {
                h.record(latency);
            }
        }
    }

    /// Renders the metrics document served by `GET /metrics`;
    /// `cache_metrics` is the engine's own cache-occupancy report, spliced
    /// in under `"engine"`.
    pub fn render(&self, engine: Value) -> Value {
        let load = |c: &AtomicU64| Value::Int(c.load(Ordering::Relaxed) as i128);
        let kinds = QUERY_KINDS
            .iter()
            .zip(&self.per_kind)
            .map(|(name, h)| (name.to_string(), h.render()))
            .collect();
        obj(vec![
            ("accepted", load(&self.accepted)),
            ("completed", load(&self.completed)),
            ("shed_queue_full", load(&self.shed_queue_full)),
            ("shed_expired", load(&self.shed_expired)),
            ("panics", load(&self.panics)),
            ("read_timeouts", load(&self.read_timeouts)),
            ("parse_errors", load(&self.parse_errors)),
            ("snapshots_published", load(&self.snapshots_published)),
            ("snapshot_failures", load(&self.snapshot_failures)),
            ("queue_depth", load(&self.queue_depth)),
            ("request_latency", self.request_latency.render()),
            ("per_query_kind", Value::Object(kinds)),
            ("engine", engine),
        ])
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::default();
        for micros in [10u64, 100, 1000, 10_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 4);
        let p50 = h.quantile_micros(0.5).unwrap();
        assert!(
            (100..=256).contains(&p50),
            "p50 near the second sample: {p50}"
        );
        let p99 = h.quantile_micros(0.99).unwrap();
        assert!(p99 >= 10_000, "p99 at or past the largest sample: {p99}");
    }

    #[test]
    fn render_includes_every_counter_and_kind() {
        let m = Metrics::default();
        m.accepted.fetch_add(3, Ordering::Relaxed);
        m.record_kinds(&[0, 3], Duration::from_millis(2));
        let doc = serde::json::to_string(&m.render(Value::Null));
        for field in [
            "accepted",
            "shed_queue_full",
            "panics",
            "queue_depth",
            "per_query_kind",
            "tightness",
            "p99_micros",
        ] {
            assert!(doc.contains(field), "metrics JSON lacks {field}: {doc}");
        }
    }
}
