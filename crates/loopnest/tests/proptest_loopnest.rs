//! Property tests for the loop-nest IR, iteration utilities, and layouts.

use projtile_loopnest::iteration::{tile_count, tile_domain, tile_origins, Domain};
use projtile_loopnest::layout::AddressMap;
use projtile_loopnest::{builders, IndexSet};
use proptest::prelude::*;
use std::collections::HashSet;

fn small_bounds(d: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..8, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_validate_and_expose_consistent_structure(
        seed in any::<u64>(),
        d in 1usize..6,
        n in 1usize..6,
    ) {
        let nest = builders::random_projective(seed, d, n, (1, 64));
        prop_assert_eq!(nest.num_loops(), d);
        prop_assert_eq!(nest.num_arrays(), n);
        // Every index covered; every support within range.
        let covered = (0..n).fold(IndexSet::empty(), |acc, j| acc.union(nest.support(j)));
        prop_assert_eq!(covered, IndexSet::full(d));
        // R_j / supports are transposes of each other.
        for i in 0..d {
            for j in 0..n {
                prop_assert_eq!(nest.arrays_containing(i).contains(j), nest.support(j).contains(i));
            }
        }
        // Sizes multiply out.
        let total: u128 = nest.bounds().iter().map(|&b| b as u128).product();
        prop_assert_eq!(nest.iteration_space_size(), total);
    }

    #[test]
    fn tiling_partitions_the_iteration_space(
        bounds in small_bounds(3),
        tile in small_bounds(3),
    ) {
        // Tiles cover every point exactly once and their count matches the
        // ceiling-division formula.
        let mut seen = HashSet::new();
        let mut tiles = 0u128;
        for origin in tile_origins(&bounds, &tile) {
            let dom = tile_domain(&bounds, &tile, &origin);
            prop_assert!(!dom.is_empty());
            tiles += 1;
            for p in dom.points() {
                prop_assert!(p.iter().zip(&bounds).all(|(&x, &b)| x < b));
                prop_assert!(seen.insert(p));
            }
        }
        prop_assert_eq!(tiles, tile_count(&bounds, &tile));
        let total: u128 = bounds.iter().map(|&b| b as u128).product();
        prop_assert_eq!(seen.len() as u128, total);
    }

    #[test]
    fn loop_orders_are_permutations_of_the_same_point_set(
        bounds in small_bounds(3),
        perm_seed in 0usize..6,
    ) {
        let orders = [
            vec![0usize, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        let dom = Domain::full(&bounds);
        let base: HashSet<Vec<u64>> = dom.points().collect();
        let permuted: HashSet<Vec<u64>> =
            dom.points_with_order(&orders[perm_seed]).collect();
        prop_assert_eq!(base.len() as u128, dom.num_points());
        prop_assert_eq!(base, permuted);
    }

    #[test]
    fn footprints_are_monotone_and_bounded(
        seed in any::<u64>(),
        tile_a in small_bounds(4),
        tile_b in small_bounds(4),
    ) {
        let nest = builders::random_projective(seed, 4, 3, (1, 8));
        let bigger: Vec<u64> = tile_a.iter().zip(&tile_b).map(|(&a, &b)| a.max(b)).collect();
        for j in 0..nest.num_arrays() {
            let fa = nest.array_footprint(j, &tile_a);
            let fb = nest.array_footprint(j, &bigger);
            prop_assert!(fa <= fb, "array footprint not monotone");
            prop_assert!(fb <= nest.array_size(j).max(1));
        }
        prop_assert!(nest.tile_footprint(&bigger) <= nest.total_data_size().max(1));
    }

    #[test]
    fn address_map_is_injective_per_array_and_arrays_are_disjoint(seed in any::<u64>()) {
        let nest = builders::random_projective(seed, 3, 3, (1, 5));
        let map = AddressMap::new(&nest);
        let mut per_array: Vec<HashSet<u64>> = vec![HashSet::new(); nest.num_arrays()];
        for p in Domain::full(&nest.bounds()).points() {
            for (j, addrs) in per_array.iter_mut().enumerate() {
                addrs.insert(map.address(j, &p));
            }
        }
        // Each array's address count equals its element count (projection is
        // onto, linearization injective).
        for (j, addrs) in per_array.iter().enumerate() {
            prop_assert_eq!(addrs.len() as u128, nest.array_size(j));
        }
        // Address ranges of different arrays never overlap.
        for a in 0..nest.num_arrays() {
            for b in (a + 1)..nest.num_arrays() {
                prop_assert!(per_array[a].is_disjoint(&per_array[b]));
            }
        }
        // Total addresses fit in the map's reported extent.
        let max_addr = per_array.iter().flatten().max().copied().unwrap_or(0);
        prop_assert!(max_addr < map.total_words());
    }

    #[test]
    fn with_bounds_preserves_structure(seed in any::<u64>(), bounds in small_bounds(4)) {
        let nest = builders::random_projective(seed, 4, 4, (1, 64));
        let resized = nest.with_bounds(&bounds);
        prop_assert_eq!(resized.bounds(), bounds);
        for j in 0..nest.num_arrays() {
            prop_assert_eq!(resized.support(j), nest.support(j));
        }
    }
}
