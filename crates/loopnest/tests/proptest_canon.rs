//! Property tests for canonicalization: permuting a nest's loop order and
//! array order never changes its signature, and distinct programs on the
//! tested corpus never collide.

use projtile_loopnest::canon::{canonicalize, permute_nest};
use projtile_loopnest::{builders, LoopNest};
use proptest::prelude::*;

/// A deterministic permutation of `0..n` derived from `seed` (Fisher–Yates
/// over a SplitMix64 stream).
fn permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

fn corpus() -> Vec<LoopNest> {
    let mut nests = vec![
        builders::matmul(8, 16, 32),
        builders::matmul(16, 8, 32),
        builders::matmul(8, 16, 64),
        builders::matvec(8, 16),
        builders::nbody(8, 16),
        builders::nbody(16, 8),
        builders::pointwise_conv(2, 3, 4, 5, 6),
        builders::fully_connected(4, 5, 6),
        builders::tensor_contraction(2, 4, &[2, 3, 4, 5, 6]),
    ];
    for seed in 0..12u64 {
        nests.push(builders::random_projective(seed, 4, 4, (1, 64)));
        nests.push(builders::random_projective(seed, 6, 3, (1, 64)));
    }
    nests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn permutations_preserve_the_signature(
        seed in any::<u64>(),
        loop_seed in any::<u64>(),
        array_seed in any::<u64>(),
        d in 2usize..7,
        n in 2usize..6,
    ) {
        let nest = builders::random_projective(seed, d, n, (1, 256));
        let loop_perm = permutation(loop_seed, d);
        let array_perm = permutation(array_seed, n);
        let permuted = permute_nest(&nest, &loop_perm, &array_perm);
        let canon_a = canonicalize(&nest);
        let canon_b = canonicalize(&permuted);
        prop_assert_eq!(canon_a.signature(), canon_b.signature());
        // The canonical representative itself is identical, not just equal
        // as a key.
        prop_assert_eq!(canon_a.nest(), canon_b.nest());
        // And canonicalization is idempotent.
        let fixed = canonicalize(canon_a.nest());
        prop_assert!(fixed.is_identity());
    }

    #[test]
    fn translation_maps_positions_by_name(
        seed in any::<u64>(),
        loop_seed in any::<u64>(),
        d in 2usize..7,
        n in 2usize..6,
    ) {
        let nest = builders::random_projective(seed, d, n, (1, 256));
        let permuted = permute_nest(&nest, &permutation(loop_seed, d), &permutation(loop_seed ^ 1, n));
        let canon = canonicalize(&permuted);
        for (i, idx) in permuted.indices().iter().enumerate() {
            let c = canon.loop_to_canon(i);
            prop_assert_eq!(&canon.nest().indices()[c], idx);
            prop_assert_eq!(canon.canon_to_loop(c), i);
        }
        for (j, a) in permuted.arrays().iter().enumerate() {
            let c = canon.array_to_canon(j);
            prop_assert_eq!(&canon.nest().arrays()[c].name, &a.name);
            // The canonical support selects the same loop names.
            let orig_names: Vec<&str> = a
                .support
                .iter()
                .map(|p| permuted.indices()[p].name.as_str())
                .collect();
            let canon_names: Vec<&str> = canon.nest().arrays()[c]
                .support
                .iter()
                .map(|p| canon.nest().indices()[p].name.as_str())
                .collect();
            let mut sorted = orig_names.clone();
            sorted.sort_unstable();
            prop_assert_eq!(canon_names, sorted); // canonical order is by name
        }
    }
}

#[test]
fn distinct_corpus_nests_never_collide() {
    let nests = corpus();
    let signatures: Vec<_> = nests.iter().map(|n| canonicalize(n).signature()).collect();
    for i in 0..nests.len() {
        for j in (i + 1)..nests.len() {
            if nests[i] == nests[j] {
                continue; // random corpus could repeat a nest verbatim
            }
            assert_ne!(
                signatures[i], signatures[j],
                "collision between {} and {}",
                nests[i], nests[j]
            );
        }
    }
}
