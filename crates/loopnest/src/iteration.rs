//! Iteration over rectangular subdomains of the iteration space.
//!
//! The tiled executor in `projtile-exec` walks the iteration space twice over:
//! an outer walk over tile origins and an inner walk over the points of each
//! tile. Both are rectangular walks, provided here as allocation-light
//! iterators with a configurable loop order (outermost-to-innermost
//! permutation), which is what distinguishes the "naive" baseline schedules
//! from one another.

use serde::{Deserialize, Serialize};

/// A half-open axis-aligned box `[origin_i, origin_i + extent_i)` in the
/// 0-based iteration space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Domain {
    /// Inclusive lower corner.
    pub origin: Vec<u64>,
    /// Edge lengths (all strictly positive for a non-empty domain).
    pub extent: Vec<u64>,
}

impl Domain {
    /// The full iteration space `[0, bounds_i)` of a loop nest.
    pub fn full(bounds: &[u64]) -> Domain {
        Domain {
            origin: vec![0; bounds.len()],
            extent: bounds.to_vec(),
        }
    }

    /// Creates a domain from its corner and edge lengths.
    pub fn new(origin: Vec<u64>, extent: Vec<u64>) -> Domain {
        assert_eq!(
            origin.len(),
            extent.len(),
            "origin/extent dimension mismatch"
        );
        Domain { origin, extent }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.origin.len()
    }

    /// Number of points in the domain.
    pub fn num_points(&self) -> u128 {
        if self.extent.is_empty() {
            return 0;
        }
        self.extent.iter().map(|&e| e as u128).product()
    }

    /// Returns `true` iff the domain contains no points.
    pub fn is_empty(&self) -> bool {
        self.extent.contains(&0)
    }

    /// Returns `true` iff `point` lies inside the domain.
    pub fn contains(&self, point: &[u64]) -> bool {
        point.len() == self.dim()
            && point
                .iter()
                .zip(self.origin.iter().zip(&self.extent))
                .all(|(&p, (&o, &e))| p >= o && p < o + e)
    }

    /// Iterates the points in lexicographic order with the *last* axis varying
    /// fastest (the natural order of the written-out loop nest).
    pub fn points(&self) -> PointIter {
        let order: Vec<usize> = (0..self.dim()).collect();
        self.points_with_order(&order)
    }

    /// Iterates the points with an explicit loop order: `order[0]` is the
    /// outermost loop axis and `order[d-1]` the innermost.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..d`.
    pub fn points_with_order(&self, order: &[usize]) -> PointIter {
        let d = self.dim();
        assert_eq!(
            order.len(),
            d,
            "loop order must mention every axis exactly once"
        );
        let mut seen = vec![false; d];
        for &axis in order {
            assert!(axis < d && !seen[axis], "loop order must be a permutation");
            seen[axis] = true;
        }
        PointIter {
            domain: self.clone(),
            order: order.to_vec(),
            cursor: self.origin.clone(),
            done: self.is_empty(),
        }
    }
}

/// Iterator over the integer points of a [`Domain`]. See
/// [`Domain::points_with_order`].
#[derive(Debug, Clone)]
pub struct PointIter {
    domain: Domain,
    order: Vec<usize>,
    cursor: Vec<u64>,
    done: bool,
}

impl Iterator for PointIter {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.done {
            return None;
        }
        let current = self.cursor.clone();
        // Advance like an odometer, innermost axis first.
        for &axis in self.order.iter().rev() {
            self.cursor[axis] += 1;
            if self.cursor[axis] < self.domain.origin[axis] + self.domain.extent[axis] {
                return Some(current);
            }
            self.cursor[axis] = self.domain.origin[axis];
        }
        self.done = true;
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            (0, Some(0))
        } else {
            let n = self.domain.num_points().min(usize::MAX as u128) as usize;
            (n, Some(n))
        }
    }
}

/// Iterates the origins of the tiles produced by covering `bounds` with a grid
/// of rectangular tiles of edge lengths `tile` (the boundary tiles are
/// clipped by the caller via [`tile_domain`]).
pub fn tile_origins(bounds: &[u64], tile: &[u64]) -> impl Iterator<Item = Vec<u64>> {
    assert_eq!(bounds.len(), tile.len(), "tile dimension mismatch");
    assert!(tile.iter().all(|&t| t > 0), "tile edges must be positive");
    let counts: Vec<u64> = bounds
        .iter()
        .zip(tile)
        .map(|(&b, &t)| b.div_ceil(t))
        .collect();
    let tile = tile.to_vec();
    Domain::full(&counts)
        .points()
        .map(move |grid_pos| grid_pos.iter().zip(&tile).map(|(&g, &t)| g * t).collect())
}

/// The (clipped) domain of the tile anchored at `origin` with nominal edge
/// lengths `tile`, inside a space of the given `bounds`.
pub fn tile_domain(bounds: &[u64], tile: &[u64], origin: &[u64]) -> Domain {
    let extent: Vec<u64> = origin
        .iter()
        .zip(tile.iter().zip(bounds))
        .map(|(&o, (&t, &b))| t.min(b.saturating_sub(o)))
        .collect();
    Domain::new(origin.to_vec(), extent)
}

/// Number of tiles needed to cover `bounds` with tiles of edge lengths `tile`.
pub fn tile_count(bounds: &[u64], tile: &[u64]) -> u128 {
    bounds
        .iter()
        .zip(tile)
        .map(|(&b, &t)| b.div_ceil(t) as u128)
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_domain_enumerates_all_points() {
        let d = Domain::full(&[2, 3]);
        let pts: Vec<_> = d.points().collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[1], vec![0, 1]); // last axis fastest
        assert_eq!(pts[5], vec![1, 2]);
        assert_eq!(d.num_points(), 6);
        assert!(!d.is_empty());
    }

    #[test]
    fn custom_loop_order() {
        let d = Domain::full(&[2, 2]);
        // Axis 1 outermost, axis 0 innermost.
        let pts: Vec<_> = d.points_with_order(&[1, 0]).collect();
        assert_eq!(pts, vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1]]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_loop_order_rejected() {
        let d = Domain::full(&[2, 2]);
        let _ = d.points_with_order(&[0, 0]);
    }

    #[test]
    fn offset_domain_and_containment() {
        let d = Domain::new(vec![2, 3], vec![2, 1]);
        let pts: Vec<_> = d.points().collect();
        assert_eq!(pts, vec![vec![2, 3], vec![3, 3]]);
        assert!(d.contains(&[3, 3]));
        assert!(!d.contains(&[1, 3]));
        assert!(!d.contains(&[2, 4]));
        assert!(!d.contains(&[2]));
    }

    #[test]
    fn empty_domain() {
        let d = Domain::new(vec![0, 0], vec![3, 0]);
        assert!(d.is_empty());
        assert_eq!(d.num_points(), 0);
        assert_eq!(d.points().count(), 0);
    }

    #[test]
    fn tiling_covers_space_exactly_once() {
        let bounds = [5u64, 7];
        let tile = [2u64, 3];
        let mut seen = std::collections::HashSet::new();
        let mut tiles = 0u128;
        for origin in tile_origins(&bounds, &tile) {
            tiles += 1;
            let dom = tile_domain(&bounds, &tile, &origin);
            assert!(!dom.is_empty());
            for p in dom.points() {
                assert!(p[0] < bounds[0] && p[1] < bounds[1], "point inside bounds");
                assert!(seen.insert(p), "no point visited twice");
            }
        }
        assert_eq!(tiles, tile_count(&bounds, &tile));
        assert_eq!(tiles, 3 * 3);
        assert_eq!(seen.len() as u128, 35);
    }

    #[test]
    fn tile_domain_clips_at_boundary() {
        let dom = tile_domain(&[5, 7], &[2, 3], &[4, 6]);
        assert_eq!(dom.extent, vec![1, 1]);
        let dom2 = tile_domain(&[5, 7], &[2, 3], &[0, 0]);
        assert_eq!(dom2.extent, vec![2, 3]);
    }

    #[test]
    fn tile_count_matches_ceil_division() {
        assert_eq!(tile_count(&[10, 10], &[3, 4]), 4 * 3);
        assert_eq!(tile_count(&[1, 1], &[5, 5]), 1);
        assert_eq!(tile_count(&[8], &[2]), 4);
    }

    #[test]
    fn size_hint_matches_count() {
        let d = Domain::full(&[3, 4]);
        let it = d.points();
        assert_eq!(it.size_hint(), (12, Some(12)));
        assert_eq!(it.count(), 12);
    }
}
