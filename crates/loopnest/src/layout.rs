//! Array layouts: mapping projected loop indices to flat word addresses.
//!
//! The cache simulator in `projtile-cachesim` operates on a stream of word
//! addresses. This module gives each array of a [`LoopNest`] a contiguous
//! row-major allocation in a single flat address space, so that an execution
//! schedule (a sequence of iteration points) can be turned into the exact
//! sequence of words it touches.

use serde::{Deserialize, Serialize};

use crate::nest::LoopNest;

/// Row-major layout of a single array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayLayout {
    /// First word address of the array.
    pub base: u64,
    /// Loop-index positions forming the array's subscript, in increasing
    /// position order (the projection `φ_j`).
    pub axes: Vec<usize>,
    /// Extent of each subscript axis (the loop bound of that axis).
    pub extents: Vec<u64>,
    /// Row-major strides matching `axes`.
    pub strides: Vec<u64>,
}

impl ArrayLayout {
    /// Number of words occupied by the array.
    pub fn size(&self) -> u64 {
        self.extents.iter().product::<u64>().max(1)
    }

    /// Flat address of the element touched by the iteration point `point`
    /// (full-dimensional loop-nest coordinates, 0-based).
    pub fn address_of(&self, point: &[u64]) -> u64 {
        let mut addr = self.base;
        for (&axis, stride) in self.axes.iter().zip(&self.strides) {
            addr += point[axis] * stride;
        }
        addr
    }
}

/// Address map for every array of a loop nest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    layouts: Vec<ArrayLayout>,
    total_words: u64,
}

impl AddressMap {
    /// Lays the arrays of `nest` out consecutively in address order.
    ///
    /// # Panics
    /// Panics if the total data size does not fit in a `u64` address space
    /// (far beyond anything the simulator is asked to handle).
    pub fn new(nest: &LoopNest) -> AddressMap {
        let bounds = nest.bounds();
        let mut layouts = Vec::with_capacity(nest.num_arrays());
        let mut next_base: u64 = 0;
        for j in 0..nest.num_arrays() {
            let axes: Vec<usize> = nest.support(j).iter().collect();
            let extents: Vec<u64> = axes.iter().map(|&a| bounds[a]).collect();
            // Row-major: last axis has stride 1.
            let mut strides = vec![1u64; axes.len()];
            for i in (0..axes.len().saturating_sub(1)).rev() {
                strides[i] = strides[i + 1]
                    .checked_mul(extents[i + 1])
                    .expect("array too large for 64-bit address space");
            }
            let size: u64 = extents.iter().copied().fold(1u64, |acc, e| {
                acc.checked_mul(e)
                    .expect("array too large for 64-bit address space")
            });
            layouts.push(ArrayLayout {
                base: next_base,
                axes,
                extents,
                strides,
            });
            next_base = next_base
                .checked_add(size.max(1))
                .expect("total data too large for 64-bit address space");
        }
        AddressMap {
            layouts,
            total_words: next_base,
        }
    }

    /// Layout of array `j`.
    pub fn layout(&self, j: usize) -> &ArrayLayout {
        &self.layouts[j]
    }

    /// Number of arrays.
    pub fn num_arrays(&self) -> usize {
        self.layouts.len()
    }

    /// Total number of distinct words across all arrays.
    pub fn total_words(&self) -> u64 {
        self.total_words
    }

    /// Flat address of array `j`'s element at iteration point `point`.
    pub fn address(&self, j: usize, point: &[u64]) -> u64 {
        self.layouts[j].address_of(point)
    }

    /// All addresses touched by one iteration point, in array order.
    pub fn addresses_of_point<'a>(&'a self, point: &'a [u64]) -> impl Iterator<Item = u64> + 'a {
        self.layouts.iter().map(move |l| l.address_of(point))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn matmul_layout_sizes_and_disjoint_ranges() {
        let nest = builders::matmul(4, 5, 6);
        let map = AddressMap::new(&nest);
        assert_eq!(map.num_arrays(), 3);
        // C is 4x6, A is 4x5, B is 5x6.
        assert_eq!(map.layout(0).size(), 24);
        assert_eq!(map.layout(1).size(), 20);
        assert_eq!(map.layout(2).size(), 30);
        assert_eq!(map.total_words(), 74);
        // Bases are consecutive and non-overlapping.
        assert_eq!(map.layout(0).base, 0);
        assert_eq!(map.layout(1).base, 24);
        assert_eq!(map.layout(2).base, 44);
    }

    #[test]
    fn addresses_are_within_each_arrays_range() {
        let nest = builders::matmul(3, 4, 5);
        let map = AddressMap::new(&nest);
        for i in 0..3u64 {
            for j in 0..4u64 {
                for k in 0..5u64 {
                    let point = [i, j, k];
                    for a in 0..3 {
                        let addr = map.address(a, &point);
                        let lo = map.layout(a).base;
                        let hi = lo + map.layout(a).size();
                        assert!(addr >= lo && addr < hi, "address inside array {a}");
                    }
                }
            }
        }
    }

    #[test]
    fn address_depends_only_on_support_indices() {
        let nest = builders::matmul(4, 4, 4);
        let map = AddressMap::new(&nest);
        // C(i,k) must not depend on j.
        let a1 = map.address(0, &[1, 0, 2]);
        let a2 = map.address(0, &[1, 3, 2]);
        assert_eq!(a1, a2);
        // A(i,j) must not depend on k.
        assert_eq!(map.address(1, &[1, 2, 0]), map.address(1, &[1, 2, 3]));
        // But it must depend on j.
        assert_ne!(map.address(1, &[1, 2, 0]), map.address(1, &[1, 1, 0]));
    }

    #[test]
    fn distinct_elements_get_distinct_addresses() {
        let nest = builders::nbody(7, 9);
        let map = AddressMap::new(&nest);
        let mut seen = std::collections::HashSet::new();
        // Acc[x1] over x1: 7 distinct addresses.
        for x1 in 0..7u64 {
            assert!(seen.insert(map.address(0, &[x1, 0])));
        }
        assert_eq!(seen.len(), 7);
        // Other[x2] over x2: 9 distinct addresses, disjoint from Acc and Src.
        let mut other = std::collections::HashSet::new();
        for x2 in 0..9u64 {
            other.insert(map.address(2, &[0, x2]));
        }
        assert_eq!(other.len(), 9);
        assert!(seen.is_disjoint(&other));
    }

    #[test]
    fn addresses_of_point_yields_one_per_array() {
        let nest = builders::pointwise_conv(2, 3, 4, 5, 6);
        let map = AddressMap::new(&nest);
        let point = vec![1u64, 2, 3, 4, 5];
        let addrs: Vec<u64> = map.addresses_of_point(&point).collect();
        assert_eq!(addrs.len(), 3);
        assert_eq!(addrs[0], map.address(0, &point));
        assert!(map.total_words() >= addrs.iter().copied().max().unwrap());
    }

    #[test]
    fn scalar_like_array_occupies_one_word() {
        // L3 = 1 in matvec: the "k" extent of C is 1 but C still occupies l1 words.
        let nest = builders::matvec(6, 8);
        let map = AddressMap::new(&nest);
        assert_eq!(map.layout(0).size(), 6); // y(i,k) with k extent 1
        assert_eq!(map.layout(2).size(), 8); // x(j,k) with k extent 1
    }
}
