//! Projective nested-loop program representation.
//!
//! The object of study in Dinh & Demmel (SPAA 2020) is the `d`-deep loop nest
//!
//! ```text
//! for x1 in 1..=L1, ..., for xd in 1..=Ld:
//!     operate on A1[φ1(x)], ..., An[φn(x)]
//! ```
//!
//! in the *projective* case: each access function `φ_j` simply selects a
//! subset of the loop indices (its *support*). This crate provides:
//!
//! * [`LoopNest`] — the IR: loop indices with bounds and arrays with supports,
//!   plus validation (§2 assumes every index appears in at least one support);
//! * [`support::IndexSet`] — a small bitset over loop indices used for
//!   supports and for the subset enumeration of Theorem 2;
//! * [`canon`] — permutation-invariant canonical forms and signatures, so a
//!   long-lived analysis session (`projtile_core::engine`) can intern
//!   permuted-but-equivalent nests into one cache entry;
//! * [`builders`] — the kernels used throughout the paper (matrix
//!   multiplication, matrix-vector multiplication, general tensor
//!   contractions, pointwise convolutions, fully-connected layers, n-body
//!   pairwise interactions) and a generator of random projective programs for
//!   property tests;
//! * [`iteration`] — iteration over rectangular subdomains of the iteration
//!   space (used by the tiled executor in `projtile-exec`);
//! * [`layout`] — array layouts mapping projected indices to flat word
//!   addresses, so cache simulation sees a realistic address stream.
//!
//! Everything here is substrate: the communication bounds and tilings
//! themselves live in `projtile-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod canon;
pub mod iteration;
pub mod layout;
mod nest;
pub mod support;

pub use canon::{canonicalize, CanonicalNest, NestSignature};
pub use nest::{ArrayAccess, LoopIndex, LoopNest, ValidationError};
pub use support::IndexSet;
