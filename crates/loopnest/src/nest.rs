//! The projective loop-nest IR.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::support::IndexSet;

/// A loop index `x_i` together with its bound `L_i` (the loop runs over
/// `1..=L_i`, i.e. the bound is the trip count).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoopIndex {
    /// Human-readable name (e.g. `"i"`, `"k"`, `"c"`).
    pub name: String,
    /// Trip count `L_i >= 1`.
    pub bound: u64,
}

impl LoopIndex {
    /// Creates a loop index.
    pub fn new(name: impl Into<String>, bound: u64) -> LoopIndex {
        LoopIndex {
            name: name.into(),
            bound,
        }
    }
}

/// An array `A_j` accessed through the projection `φ_j`, identified by the set
/// of loop indices in its support.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayAccess {
    /// Human-readable name (e.g. `"A"`, `"Out"`, `"Filter"`).
    pub name: String,
    /// The support `supp(φ_j)`: positions of the loop indices that appear in
    /// the array's subscript.
    pub support: IndexSet,
}

impl ArrayAccess {
    /// Creates an array access from its support positions.
    pub fn new<I: IntoIterator<Item = usize>>(name: impl Into<String>, support: I) -> ArrayAccess {
        ArrayAccess {
            name: name.into(),
            support: IndexSet::from_indices(support),
        }
    }
}

/// Why a loop-nest description was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The nest has no loop indices.
    NoIndices,
    /// The nest has no arrays.
    NoArrays,
    /// More than 64 loop indices.
    TooManyIndices(usize),
    /// A loop bound is zero.
    ZeroBound(String),
    /// An array's support references an index position `>= d`.
    SupportOutOfRange {
        /// Offending array name.
        array: String,
        /// Offending index position.
        position: usize,
    },
    /// A loop index appears in no array's support, violating the paper's §2
    /// assumption (such an index can be dropped without loss of generality).
    UnusedIndex(String),
    /// Two loop indices share a name.
    DuplicateIndexName(String),
    /// Two arrays share a name.
    DuplicateArrayName(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NoIndices => write!(f, "loop nest has no loop indices"),
            ValidationError::NoArrays => write!(f, "loop nest has no arrays"),
            ValidationError::TooManyIndices(d) => {
                write!(f, "loop nest has {d} indices; at most 64 are supported")
            }
            ValidationError::ZeroBound(name) => {
                write!(f, "loop index `{name}` has a zero bound")
            }
            ValidationError::SupportOutOfRange { array, position } => write!(
                f,
                "array `{array}` references loop position {position}, which does not exist"
            ),
            ValidationError::UnusedIndex(name) => write!(
                f,
                "loop index `{name}` appears in no array's support (drop it before analysis)"
            ),
            ValidationError::DuplicateIndexName(name) => {
                write!(f, "duplicate loop index name `{name}`")
            }
            ValidationError::DuplicateArrayName(name) => {
                write!(f, "duplicate array name `{name}`")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// A validated projective nested-loop program.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct LoopNest {
    indices: Vec<LoopIndex>,
    arrays: Vec<ArrayAccess>,
}

/// Deserialization routes through [`LoopNest::new`], so the type's
/// invariants hold for *every* value a program can observe — a hostile or
/// corrupt document (a tampered snapshot, a malformed service request) that
/// encodes a zero bound, an out-of-range array support, a duplicate name, or
/// more than 64 indices is rejected with the corresponding
/// [`ValidationError`] message instead of producing an invalid nest that
/// panics deep inside the analyses.
impl serde::Deserialize for LoopNest {
    fn deserialize(v: &serde::Value) -> Result<LoopNest, serde::Error> {
        let indices = Vec::<LoopIndex>::deserialize(v.field("indices")?)?;
        let arrays = Vec::<ArrayAccess>::deserialize(v.field("arrays")?)?;
        LoopNest::new(indices, arrays)
            .map_err(|e| serde::Error::custom(format!("invalid loop nest: {e}")))
    }
}

impl LoopNest {
    /// Builds and validates a loop nest.
    // lint: allow(L008) expect fires only after this constructor's own shape validation passed
    pub fn new(
        indices: Vec<LoopIndex>,
        arrays: Vec<ArrayAccess>,
    ) -> Result<LoopNest, ValidationError> {
        if indices.is_empty() {
            return Err(ValidationError::NoIndices);
        }
        if arrays.is_empty() {
            return Err(ValidationError::NoArrays);
        }
        if indices.len() > IndexSet::MAX_INDICES {
            return Err(ValidationError::TooManyIndices(indices.len()));
        }
        for idx in &indices {
            if idx.bound == 0 {
                return Err(ValidationError::ZeroBound(idx.name.clone()));
            }
        }
        for i in 0..indices.len() {
            for j in (i + 1)..indices.len() {
                if indices[i].name == indices[j].name {
                    return Err(ValidationError::DuplicateIndexName(indices[i].name.clone()));
                }
            }
        }
        for i in 0..arrays.len() {
            for j in (i + 1)..arrays.len() {
                if arrays[i].name == arrays[j].name {
                    return Err(ValidationError::DuplicateArrayName(arrays[i].name.clone()));
                }
            }
        }
        let d = indices.len();
        let full = IndexSet::full(d);
        for a in &arrays {
            if !a.support.is_subset_of(full) {
                let position = a.support.iter().find(|&p| p >= d).unwrap_or(d);
                return Err(ValidationError::SupportOutOfRange {
                    array: a.name.clone(),
                    position,
                });
            }
        }
        let covered = arrays
            .iter()
            .fold(IndexSet::empty(), |acc, a| acc.union(a.support));
        if covered != full {
            let missing = full
                .difference(covered)
                .iter()
                .next()
                .expect("missing index exists");
            return Err(ValidationError::UnusedIndex(indices[missing].name.clone()));
        }
        Ok(LoopNest { indices, arrays })
    }

    /// Starts a fluent builder.
    pub fn builder() -> LoopNestBuilder {
        LoopNestBuilder::default()
    }

    /// Number of loop indices `d`.
    pub fn num_loops(&self) -> usize {
        self.indices.len()
    }

    /// Number of arrays `n`.
    pub fn num_arrays(&self) -> usize {
        self.arrays.len()
    }

    /// The loop indices, in nesting order.
    pub fn indices(&self) -> &[LoopIndex] {
        &self.indices
    }

    /// The arrays, in declaration order.
    pub fn arrays(&self) -> &[ArrayAccess] {
        &self.arrays
    }

    /// Loop bounds `L_1, ..., L_d` as a vector.
    pub fn bounds(&self) -> Vec<u64> {
        self.indices.iter().map(|i| i.bound).collect()
    }

    /// The support of array `j`.
    pub fn support(&self, j: usize) -> IndexSet {
        self.arrays[j].support
    }

    /// `R_i`: the set of arrays whose support contains loop index `i`,
    /// returned as a bitmask over array positions.
    pub fn arrays_containing(&self, i: usize) -> IndexSet {
        IndexSet::from_indices(
            self.arrays
                .iter()
                .enumerate()
                .filter(|(_, a)| a.support.contains(i))
                .map(|(j, _)| j),
        )
    }

    /// Total number of iteration points `∏ L_i`.
    pub fn iteration_space_size(&self) -> u128 {
        self.indices.iter().map(|i| i.bound as u128).product()
    }

    /// Number of elements of array `j`: `∏_{i ∈ supp(φ_j)} L_i`.
    pub fn array_size(&self, j: usize) -> u128 {
        self.arrays[j]
            .support
            .iter()
            .map(|i| self.indices[i].bound as u128)
            .product()
    }

    /// Sum of all array sizes (the total data footprint of the program).
    pub fn total_data_size(&self) -> u128 {
        (0..self.num_arrays()).map(|j| self.array_size(j)).sum()
    }

    /// The size of the subset of array `j` touched by a rectangular tile with
    /// edge lengths `tile[0..d]` (clamped to the loop bounds).
    pub fn array_footprint(&self, j: usize, tile: &[u64]) -> u128 {
        assert_eq!(tile.len(), self.num_loops(), "tile dimension mismatch");
        self.arrays[j]
            .support
            .iter()
            .map(|i| tile[i].min(self.indices[i].bound).max(1) as u128)
            .product()
    }

    /// Total per-tile memory footprint: the sum over arrays of
    /// [`LoopNest::array_footprint`]. A tile is executable without spilling iff
    /// this is at most the cache size `M` (up to the constant factors the
    /// paper ignores).
    pub fn tile_footprint(&self, tile: &[u64]) -> u128 {
        (0..self.num_arrays())
            .map(|j| self.array_footprint(j, tile))
            .sum()
    }

    /// Looks up a loop index position by name.
    pub fn index_position(&self, name: &str) -> Option<usize> {
        self.indices.iter().position(|i| i.name == name)
    }

    /// Looks up an array position by name.
    pub fn array_position(&self, name: &str) -> Option<usize> {
        self.arrays.iter().position(|a| a.name == name)
    }

    /// Returns a copy of the nest with different loop bounds (same structure).
    ///
    /// # Panics
    /// Panics if `bounds.len() != d` or any bound is zero.
    // lint: allow(L008) asserts pin the documented bounds.len() == num_loops precondition
    pub fn with_bounds(&self, bounds: &[u64]) -> LoopNest {
        assert_eq!(bounds.len(), self.num_loops(), "bound count mismatch");
        assert!(bounds.iter().all(|&b| b > 0), "bounds must be positive");
        let indices = self
            .indices
            .iter()
            .zip(bounds)
            .map(|(i, &b)| LoopIndex::new(i.name.clone(), b))
            .collect();
        LoopNest {
            indices,
            arrays: self.arrays.clone(),
        }
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "for ")?;
        for (k, idx) in self.indices.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} in [{}]", idx.name, idx.bound)?;
        }
        write!(f, ": ")?;
        for (k, a) in self.arrays.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", a.name)?;
            for (m, i) in a.support.iter().enumerate() {
                if m > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.indices[i].name)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Fluent builder for [`LoopNest`].
#[derive(Debug, Default, Clone)]
pub struct LoopNestBuilder {
    indices: Vec<LoopIndex>,
    arrays: Vec<(String, Vec<String>)>,
}

impl LoopNestBuilder {
    /// Declares a loop index with the given trip count.
    pub fn index(mut self, name: impl Into<String>, bound: u64) -> Self {
        self.indices.push(LoopIndex::new(name, bound));
        self
    }

    /// Declares an array accessed through the named loop indices.
    pub fn array<S: Into<String>, I: IntoIterator<Item = S>>(
        mut self,
        name: impl Into<String>,
        support: I,
    ) -> Self {
        self.arrays
            .push((name.into(), support.into_iter().map(Into::into).collect()));
        self
    }

    /// Validates and builds the loop nest.
    pub fn build(self) -> Result<LoopNest, ValidationError> {
        let mut arrays = Vec::with_capacity(self.arrays.len());
        for (name, support_names) in self.arrays {
            let mut support = IndexSet::empty();
            for sname in support_names {
                match self.indices.iter().position(|i| i.name == sname) {
                    Some(pos) => support.insert(pos),
                    None => {
                        return Err(ValidationError::SupportOutOfRange {
                            array: name,
                            position: usize::MAX,
                        })
                    }
                }
            }
            arrays.push(ArrayAccess { name, support });
        }
        LoopNest::new(self.indices, arrays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul() -> LoopNest {
        LoopNest::builder()
            .index("i", 8)
            .index("j", 16)
            .index("k", 32)
            .array("C", ["i", "k"])
            .array("A", ["i", "j"])
            .array("B", ["j", "k"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_structure() {
        let nest = matmul();
        assert_eq!(nest.num_loops(), 3);
        assert_eq!(nest.num_arrays(), 3);
        assert_eq!(nest.bounds(), vec![8, 16, 32]);
        assert_eq!(nest.support(0), IndexSet::from_indices([0, 2]));
        assert_eq!(nest.support(1), IndexSet::from_indices([0, 1]));
        assert_eq!(nest.support(2), IndexSet::from_indices([1, 2]));
        assert_eq!(nest.index_position("k"), Some(2));
        assert_eq!(nest.array_position("B"), Some(2));
        assert_eq!(nest.index_position("zz"), None);
    }

    #[test]
    fn arrays_containing_matches_paper_r_sets() {
        let nest = matmul();
        // R_i for i = index position: arrays containing that loop index.
        assert_eq!(nest.arrays_containing(0), IndexSet::from_indices([0, 1])); // C, A contain i
        assert_eq!(nest.arrays_containing(1), IndexSet::from_indices([1, 2])); // A, B contain j
        assert_eq!(nest.arrays_containing(2), IndexSet::from_indices([0, 2])); // C, B contain k
    }

    #[test]
    fn sizes_and_footprints() {
        let nest = matmul();
        assert_eq!(nest.iteration_space_size(), 8 * 16 * 32);
        assert_eq!(nest.array_size(0), 8 * 32);
        assert_eq!(nest.array_size(1), 8 * 16);
        assert_eq!(nest.array_size(2), 16 * 32);
        assert_eq!(nest.total_data_size(), 8 * 32 + 8 * 16 + 16 * 32);
        // A 4x4x4 tile touches 16 elements of each array.
        assert_eq!(nest.tile_footprint(&[4, 4, 4]), 48);
        // Tiles are clamped to the bounds.
        assert_eq!(nest.array_footprint(0, &[100, 100, 100]), 8 * 32);
        // Zero-sized tile edges are clamped up to 1.
        assert_eq!(nest.array_footprint(0, &[0, 1, 1]), 1);
    }

    #[test]
    fn validation_rejects_bad_nests() {
        assert_eq!(
            LoopNest::new(vec![], vec![]),
            Err(ValidationError::NoIndices)
        );
        assert_eq!(
            LoopNest::new(vec![LoopIndex::new("i", 4)], vec![]),
            Err(ValidationError::NoArrays)
        );
        assert_eq!(
            LoopNest::new(
                vec![LoopIndex::new("i", 0)],
                vec![ArrayAccess::new("A", [0])]
            ),
            Err(ValidationError::ZeroBound("i".into()))
        );
        assert_eq!(
            LoopNest::new(
                vec![LoopIndex::new("i", 2)],
                vec![ArrayAccess::new("A", [1])]
            ),
            Err(ValidationError::SupportOutOfRange {
                array: "A".into(),
                position: 1
            })
        );
        assert_eq!(
            LoopNest::new(
                vec![LoopIndex::new("i", 2), LoopIndex::new("j", 2)],
                vec![ArrayAccess::new("A", [0])]
            ),
            Err(ValidationError::UnusedIndex("j".into()))
        );
        assert_eq!(
            LoopNest::new(
                vec![LoopIndex::new("i", 2), LoopIndex::new("i", 3)],
                vec![ArrayAccess::new("A", [0, 1])]
            ),
            Err(ValidationError::DuplicateIndexName("i".into()))
        );
        assert_eq!(
            LoopNest::new(
                vec![LoopIndex::new("i", 2)],
                vec![ArrayAccess::new("A", [0]), ArrayAccess::new("A", [0])]
            ),
            Err(ValidationError::DuplicateArrayName("A".into()))
        );
    }

    #[test]
    fn builder_rejects_unknown_support_name() {
        let err = LoopNest::builder()
            .index("i", 2)
            .array("A", ["q"])
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::SupportOutOfRange { .. }));
    }

    #[test]
    fn with_bounds_changes_only_bounds() {
        let nest = matmul();
        let resized = nest.with_bounds(&[2, 3, 4]);
        assert_eq!(resized.bounds(), vec![2, 3, 4]);
        assert_eq!(resized.support(1), nest.support(1));
        assert_eq!(resized.iteration_space_size(), 24);
    }

    #[test]
    fn display_is_readable() {
        let s = matmul().to_string();
        assert!(s.contains("for i in [8]"));
        assert!(s.contains("C(i,k)"));
        assert!(s.contains("B(j,k)"));
    }

    #[test]
    fn deserialize_roundtrips_valid_nest() {
        let nest = matmul();
        let json = serde::json::to_string(&nest.serialize());
        let value = serde::json::parse(&json).unwrap();
        let back = LoopNest::deserialize(&value).unwrap();
        assert_eq!(back, nest);
    }

    #[test]
    fn deserialize_rejects_invalid_nests() {
        // Each document is structurally well-formed JSON in the derived wire
        // shape, but violates a `LoopNest::new` invariant; deserialization
        // must surface the validation error rather than admit the value.
        let hostile = [
            // zero loop bound
            (
                r#"{"indices":[{"name":"i","bound":0}],
                    "arrays":[{"name":"A","support":1}]}"#,
                "bound",
            ),
            // support bit beyond the number of indices
            (
                r#"{"indices":[{"name":"i","bound":4}],
                    "arrays":[{"name":"A","support":3}]}"#,
                "position",
            ),
            // index unused by every array
            (
                r#"{"indices":[{"name":"i","bound":4},{"name":"j","bound":4}],
                    "arrays":[{"name":"A","support":1}]}"#,
                "appears in no array",
            ),
            // duplicate index names
            (
                r#"{"indices":[{"name":"i","bound":4},{"name":"i","bound":4}],
                    "arrays":[{"name":"A","support":3}]}"#,
                "duplicate",
            ),
            // no indices at all
            (
                r#"{"indices":[],"arrays":[{"name":"A","support":0}]}"#,
                "no",
            ),
            // no arrays at all
            (r#"{"indices":[{"name":"i","bound":4}],"arrays":[]}"#, "no"),
        ];
        for (doc, needle) in hostile {
            let value = serde::json::parse(doc).unwrap();
            let err = LoopNest::deserialize(&value).expect_err("hostile nest must not deserialize");
            let msg = err.to_string().to_lowercase();
            assert!(
                msg.contains("invalid loop nest") && msg.contains(needle),
                "unexpected error for {doc}: {msg}"
            );
        }
    }

    #[test]
    fn deserialize_rejects_too_many_indices() {
        let indices: Vec<String> = (0..70)
            .map(|i| format!(r#"{{"name":"i{i}","bound":2}}"#))
            .collect();
        let doc = format!(
            r#"{{"indices":[{}],"arrays":[{{"name":"A","support":1}}]}}"#,
            indices.join(",")
        );
        let value = serde::json::parse(&doc).unwrap();
        let err =
            LoopNest::deserialize(&value).expect_err("70 indices exceed the bitmask capacity");
        assert!(err.to_string().contains("invalid loop nest"));
    }

    #[test]
    fn validation_error_messages() {
        for err in [
            ValidationError::NoIndices,
            ValidationError::NoArrays,
            ValidationError::TooManyIndices(70),
            ValidationError::ZeroBound("i".into()),
            ValidationError::SupportOutOfRange {
                array: "A".into(),
                position: 3,
            },
            ValidationError::UnusedIndex("j".into()),
            ValidationError::DuplicateIndexName("i".into()),
            ValidationError::DuplicateArrayName("A".into()),
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
