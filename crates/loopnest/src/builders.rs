//! Builders for the projective loop nests used throughout the paper.
//!
//! Section 6 of the paper works through matrix-matrix and matrix-vector
//! multiplication (§6.1), general tensor contractions including pointwise
//! convolutions and fully-connected layers (§6.2), and n-body pairwise
//! interactions (§6.3). These constructors produce exactly those programs;
//! [`random_projective`] additionally produces arbitrary valid projective
//! programs for property tests and for the random-program experiments (E6/E7
//! in DESIGN.md).

use crate::nest::{ArrayAccess, LoopIndex, LoopNest};
use crate::support::IndexSet;

/// Classical triply-nested matrix multiplication
/// `C(i,k) += A(i,j) * B(j,k)` with bounds `L1 × L2 × L3` for `(i, j, k)`.
///
/// Note the paper's index convention: `A1 = C` has support `{x1, x3}`,
/// `A2 = A` has `{x1, x2}` and `A3 = B` has `{x2, x3}`.
// lint: allow(L008) expect: the three-loop matmul nest literal is statically well-formed
pub fn matmul(l1: u64, l2: u64, l3: u64) -> LoopNest {
    LoopNest::builder()
        .index("i", l1)
        .index("j", l2)
        .index("k", l3)
        .array("C", ["i", "k"])
        .array("A", ["i", "j"])
        .array("B", ["j", "k"])
        .build()
        .expect("matmul nest is always valid")
}

/// Matrix-vector multiplication `y(i) += A(i,j) * x(j)`: the `L3 = 1` limit of
/// [`matmul`], kept three-deep so results are directly comparable with §6.1.
pub fn matvec(l1: u64, l2: u64) -> LoopNest {
    matmul(l1, l2, 1)
}

/// General tensor contraction from §6.2 of the paper:
///
/// `A1(x_1..x_j, x_k..x_d) += A2(x_1..x_{k-1}) * A3(x_{j+1}..x_d)`
///
/// with `1 <= j < k - 1 < d`. `bounds` supplies the `d` loop bounds.
///
/// # Panics
/// Panics if the index pattern or bounds are inconsistent.
pub fn tensor_contraction(j: usize, k: usize, bounds: &[u64]) -> LoopNest {
    let d = bounds.len();
    assert!(j >= 1 && j < k - 1 && k - 1 < d, "require 1 <= j < k-1 < d");
    let indices: Vec<LoopIndex> = bounds
        .iter()
        .enumerate()
        .map(|(i, &b)| LoopIndex::new(format!("x{}", i + 1), b))
        .collect();
    // Output: x_1..x_j and x_k..x_d  (1-based inclusive ranges from the paper).
    let out: IndexSet = (0..j).chain((k - 1)..d).collect();
    // Left input: x_1..x_{k-1}.
    let left: IndexSet = (0..(k - 1)).collect();
    // Right input: x_{j+1}..x_d.
    let right: IndexSet = (j..d).collect();
    let arrays = vec![
        ArrayAccess {
            name: "Out".into(),
            support: out,
        },
        ArrayAccess {
            name: "Left".into(),
            support: left,
        },
        ArrayAccess {
            name: "Right".into(),
            support: right,
        },
    ];
    LoopNest::new(indices, arrays).expect("tensor contraction nest is always valid")
}

/// Pointwise (1×1-filter) convolution from §6.2:
///
/// `Out(k,h,w,b) += Image(w,h,c,b) * Filter(k,c)`
///
/// over batch `b`, input channels `c`, output channels `k`, width `w`,
/// height `h`.
pub fn pointwise_conv(batch: u64, c_in: u64, k_out: u64, width: u64, height: u64) -> LoopNest {
    LoopNest::builder()
        .index("b", batch)
        .index("c", c_in)
        .index("k", k_out)
        .index("w", width)
        .index("h", height)
        .array("Out", ["k", "h", "w", "b"])
        .array("Image", ["w", "h", "c", "b"])
        .array("Filter", ["k", "c"])
        .build()
        .expect("pointwise convolution nest is always valid")
}

/// Fully-connected layer (a batched matrix multiplication):
/// `Out(b,k) += In(b,c) * W(k,c)`.
pub fn fully_connected(batch: u64, c_in: u64, k_out: u64) -> LoopNest {
    LoopNest::builder()
        .index("b", batch)
        .index("c", c_in)
        .index("k", k_out)
        .array("Out", ["b", "k"])
        .array("In", ["b", "c"])
        .array("W", ["k", "c"])
        .build()
        .expect("fully connected nest is always valid")
}

/// n-body pairwise interactions from §6.3:
/// `A1[x1] = f(A2[x1], A3[x2])` over all pairs `(x1, x2)`.
pub fn nbody(l1: u64, l2: u64) -> LoopNest {
    LoopNest::builder()
        .index("x1", l1)
        .index("x2", l2)
        .array("Acc", ["x1"])
        .array("Src", ["x1"])
        .array("Other", ["x2"])
        .build()
        .expect("n-body nest is always valid")
}

/// Deterministic pseudo-random projective program generator (no external RNG
/// dependency; a fixed-increment SplitMix64 keeps results reproducible across
/// runs and platforms).
///
/// Produces a valid nest with `d` loops and `n` arrays whose bounds lie in
/// `bound_range`, suitable for property tests and the random-program
/// experiments. Supports are random non-empty subsets, patched so that every
/// loop index is covered (validity requirement of §2).
pub fn random_projective(seed: u64, d: usize, n: usize, bound_range: (u64, u64)) -> LoopNest {
    assert!((1..=16).contains(&d), "d must be in 1..=16");
    assert!((1..=16).contains(&n), "n must be in 1..=16");
    let (lo, hi) = bound_range;
    assert!(
        lo >= 1 && hi >= lo,
        "bound range must be non-empty and positive"
    );
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        // SplitMix64.
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };

    let indices: Vec<LoopIndex> = (0..d)
        .map(|i| {
            let span = hi - lo + 1;
            LoopIndex::new(format!("x{}", i + 1), lo + next() % span)
        })
        .collect();

    let full_mask = if d == 64 { u64::MAX } else { (1u64 << d) - 1 };
    let mut supports: Vec<IndexSet> = (0..n)
        .map(|_| {
            let mut bits = next() & full_mask;
            if bits == 0 {
                bits = 1 << (next() as usize % d);
            }
            IndexSet::from_bits(bits)
        })
        .collect();
    // Ensure every loop index is covered by some support.
    let covered = supports
        .iter()
        .fold(IndexSet::empty(), |acc, s| acc.union(*s));
    for missing in IndexSet::full(d).difference(covered).iter() {
        let victim = (next() as usize) % n;
        let mut s = supports[victim];
        s.insert(missing);
        supports[victim] = s;
    }

    let arrays: Vec<ArrayAccess> = supports
        .into_iter()
        .enumerate()
        .map(|(j, support)| ArrayAccess {
            name: format!("A{}", j + 1),
            support,
        })
        .collect();
    LoopNest::new(indices, arrays).expect("random projective nest is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_structure() {
        let nest = matmul(4, 5, 6);
        assert_eq!(nest.num_loops(), 3);
        assert_eq!(nest.num_arrays(), 3);
        assert_eq!(nest.bounds(), vec![4, 5, 6]);
        assert_eq!(nest.support(0), IndexSet::from_indices([0, 2]));
        assert_eq!(nest.support(1), IndexSet::from_indices([0, 1]));
        assert_eq!(nest.support(2), IndexSet::from_indices([1, 2]));
    }

    #[test]
    fn matvec_is_matmul_with_unit_k() {
        let nest = matvec(10, 20);
        assert_eq!(nest.bounds(), vec![10, 20, 1]);
        assert_eq!(nest.array_size(0), 10); // y
        assert_eq!(nest.array_size(1), 200); // A
        assert_eq!(nest.array_size(2), 20); // x
    }

    #[test]
    fn contraction_supports_partition_as_in_paper() {
        // d = 5, j = 2, k = 4: Out = x1,x2,x4,x5; Left = x1..x3; Right = x3..x5.
        let nest = tensor_contraction(2, 4, &[3, 4, 5, 6, 7]);
        assert_eq!(nest.num_loops(), 5);
        assert_eq!(nest.support(0), IndexSet::from_indices([0, 1, 3, 4]));
        assert_eq!(nest.support(1), IndexSet::from_indices([0, 1, 2]));
        assert_eq!(nest.support(2), IndexSet::from_indices([2, 3, 4]));
        // Every loop index is covered.
        let covered = (0..3).fold(IndexSet::empty(), |acc, j| acc.union(nest.support(j)));
        assert_eq!(covered, IndexSet::full(5));
    }

    #[test]
    #[should_panic(expected = "require 1 <= j < k-1 < d")]
    fn contraction_rejects_bad_split() {
        let _ = tensor_contraction(2, 3, &[2, 2, 2, 2]);
    }

    #[test]
    fn pointwise_conv_matches_equation_6_5() {
        let nest = pointwise_conv(8, 3, 16, 32, 32);
        // Out(k,h,w,b), Image(w,h,c,b), Filter(k,c)
        let b = nest.index_position("b").unwrap();
        let c = nest.index_position("c").unwrap();
        let k = nest.index_position("k").unwrap();
        let w = nest.index_position("w").unwrap();
        let h = nest.index_position("h").unwrap();
        assert_eq!(nest.support(0), IndexSet::from_indices([k, h, w, b]));
        assert_eq!(nest.support(1), IndexSet::from_indices([w, h, c, b]));
        assert_eq!(nest.support(2), IndexSet::from_indices([k, c]));
        assert_eq!(nest.array_size(2), 3 * 16);
    }

    #[test]
    fn fully_connected_is_matmul_shaped() {
        let nest = fully_connected(32, 128, 64);
        assert_eq!(nest.num_loops(), 3);
        assert_eq!(nest.num_arrays(), 3);
        // Each pair of loops is covered by exactly one array, like matmul.
        for i in 0..3 {
            assert_eq!(nest.arrays_containing(i).len(), 2);
        }
    }

    #[test]
    fn nbody_structure() {
        let nest = nbody(100, 200);
        assert_eq!(nest.num_loops(), 2);
        assert_eq!(nest.num_arrays(), 3);
        assert_eq!(nest.arrays_containing(0).len(), 2); // Acc, Src
        assert_eq!(nest.arrays_containing(1).len(), 1); // Other
        assert_eq!(nest.iteration_space_size(), 20_000);
    }

    #[test]
    fn random_projective_is_valid_and_deterministic() {
        for seed in 0..20u64 {
            let a = random_projective(seed, 4, 3, (1, 64));
            let b = random_projective(seed, 4, 3, (1, 64));
            assert_eq!(a, b, "same seed must give the same program");
            assert_eq!(a.num_loops(), 4);
            assert_eq!(a.num_arrays(), 3);
            // Validation invariants hold by construction (would have panicked).
            let covered =
                (0..a.num_arrays()).fold(IndexSet::empty(), |acc, j| acc.union(a.support(j)));
            assert_eq!(covered, IndexSet::full(4));
        }
        // Different seeds give different programs at least sometimes.
        let distinct = (0..20u64)
            .map(|s| random_projective(s, 4, 3, (1, 64)))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 1);
    }

    #[test]
    fn random_projective_respects_bound_range() {
        let nest = random_projective(7, 5, 4, (3, 9));
        assert!(nest.bounds().iter().all(|&b| (3..=9).contains(&b)));
    }
}
