//! Canonical forms for loop nests: permutation-invariant signatures.
//!
//! Writing the same program with its loops or arrays listed in a different
//! order changes nothing about its communication behaviour: every analysis in
//! `projtile-core` is equivariant under those permutations. A long-lived
//! analysis session (the `projtile_core::engine` introduced with this module)
//! therefore wants to recognize permuted-but-equivalent nests and route them
//! to one shared cache entry.
//!
//! [`canonicalize`] computes the canonical representative of a nest's
//! permutation class: loops sorted by name (names are unique by validation),
//! arrays sorted by name, and every support bitmask rewritten through the
//! loop permutation. Two nests have the same [`NestSignature`] **iff** one is
//! a loop/array reordering of the other (including names and bounds — two
//! programs that differ in any declared detail never collide). The
//! [`CanonicalNest`] remembers both permutations so positions in analysis
//! results can be translated between the original and canonical orderings.

use crate::nest::{ArrayAccess, LoopIndex, LoopNest};
use crate::support::IndexSet;

/// A hashable, permutation-invariant identity of a loop nest: the canonical
/// representative of its loop/array-reordering class.
///
/// Use as a cache key: `signature(a) == signature(b)` iff `b` can be obtained
/// from `a` by reordering its loop indices and/or its array declarations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NestSignature(LoopNest);

impl NestSignature {
    /// The canonical nest underlying the signature.
    pub fn canonical_nest(&self) -> &LoopNest {
        &self.0
    }
}

/// A nest together with its canonical form and the permutations relating the
/// two orderings. Produced by [`canonicalize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalNest {
    nest: LoopNest,
    loop_to_canon: Vec<usize>,
    array_to_canon: Vec<usize>,
}

impl CanonicalNest {
    /// The canonical nest (loops and arrays in canonical order).
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// The signature (cache key) of the original nest's permutation class.
    pub fn signature(&self) -> NestSignature {
        NestSignature(self.nest.clone())
    }

    /// Maps an original loop position to its canonical position.
    pub fn loop_to_canon(&self, original: usize) -> usize {
        self.loop_to_canon[original]
    }

    /// Maps a canonical loop position back to the original position.
    pub fn canon_to_loop(&self, canonical: usize) -> usize {
        self.loop_to_canon
            .iter()
            .position(|&c| c == canonical)
            .expect("canonical position in range")
    }

    /// Maps an original array position to its canonical position.
    pub fn array_to_canon(&self, original: usize) -> usize {
        self.array_to_canon[original]
    }

    /// Rewrites a set of original loop positions into canonical positions.
    pub fn loop_set_to_canon(&self, set: IndexSet) -> IndexSet {
        IndexSet::from_indices(set.iter().map(|i| self.loop_to_canon[i]))
    }

    /// Rewrites a set of canonical loop positions into original positions.
    pub fn loop_set_from_canon(&self, set: IndexSet) -> IndexSet {
        let inverse: Vec<usize> = invert(&self.loop_to_canon);
        IndexSet::from_indices(set.iter().map(|i| inverse[i]))
    }

    /// `true` iff the nest already is its own canonical form (both
    /// permutations are the identity).
    pub fn is_identity(&self) -> bool {
        is_identity(&self.loop_to_canon) && is_identity(&self.array_to_canon)
    }

    /// The loop permutation as a slice (`original position → canonical
    /// position`).
    pub fn loop_permutation(&self) -> &[usize] {
        &self.loop_to_canon
    }

    /// The array permutation as a slice (`original position → canonical
    /// position`).
    pub fn array_permutation(&self) -> &[usize] {
        &self.array_to_canon
    }
}

fn is_identity(perm: &[usize]) -> bool {
    perm.iter().enumerate().all(|(i, &p)| i == p)
}

fn invert(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Computes the canonical form of `nest`: loops sorted by name, arrays sorted
/// by name, supports rewritten through the loop permutation. See the module
/// docs for the equivalence this induces.
// lint: allow(L008) expect: the sort emits a valid permutation of the nest's own axes
pub fn canonicalize(nest: &LoopNest) -> CanonicalNest {
    let d = nest.num_loops();
    let n = nest.num_arrays();

    // canon position -> original position, sorted by the canonical key.
    let mut loop_order: Vec<usize> = (0..d).collect();
    loop_order.sort_by(|&a, &b| nest.indices()[a].name.cmp(&nest.indices()[b].name));
    let loop_to_canon = invert(&loop_order);

    let mut array_order: Vec<usize> = (0..n).collect();
    array_order.sort_by(|&a, &b| nest.arrays()[a].name.cmp(&nest.arrays()[b].name));
    let array_to_canon = invert(&array_order);

    let indices: Vec<LoopIndex> = loop_order
        .iter()
        .map(|&orig| nest.indices()[orig].clone())
        .collect();
    let arrays: Vec<ArrayAccess> = array_order
        .iter()
        .map(|&orig| {
            let a = &nest.arrays()[orig];
            ArrayAccess::new(
                a.name.clone(),
                a.support.iter().map(|pos| loop_to_canon[pos]),
            )
        })
        .collect();
    let canon = LoopNest::new(indices, arrays).expect("permuting a valid nest preserves validity");
    CanonicalNest {
        nest: canon,
        loop_to_canon,
        array_to_canon,
    }
}

/// Builds the nest obtained by reordering `nest`'s loops and arrays:
/// `loop_perm[new_position] = original_position` (and likewise
/// `array_perm`). Supports are rewritten accordingly, so the result denotes
/// the same program. Useful for tests of permutation invariance.
///
/// # Panics
/// Panics if either argument is not a permutation of the right length.
// lint: allow(L008) asserts pin the perm-is-a-permutation precondition checked by canonicalize
pub fn permute_nest(nest: &LoopNest, loop_perm: &[usize], array_perm: &[usize]) -> LoopNest {
    let d = nest.num_loops();
    let n = nest.num_arrays();
    assert_eq!(loop_perm.len(), d, "loop permutation length mismatch");
    assert_eq!(array_perm.len(), n, "array permutation length mismatch");
    let mut seen = vec![false; d];
    for &p in loop_perm {
        assert!(p < d && !seen[p], "not a loop permutation");
        seen[p] = true;
    }
    let mut seen = vec![false; n];
    for &p in array_perm {
        assert!(p < n && !seen[p], "not an array permutation");
        seen[p] = true;
    }
    // old position -> new position, to rewrite the supports.
    let old_to_new = invert(loop_perm);
    let indices: Vec<LoopIndex> = loop_perm
        .iter()
        .map(|&orig| nest.indices()[orig].clone())
        .collect();
    let arrays: Vec<ArrayAccess> = array_perm
        .iter()
        .map(|&orig| {
            let a = &nest.arrays()[orig];
            ArrayAccess::new(a.name.clone(), a.support.iter().map(|pos| old_to_new[pos]))
        })
        .collect();
    LoopNest::new(indices, arrays).expect("permuting a valid nest preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn canonical_form_is_fixed_by_canonicalization() {
        let nest = builders::matmul(8, 16, 32);
        let canon = canonicalize(&nest);
        let again = canonicalize(canon.nest());
        assert!(again.is_identity());
        assert_eq!(again.nest(), canon.nest());
    }

    #[test]
    fn loop_and_array_order_do_not_change_the_signature() {
        let nest = builders::matmul(8, 16, 32);
        let sig = canonicalize(&nest).signature();
        // Reverse the loops and rotate the arrays.
        let permuted = permute_nest(&nest, &[2, 1, 0], &[1, 2, 0]);
        assert_ne!(&permuted, &nest);
        assert_eq!(canonicalize(&permuted).signature(), sig);
        // The permuted nest denotes the same program: same sizes per name.
        for a in nest.arrays() {
            let j = permuted.array_position(&a.name).unwrap();
            let i = nest.array_position(&a.name).unwrap();
            assert_eq!(permuted.array_size(j), nest.array_size(i));
        }
    }

    #[test]
    fn different_bounds_or_supports_change_the_signature() {
        let base = canonicalize(&builders::matmul(8, 16, 32)).signature();
        assert_ne!(canonicalize(&builders::matmul(8, 16, 64)).signature(), base);
        assert_ne!(canonicalize(&builders::matvec(8, 16)).signature(), base);
        assert_ne!(canonicalize(&builders::nbody(8, 16)).signature(), base);
    }

    #[test]
    fn position_translation_round_trips() {
        let nest = builders::pointwise_conv(2, 3, 4, 5, 6);
        let permuted = permute_nest(&nest, &[4, 2, 0, 1, 3], &[2, 0, 1]);
        let canon = canonicalize(&permuted);
        for i in 0..permuted.num_loops() {
            assert_eq!(canon.canon_to_loop(canon.loop_to_canon(i)), i);
            // Positions translate by name: the canonical index at the mapped
            // position carries the same name and bound.
            let c = canon.loop_to_canon(i);
            assert_eq!(canon.nest().indices()[c], permuted.indices()[i]);
        }
        for j in 0..permuted.num_arrays() {
            let c = canon.array_to_canon(j);
            assert_eq!(canon.nest().arrays()[c].name, permuted.arrays()[j].name);
        }
        let set = IndexSet::from_indices([0, 3]);
        assert_eq!(canon.loop_set_from_canon(canon.loop_set_to_canon(set)), set);
    }

    #[test]
    fn permute_nest_rejects_non_permutations() {
        let nest = builders::matmul(4, 4, 4);
        assert!(std::panic::catch_unwind(|| permute_nest(&nest, &[0, 0, 1], &[0, 1, 2])).is_err());
        assert!(std::panic::catch_unwind(|| permute_nest(&nest, &[0, 1], &[0, 1, 2])).is_err());
        assert!(std::panic::catch_unwind(|| permute_nest(&nest, &[0, 1, 2], &[0, 1, 3])).is_err());
    }
}
