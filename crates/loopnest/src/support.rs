//! Small bitsets over loop indices.
//!
//! Supports `supp(φ_j)` and the subsets `Q ⊆ [d]` of Theorem 2 are sets of
//! loop-index positions. Loop nests in practice have single-digit depth, so a
//! 64-bit mask is more than enough and keeps subset enumeration (`2^d` masks)
//! allocation-free.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of loop-index positions (`0..d`, `d <= 64`), stored as a bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct IndexSet(u64);

impl IndexSet {
    /// Maximum number of distinct loop indices representable.
    pub const MAX_INDICES: usize = 64;

    /// The empty set.
    pub fn empty() -> IndexSet {
        IndexSet(0)
    }

    /// The full set `{0, 1, ..., d-1}`.
    ///
    /// # Panics
    /// Panics if `d > 64`.
    // lint: allow(L008) assert pins the n <= MAX_AXES capacity bound
    pub fn full(d: usize) -> IndexSet {
        assert!(d <= Self::MAX_INDICES, "at most 64 loop indices supported");
        if d == 64 {
            IndexSet(u64::MAX)
        } else {
            IndexSet((1u64 << d) - 1)
        }
    }

    /// Builds a set from an iterator of index positions.
    ///
    /// # Panics
    /// Panics if any position is `>= 64`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> IndexSet {
        let mut s = IndexSet::empty();
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Builds a set directly from a bitmask.
    pub fn from_bits(bits: u64) -> IndexSet {
        IndexSet(bits)
    }

    /// The underlying bitmask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Inserts an index position.
    ///
    /// # Panics
    /// Panics if `i >= 64`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < Self::MAX_INDICES, "index position out of range");
        self.0 |= 1 << i;
    }

    /// Removes an index position (no-op if absent).
    pub fn remove(&mut self, i: usize) {
        if i < Self::MAX_INDICES {
            self.0 &= !(1 << i);
        }
    }

    /// Membership test.
    pub fn contains(self, i: usize) -> bool {
        i < Self::MAX_INDICES && (self.0 >> i) & 1 == 1
    }

    /// Number of elements.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` iff the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: IndexSet) -> IndexSet {
        IndexSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: IndexSet) -> IndexSet {
        IndexSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: IndexSet) -> IndexSet {
        IndexSet(self.0 & !other.0)
    }

    /// Returns `true` iff `self ⊆ other`.
    pub fn is_subset_of(self, other: IndexSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `true` iff the sets share no element.
    pub fn is_disjoint_from(self, other: IndexSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates over the member positions in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..Self::MAX_INDICES).filter(move |&i| self.contains(i))
    }

    /// Enumerates all `2^d` subsets of `{0, ..., d-1}` in mask order.
    ///
    /// # Panics
    /// Panics if `d > 30` (the Theorem-2 sweep is exponential in `d`; real
    /// loop nests have depth well below 30, and anything larger is almost
    /// certainly a bug in the caller).
    pub fn all_subsets(d: usize) -> impl Iterator<Item = IndexSet> {
        assert!(
            d <= 30,
            "subset enumeration over more than 30 indices refused"
        );
        (0u64..(1u64 << d)).map(IndexSet)
    }
}

impl fmt::Debug for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<usize> for IndexSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        IndexSet::from_indices(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_operations() {
        let a = IndexSet::from_indices([0, 2, 4]);
        let b = IndexSet::from_indices([2, 3]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(2));
        assert!(!a.contains(1));
        assert_eq!(a.union(b), IndexSet::from_indices([0, 2, 3, 4]));
        assert_eq!(a.intersection(b), IndexSet::from_indices([2]));
        assert_eq!(a.difference(b), IndexSet::from_indices([0, 4]));
        assert!(IndexSet::from_indices([2]).is_subset_of(a));
        assert!(!b.is_subset_of(a));
        assert!(a.is_disjoint_from(IndexSet::from_indices([1, 3])));
        assert!(!a.is_disjoint_from(b));
    }

    #[test]
    fn insert_remove_and_iter() {
        let mut s = IndexSet::empty();
        assert!(s.is_empty());
        s.insert(5);
        s.insert(1);
        s.remove(9); // no-op
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5]);
        s.remove(1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn full_and_bits() {
        assert_eq!(IndexSet::full(3), IndexSet::from_indices([0, 1, 2]));
        assert_eq!(IndexSet::full(0), IndexSet::empty());
        assert_eq!(IndexSet::full(64).len(), 64);
        assert_eq!(
            IndexSet::from_bits(0b101).iter().collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn subset_enumeration() {
        let subsets: Vec<_> = IndexSet::all_subsets(3).collect();
        assert_eq!(subsets.len(), 8);
        assert_eq!(subsets[0], IndexSet::empty());
        assert_eq!(subsets[7], IndexSet::full(3));
        // Every enumerated set is a subset of the full set.
        assert!(subsets.iter().all(|s| s.is_subset_of(IndexSet::full(3))));
    }

    #[test]
    #[should_panic(expected = "refused")]
    fn huge_subset_enumeration_refused() {
        let _ = IndexSet::all_subsets(31).count();
    }

    #[test]
    fn display_format() {
        assert_eq!(IndexSet::from_indices([0, 3]).to_string(), "{0,3}");
        assert_eq!(IndexSet::empty().to_string(), "{}");
    }

    #[test]
    fn from_iterator() {
        let s: IndexSet = vec![1usize, 2, 2, 3].into_iter().collect();
        assert_eq!(s, IndexSet::from_indices([1, 2, 3]));
    }
}
