//! Session persistence: serializing an [`Engine`]'s result caches through
//! the workspace serde layer so a service warm-starts from disk.
//!
//! # Format
//!
//! A snapshot is a single JSON object:
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries":  [ {"canonical": <LoopNest>, "orientations": [{"loops": [..], "arrays": [..]}]} ],
//!   "betas":    [ {"entry": 0, "m": 256, "value": ["1/2", ..]} ],
//!   "results":  [ {"entry": 0, "orientation": 0, "m": 256, "kind": "tightness", "value": {..}} ],
//!   "slices":   [ {"entry": 0, "m": 256, "axis": 2, "kind": "span", "lo": 1, "hi": 256, "value": {..}} ],
//!   "surfaces": [ {"entry": 0, "orientation": 0, "m": 256, "surface": {..}} ]
//! }
//! ```
//!
//! Artifact lists are ordered least- to most-recently-used, and restore
//! re-inserts in that order, so the restored session's eviction behaviour
//! matches the snapshotted one. Only *results* are persisted — warm solver
//! state (the per-orientation `HblFamily`, the pooled simplex contexts) is
//! rebuilt lazily, and surface summaries are recomputed from their surfaces.
//!
//! # Versioning caveats
//!
//! `version` is checked on restore and unknown versions are rejected
//! ([`EngineError::Snapshot`]) rather than guessed at. The payload encodings
//! ride on the workspace serde derives, so a type-shape change in a result
//! type is a *format* change: bump [`SNAPSHOT_VERSION`] when one happens.
//! Corrupt or hostile documents are rejected with errors — the JSON parser
//! depth cap bounds recursion, every index is bounds-checked, permutations
//! are validated before use, and artifact payloads are shape-checked
//! against their nest (certificate vector lengths, witness-subset ranges,
//! slice sortedness and probe coverage, surface coordinate dimensions, and
//! cache sizes no valid session can produce) so a restored cache can never
//! panic a worker that consumes it (pinned by `tests/snapshot_hostile.rs`).

use serde::{json, Deserialize, Serialize, Value};

use projtile_arith::Rational;
use projtile_loopnest::canon::permute_nest;
use projtile_loopnest::{canonicalize, LoopNest};
use projtile_lp::parametric::ValueFunction;

use super::cache::{
    cost, BetaKey, CachedResult, NestEntry, Orientation, PointSlice, ResultKey, ResultKind,
    SliceEntry, SliceKey, SliceKind, StoredSurface, SurfaceKey,
};
use super::{summarize_surface, Engine, EngineConfig, EngineError};
use crate::parametric::ExponentSurface;

/// Current snapshot format version; restore rejects any other value.
pub const SNAPSHOT_VERSION: i64 = 1;

/// Parses just the canonical signatures of a snapshot's entries, in entry
/// order — the single routing pass [`super::SharedEngine`] uses to assign
/// entries to shards before restoring each shard's subset.
pub(crate) fn entry_signatures(
    value: &Value,
) -> Result<Vec<projtile_loopnest::NestSignature>, EngineError> {
    as_array(field(value, "entries")?, "entries")?
        .iter()
        .map(|ev| {
            let canonical: LoopNest = de("snapshot entry nest", field(ev, "canonical")?)?;
            Ok(canonicalize(&canonical).signature())
        })
        .collect()
}

/// The five body lists of a snapshot document, in document order:
/// `(entries, betas, results, slices, surfaces)`.
pub(crate) type SnapshotParts = (Vec<Value>, Vec<Value>, Vec<Value>, Vec<Value>, Vec<Value>);

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn snap_err(context: &str, e: serde::Error) -> EngineError {
    EngineError::Snapshot(format!("{context}: {e}"))
}

fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, EngineError> {
    v.field(name).map_err(|e| snap_err("snapshot", e))
}

fn de<T: Deserialize>(context: &str, v: &Value) -> Result<T, EngineError> {
    T::deserialize(v).map_err(|e| snap_err(context, e))
}

/// Deserializes an artifact's cache size and rejects values below 2 words —
/// no session can produce them ([`super::Engine::validate_query`] refuses
/// such queries), and downstream consumers (`log::beta`) assert `m >= 2`.
fn artifact_m(v: &Value, context: &str) -> Result<u64, EngineError> {
    let m: u64 = de(context, v)?;
    if m < 2 {
        return Err(EngineError::Snapshot(format!(
            "{context} must be at least 2 words, got {m}"
        )));
    }
    Ok(m)
}

fn as_array<'a>(v: &'a Value, what: &str) -> Result<&'a [Value], EngineError> {
    match v {
        Value::Array(items) => Ok(items),
        other => Err(EngineError::Snapshot(format!(
            "expected an array for {what}, found {}",
            other.kind()
        ))),
    }
}

fn is_permutation(perm: &[usize], len: usize) -> bool {
    if perm.len() != len {
        return false;
    }
    let mut seen = vec![false; len];
    for &p in perm {
        match seen.get_mut(p) {
            None => return false,
            Some(slot) if *slot => return false,
            Some(slot) => *slot = true,
        }
    }
    true
}

fn kind_tag(kind: ResultKind) -> &'static str {
    match kind {
        ResultKind::Bound => "bound",
        ResultKind::Enumerated => "enumerated",
        ResultKind::Tiling => "tiling",
        ResultKind::Tightness => "tightness",
        ResultKind::Certificate => "certificate",
    }
}

impl Engine {
    /// Serializes the session's result caches as a [`Value`] tree — one
    /// versioned JSON object holding the interned nests, β vectors, typed
    /// results, slices, and surfaces, each list in least- to
    /// most-recently-used order (see `engine/snapshot.rs` for the full
    /// format and its versioning caveats, mirrored in ARCHITECTURE.md).
    /// Takes `&mut self` only to fold pending shared-path recency stamps
    /// into the persisted order; no cached artifact is modified.
    pub fn snapshot(&mut self) -> Value {
        let (entries, betas, results, slices, surfaces) = self.snapshot_parts(0);
        obj(vec![
            ("version", Value::Int(SNAPSHOT_VERSION as i128)),
            ("entries", Value::Array(entries)),
            ("betas", Value::Array(betas)),
            ("results", Value::Array(results)),
            ("slices", Value::Array(slices)),
            ("surfaces", Value::Array(surfaces)),
        ])
    }

    /// [`Engine::snapshot`] printed as compact JSON.
    pub fn snapshot_json(&mut self) -> String {
        json::to_string(&self.snapshot())
    }

    /// Restores a session from a snapshot [`Value`], with default cache
    /// budgets. The restored session answers every persisted query from
    /// cache, bitwise-identically to the session that produced the snapshot.
    pub fn restore(value: &Value) -> Result<Engine, EngineError> {
        Engine::restore_with_config(value, EngineConfig::default())
    }

    /// [`Engine::restore`] with explicit cache budgets (restoring into
    /// smaller budgets evicts least recently used artifacts immediately).
    pub fn restore_with_config(value: &Value, config: EngineConfig) -> Result<Engine, EngineError> {
        Engine::restore_filtered(value, config, &|_| true)
    }

    /// Restores a session from snapshot JSON text.
    pub fn restore_json(text: &str) -> Result<Engine, EngineError> {
        Engine::restore_json_with_config(text, EngineConfig::default())
    }

    /// [`Engine::restore_json`] with explicit cache budgets.
    pub fn restore_json_with_config(
        text: &str,
        config: EngineConfig,
    ) -> Result<Engine, EngineError> {
        let value = json::parse(text).map_err(|e| snap_err("snapshot JSON", e))?;
        Engine::restore_with_config(&value, config)
    }

    /// The snapshot body lists, with every entry index shifted by
    /// `entry_offset` — the building block [`super::SharedEngine`] uses to
    /// merge its shards into one document.
    pub(crate) fn snapshot_parts(&mut self, entry_offset: usize) -> SnapshotParts {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|entry| {
                obj(vec![
                    ("canonical", entry.canonical.serialize()),
                    (
                        "orientations",
                        Value::Array(
                            entry
                                .orientations
                                .iter()
                                .map(|o| {
                                    obj(vec![
                                        ("loops", o.loop_perm.serialize()),
                                        ("arrays", o.array_perm.serialize()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let betas: Vec<Value> = self
            .betas
            .iter_lru_to_mru()
            .map(|(k, v)| {
                obj(vec![
                    ("entry", (k.entry + entry_offset).serialize()),
                    ("m", k.m.serialize()),
                    ("value", v.serialize()),
                ])
            })
            .collect();
        let results: Vec<Value> = self
            .results
            .iter_lru_to_mru()
            .map(|(k, r)| {
                let payload = match r {
                    CachedResult::Bound(lb) => lb.serialize(),
                    CachedResult::Enumerated(en) => en.serialize(),
                    CachedResult::Tiling(t) => t.serialize(),
                    CachedResult::Tightness(t) => t.serialize(),
                    CachedResult::Certificate(ok) => ok.serialize(),
                };
                obj(vec![
                    ("entry", (k.entry + entry_offset).serialize()),
                    ("orientation", k.orientation.serialize()),
                    ("m", k.m.serialize()),
                    ("kind", Value::String(kind_tag(k.kind).to_string())),
                    ("value", payload),
                ])
            })
            .collect();
        let slices: Vec<Value> = self
            .slices
            .iter_lru_to_mru()
            .filter_map(|(k, s)| {
                let mut fields = vec![
                    ("entry", (k.entry + entry_offset).serialize()),
                    ("m", k.m.serialize()),
                    ("axis", k.canon_axis.serialize()),
                ];
                match (k.kind, s) {
                    (SliceKind::Span { lo_bound, hi_bound }, SliceEntry::Span(vf)) => {
                        fields.push(("kind", Value::String("span".into())));
                        fields.push(("lo", lo_bound.serialize()));
                        fields.push(("hi", hi_bound.serialize()));
                        fields.push(("value", vf.serialize()));
                    }
                    (SliceKind::Probe, SliceEntry::Probe(ps)) => {
                        fields.push(("kind", Value::String("probe".into())));
                        fields.push(("hi", ps.hi_bound.serialize()));
                        fields.push(("value", ps.vf.serialize()));
                    }
                    // A key/entry variant mismatch cannot be built by the
                    // insertion paths; dropping the cache entry from the
                    // snapshot (it is only a memo) beats unwinding mid-write.
                    _ => return None,
                }
                Some(obj(fields))
            })
            .collect();
        let surfaces: Vec<Value> = self
            .surfaces
            .iter_lru_to_mru()
            .map(|(k, s)| {
                obj(vec![
                    ("entry", (k.entry + entry_offset).serialize()),
                    ("orientation", k.orientation.serialize()),
                    ("m", k.m.serialize()),
                    ("lo", k.lo_bounds.serialize()),
                    ("hi", k.hi_bounds.serialize()),
                    ("surface", s.surface.serialize()),
                ])
            })
            .collect();
        (entries, betas, results, slices, surfaces)
    }

    /// Restores the subset of a snapshot whose entry indices pass `keep`
    /// (the sharded front routes entries to shards by signature first, then
    /// restores one shard per call). Entry indices are remapped to the kept
    /// subset; artifacts referencing dropped entries are skipped cheaply —
    /// their payloads are never deserialized.
    pub(crate) fn restore_filtered(
        value: &Value,
        config: EngineConfig,
        keep: &dyn Fn(usize) -> bool,
    ) -> Result<Engine, EngineError> {
        let version: i64 = de("snapshot version", field(value, "version")?)?;
        if version != SNAPSHOT_VERSION {
            return Err(EngineError::Snapshot(format!(
                "unsupported snapshot version {version} (this build reads version {SNAPSHOT_VERSION})"
            )));
        }
        let mut engine = Engine::with_config(config);

        // Interned nests and their orientations.
        let mut remap: Vec<Option<usize>> = Vec::new();
        for (idx, ev) in as_array(field(value, "entries")?, "entries")?
            .iter()
            .enumerate()
        {
            if !keep(idx) {
                remap.push(None);
                continue;
            }
            let canonical: LoopNest = de("snapshot entry nest", field(ev, "canonical")?)?;
            let canon = canonicalize(&canonical);
            if !canon.is_identity() {
                return Err(EngineError::Snapshot(
                    "snapshot entry nest is not in canonical form".into(),
                ));
            }
            let sig = canon.signature();
            let d = canonical.num_loops();
            let n = canonical.num_arrays();
            let mut orientations = Vec::new();
            for ov in as_array(field(ev, "orientations")?, "orientations")? {
                let loop_perm: Vec<usize> = de("orientation loops", field(ov, "loops")?)?;
                let array_perm: Vec<usize> = de("orientation arrays", field(ov, "arrays")?)?;
                if !is_permutation(&loop_perm, d) || !is_permutation(&array_perm, n) {
                    return Err(EngineError::Snapshot(
                        "snapshot orientation permutations are invalid".into(),
                    ));
                }
                let nest = permute_nest(&canonical, &loop_perm, &array_perm);
                orientations.push(Orientation {
                    loop_perm,
                    array_perm,
                    nest,
                    hbl_family: None,
                });
            }
            let e = engine.entries.len();
            engine.entries.push(NestEntry {
                canonical,
                orientations,
            });
            if engine.index.insert(sig, e).is_some() {
                return Err(EngineError::Snapshot(
                    "snapshot contains duplicate canonical entries".into(),
                ));
            }
            engine.stats.interned += 1;
            remap.push(Some(e));
        }

        // Resolves a snapshot entry index to a kept local index.
        let resolve = |v: &Value| -> Result<Option<usize>, EngineError> {
            let raw: usize = de("artifact entry index", v)?;
            match remap.get(raw) {
                Some(mapped) => Ok(*mapped),
                None => Err(EngineError::Snapshot(format!(
                    "artifact references entry {raw}, but the snapshot has {} entries",
                    remap.len()
                ))),
            }
        };

        for bv in as_array(field(value, "betas")?, "betas")? {
            let Some(e) = resolve(field(bv, "entry")?)? else {
                continue;
            };
            let m = artifact_m(field(bv, "m")?, "beta cache size")?;
            let v: Vec<Rational> = de("beta vector", field(bv, "value")?)?;
            if v.len() != engine.entry(e).canonical.num_loops() {
                return Err(EngineError::Snapshot(
                    "beta vector length does not match its nest".into(),
                ));
            }
            let c = cost::betas(&v);
            engine.betas.insert(BetaKey { entry: e, m }, v, c);
        }

        for rv in as_array(field(value, "results")?, "results")? {
            let Some(e) = resolve(field(rv, "entry")?)? else {
                continue;
            };
            let o: usize = de("result orientation", field(rv, "orientation")?)?;
            if o >= engine.entry(e).orientations.len() {
                return Err(EngineError::Snapshot(
                    "result references an orientation the snapshot does not declare".into(),
                ));
            }
            let m = artifact_m(field(rv, "m")?, "result cache size")?;
            let kind: String = de("result kind", field(rv, "kind")?)?;
            let payload = field(rv, "value")?;
            let (kind, cached) = match kind.as_str() {
                "bound" => (
                    ResultKind::Bound,
                    CachedResult::Bound(de("lower bound", payload)?),
                ),
                "enumerated" => (
                    ResultKind::Enumerated,
                    CachedResult::Enumerated(de("enumerated bound", payload)?),
                ),
                "tiling" => (
                    ResultKind::Tiling,
                    CachedResult::Tiling(de("tiling summary", payload)?),
                ),
                "tightness" => (
                    ResultKind::Tightness,
                    CachedResult::Tightness(de("tightness report", payload)?),
                ),
                "certificate" => (
                    ResultKind::Certificate,
                    CachedResult::Certificate(de("certificate bit", payload)?),
                ),
                other => {
                    return Err(EngineError::Snapshot(format!(
                        "unknown result kind `{other}`"
                    )))
                }
            };
            // Payload shape checks: a hostile document can encode vectors
            // and subsets that do not fit the nest, which would panic deep
            // in the certificate re-check (`exponent_from_s_hat_with_betas`
            // indexes β by witness member, `is_feasible` by array) the first
            // time the cached artifact is consumed.
            let d = engine.entry(e).canonical.num_loops();
            let n = engine.entry(e).canonical.num_arrays();
            let in_range = |s: projtile_loopnest::IndexSet| s.iter().all(|j| j < d);
            match &cached {
                CachedResult::Bound(lb) => {
                    if lb.s_hat.len() != n || lb.zeta.len() != d {
                        return Err(EngineError::Snapshot(
                            "lower-bound certificate vectors do not match the nest".into(),
                        ));
                    }
                    if !in_range(lb.witness_subset) {
                        return Err(EngineError::Snapshot(
                            "lower-bound witness subset references loops the nest does not have"
                                .into(),
                        ));
                    }
                }
                CachedResult::Enumerated(en) => {
                    if !in_range(en.best_subset) || en.per_subset.iter().any(|(q, _)| !in_range(*q))
                    {
                        return Err(EngineError::Snapshot(
                            "enumerated-bound subsets reference loops the nest does not have"
                                .into(),
                        ));
                    }
                }
                CachedResult::Tiling(t) => {
                    if t.lambda.len() != d || t.tile_dims.len() != d {
                        return Err(EngineError::Snapshot(
                            "tiling summary dimensions do not match the nest".into(),
                        ));
                    }
                }
                CachedResult::Tightness(t) => {
                    if !in_range(t.witness_subset) {
                        return Err(EngineError::Snapshot(
                            "tightness witness subset references loops the nest does not have"
                                .into(),
                        ));
                    }
                }
                CachedResult::Certificate(_) => {}
            }
            let key = ResultKey {
                entry: e,
                orientation: o,
                m,
                kind,
            };
            let c = cost::result(&cached);
            engine.results.insert(key, cached, c);
        }

        for sv in as_array(field(value, "slices")?, "slices")? {
            let Some(e) = resolve(field(sv, "entry")?)? else {
                continue;
            };
            let m = artifact_m(field(sv, "m")?, "slice cache size")?;
            let axis: usize = de("slice axis", field(sv, "axis")?)?;
            if axis >= engine.entry(e).canonical.num_loops() {
                return Err(EngineError::Snapshot(
                    "slice axis out of range for its nest".into(),
                ));
            }
            let kind: String = de("slice kind", field(sv, "kind")?)?;
            let vf: ValueFunction = de("slice value function", field(sv, "value")?)?;
            if vf.breakpoints.is_empty() {
                return Err(EngineError::Snapshot("empty slice value function".into()));
            }
            // `value_at` brackets by scanning windows, which relies on the
            // breakpoints being sorted by θ; an unsorted hostile list would
            // trip its `unreachable!` the first time the slice is evaluated.
            let mut pairs = vf.breakpoints.iter().zip(vf.breakpoints.iter().skip(1));
            if pairs.any(|(a, b)| a.0 > b.0) {
                return Err(EngineError::Snapshot(
                    "slice value function breakpoints are not sorted".into(),
                ));
            }
            let (kind, entry) = match kind.as_str() {
                "span" => {
                    let lo_bound: u64 = de("slice lo", field(sv, "lo")?)?;
                    let hi_bound: u64 = de("slice hi", field(sv, "hi")?)?;
                    if lo_bound < 1 || hi_bound < lo_bound {
                        return Err(EngineError::Snapshot("slice bound range is invalid".into()));
                    }
                    (SliceKind::Span { lo_bound, hi_bound }, SliceEntry::Span(vf))
                }
                "probe" => {
                    let hi_bound: u64 = de("probe hi", field(sv, "hi")?)?;
                    if hi_bound < 1 {
                        return Err(EngineError::Snapshot(
                            "probe bound must be at least 1".into(),
                        ));
                    }
                    // A probe slice answers every bound in `1..=hi_bound` by
                    // evaluating at `θ = log_M bound` — its value function
                    // must actually span that interval, or `value_at` panics
                    // on a covered-looking request.
                    let hi_theta = projtile_arith::log::beta(hi_bound as u128, m as u128);
                    let (Some(first), Some(last)) = (vf.breakpoints.first(), vf.breakpoints.last())
                    else {
                        return Err(EngineError::Snapshot(
                            "empty probe slice value function".into(),
                        ));
                    };
                    let lo_covered = first.0 <= Rational::zero();
                    let hi_covered = last.0 >= hi_theta;
                    if !lo_covered || !hi_covered {
                        return Err(EngineError::Snapshot(
                            "probe slice does not cover its declared bound range".into(),
                        ));
                    }
                    (
                        SliceKind::Probe,
                        SliceEntry::Probe(PointSlice { hi_bound, vf }),
                    )
                }
                other => {
                    return Err(EngineError::Snapshot(format!(
                        "unknown slice kind `{other}`"
                    )))
                }
            };
            let key = SliceKey {
                entry: e,
                m,
                canon_axis: axis,
                kind,
            };
            let c = cost::slice_entry(&entry);
            engine.slices.insert(key, entry, c);
        }

        for sv in as_array(field(value, "surfaces")?, "surfaces")? {
            let Some(e) = resolve(field(sv, "entry")?)? else {
                continue;
            };
            let o: usize = de("surface orientation", field(sv, "orientation")?)?;
            if o >= engine.entry(e).orientations.len() {
                return Err(EngineError::Snapshot(
                    "surface references an orientation the snapshot does not declare".into(),
                ));
            }
            let m = artifact_m(field(sv, "m")?, "surface cache size")?;
            let surface: ExponentSurface = de("exponent surface", field(sv, "surface")?)?;
            // Cross-field shape checks the derives cannot express: the
            // summary render below and the axis-permutation remap on cache
            // hits both assert that every coordinate vector matches the
            // axis count.
            if let Err(msg) = surface.validate_shape() {
                return Err(EngineError::Snapshot(format!("exponent surface: {msg}")));
            }
            let axes = surface.axes().to_vec();
            let d = engine.entry(e).canonical.num_loops();
            let sorted = axes.iter().zip(axes.iter().skip(1)).all(|(a, b)| a < b);
            if axes.is_empty() || !sorted || axes.iter().any(|&a| a >= d) {
                return Err(EngineError::Snapshot(
                    "surface axes are not sorted in-range positions".into(),
                ));
            }
            if surface.surface().domain().dim() != axes.len() {
                return Err(EngineError::Snapshot(
                    "surface domain dimension does not match its axes".into(),
                ));
            }
            let lo_bounds: Vec<u64> = de("surface lo bounds", field(sv, "lo")?)?;
            let hi_bounds: Vec<u64> = de("surface hi bounds", field(sv, "hi")?)?;
            if lo_bounds.len() != axes.len()
                || hi_bounds.len() != axes.len()
                || lo_bounds
                    .iter()
                    .zip(&hi_bounds)
                    .any(|(lo, hi)| *lo < 1 || hi < lo)
            {
                return Err(EngineError::Snapshot(
                    "surface bound ranges are invalid".into(),
                ));
            }
            let summary = summarize_surface(&surface, &axes);
            let key = SurfaceKey {
                entry: e,
                orientation: o,
                m,
                axes,
                lo_bounds,
                hi_bounds,
            };
            let stored = StoredSurface { surface, summary };
            let c = cost::surface(&stored);
            engine.surfaces.insert(key, stored, c);
        }

        Ok(engine)
    }
}
