//! Query-trace recording for the cache policy lab.
//!
//! A [`TraceRecorder`] is a lock-free bounded event log inside
//! [`super::SharedEngine`]: every query the front answers appends one
//! [`TraceEvent`] carrying exactly the identity the memo caches key by
//! (hashed, not the payloads), the per-entry cost estimates a miss
//! installed, and how the live front resolved it. The log is drained as a
//! [`TraceDocument`] — a compact flat-vector serialization through the
//! workspace serde layer — which `projtile_lab` replays through candidate
//! cache policies. Replaying a document through the lab's exact-LRU
//! simulator at the recorded budgets reproduces the live front's hit/miss
//! counts event-for-event (the keystone differential of the lab's tests
//! and the ci.sh smoke stage).
//!
//! # Recording overhead
//!
//! The recorder is append-only and wait-free on the query path: a batch
//! reserves a contiguous slot range with one `fetch_add` and writes each
//! event into its own `OnceLock` slot, so recording never takes a lock and
//! never blocks a concurrent drain. With capacity 0 (the default) the
//! recorder is disabled and the query path skips event construction
//! entirely. Once the buffer is full, further events are counted in
//! [`TraceDocument::dropped`] rather than recorded — a truncated trace is
//! still exactly replayable up to the point it stopped.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use serde::{json, Value};

use super::EngineConfig;

/// Version stamp of the serialized trace document format.
pub const TRACE_VERSION: u32 = 1;

/// Integer header fields per serialized event (`costs` values follow).
const EVENT_HEADER: usize = 10;

/// Upper bound on per-event cost counts accepted by the parser (a
/// tightness miss installs five artifacts; nothing installs more). Rejects
/// hostile documents instead of over-reading the flat vector.
const MAX_COSTS: usize = 8;

/// How the live [`super::SharedEngine`] resolved one recorded query.
/// Stored as the `outcome` byte of a [`TraceEvent`].
pub mod outcome {
    /// Served from a memoized artifact under the shard's read lock.
    pub const HIT: u8 = 0;
    /// Computed, then installed under the shard's write lock. The event
    /// carries the per-entry cost estimates of everything installed.
    pub const MISS: u8 = 1;
    /// A duplicate literal occurrence of a pending query within one batch:
    /// the front counts it neither as a hit nor as a miss.
    pub const DUPLICATE: u8 = 2;
    /// A miss whose computation failed: counted as a miss, but nothing was
    /// installed (the batch still interned the nest's orientation).
    pub const FAILED: u8 = 3;
    /// A miss whose computation failed in a single `analyze` call: counted
    /// as a miss, nothing installed, and the orientation was *not*
    /// interned (the error returned before the write lock).
    pub const FAILED_NO_INTERN: u8 = 4;
}

/// One recorded query against the shared front. Identity is hashed — the
/// trace carries exactly what the memo caches key by, never nest or result
/// payloads — so documents stay compact and replay needs no solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global append position (assigned by the recorder; events with equal
    /// `batch` are contiguous and in intra-batch input order).
    pub ordinal: u64,
    /// Which `analyze`/`analyze_batch` call produced this event (one id per
    /// call). Replay regroups events by this id: a batch probes all its
    /// queries before installing any of them.
    pub batch: u64,
    /// Hash of the nest's canonical [`projtile_loopnest::NestSignature`]
    /// (pre-modulo: the live shard is `sig % num_shards`).
    pub sig: u64,
    /// Hash of `(sig, loop permutation, array permutation)` — the nest's
    /// declaration order. Orientation-keyed caches miss until a batch of
    /// this orientation has interned it.
    pub orient: u64,
    /// [`super::query_kind_index`] of the query.
    pub kind: u8,
    /// The queried fast-memory size `M`.
    pub m: u64,
    /// Hash of the literal query, for intra-batch duplicate accounting.
    pub lhash: u64,
    /// Hash of the query's cache-canonical identity: which memoized entry
    /// (per kind) answers it. Permuted-axes surface twins share a family.
    pub fam: u64,
    /// An [`outcome`] constant.
    pub outcome: u8,
    /// Cost estimates of the entries a miss installed, in install order
    /// (five for a tightness miss — tiling, bound, enumerated, certificate,
    /// then the report — one otherwise; empty unless `outcome` is
    /// [`outcome::MISS`]).
    pub costs: Vec<u64>,
}

/// A lock-free bounded append-only event log (see the module docs above).
#[derive(Debug)]
pub struct TraceRecorder {
    slots: Vec<OnceLock<TraceEvent>>,
    cursor: AtomicU64,
    batches: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRecorder {
    /// A disabled recorder (capacity 0): recording is a no-op and callers
    /// should skip event construction ([`TraceRecorder::enabled`]).
    pub fn disabled() -> TraceRecorder {
        TraceRecorder::with_capacity(0)
    }

    /// A recorder retaining up to `capacity` events; later events are
    /// dropped (and counted) once full.
    pub fn with_capacity(capacity: usize) -> TraceRecorder {
        TraceRecorder {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            cursor: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// `false` for a capacity-0 recorder: skip building events entirely.
    pub fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Reserves the next batch id (one per `analyze`/`analyze_batch` call).
    pub fn next_batch(&self) -> u64 {
        self.batches.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends one call's events contiguously (one `fetch_add` reserves the
    /// whole range). Events past capacity are dropped and counted; each
    /// recorded event's `ordinal` is overwritten with its global slot.
    pub fn record(&self, events: Vec<TraceEvent>) {
        if events.is_empty() {
            return;
        }
        let start = self
            .cursor
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        for (i, mut ev) in events.into_iter().enumerate() {
            let slot = start + i as u64;
            if let Some(cell) = self.slots.get(slot as usize) {
                ev.ordinal = slot;
                // Each slot is reserved by exactly one reservation, so the
                // set cannot race; ignore the (impossible) second set.
                let _ = cell.set(ev);
            } else {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The fully-written prefix of the log, in append order. Stops at the
    /// first slot a concurrent writer has reserved but not yet filled, so a
    /// drain racing live traffic still returns a consistent prefix.
    pub fn events(&self) -> Vec<TraceEvent> {
        let end = (self.cursor.load(Ordering::Acquire) as usize).min(self.slots.len());
        let mut out = Vec::with_capacity(end);
        for slot in self.slots.iter().take(end) {
            match slot.get() {
                Some(ev) => out.push(ev.clone()),
                None => break,
            }
        }
        out
    }
}

/// A drained trace: everything the lab needs to replay the recorded
/// traffic through a simulated cache hierarchy at the live geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDocument {
    /// Format version ([`TRACE_VERSION`]).
    pub version: u32,
    /// Shard count of the recording front (`sig % num_shards` routes).
    pub num_shards: u32,
    /// The **per-shard** cache budgets of the recording front (already
    /// divided across shards, unlike the front-wide `EngineConfig` a
    /// caller passes to `SharedEngine::with_config`).
    pub shard_config: EngineConfig,
    /// Queries answered since the recorder was attached (includes invalid
    /// queries, which are rejected before reaching any cache and are never
    /// recorded as events).
    pub queries: u64,
    /// Cache hits since the recorder was attached.
    pub hits: u64,
    /// Cache misses since the recorder was attached.
    pub misses: u64,
    /// Events dropped after the recorder filled.
    pub dropped: u64,
    /// Cache entries already resident when the recorder was attached. A
    /// replay can only reproduce live counts exactly from a cold start, so
    /// differential checks refuse documents with a warm prefix.
    pub warm_entries: u64,
    /// The recorded events, in append order.
    pub events: Vec<TraceEvent>,
}

impl TraceDocument {
    /// Serializes through the workspace serde layer. Events are packed as
    /// one flat integer vector (`EVENT_HEADER` fields then the costs, per
    /// event) rather than an array of objects, keeping large traces
    /// compact on the wire.
    pub fn to_value(&self) -> Value {
        let mut flat: Vec<Value> = Vec::with_capacity(self.events.len() * (EVENT_HEADER + 1));
        for ev in &self.events {
            flat.push(Value::Int(ev.ordinal as i128));
            flat.push(Value::Int(ev.batch as i128));
            flat.push(Value::Int(ev.sig as i128));
            flat.push(Value::Int(ev.orient as i128));
            flat.push(Value::Int(ev.kind as i128));
            flat.push(Value::Int(ev.m as i128));
            flat.push(Value::Int(ev.lhash as i128));
            flat.push(Value::Int(ev.fam as i128));
            flat.push(Value::Int(ev.outcome as i128));
            flat.push(Value::Int(ev.costs.len() as i128));
            for &c in &ev.costs {
                flat.push(Value::Int(c as i128));
            }
        }
        Value::Object(vec![
            ("version".to_string(), Value::Int(self.version as i128)),
            (
                "num_shards".to_string(),
                Value::Int(self.num_shards as i128),
            ),
            (
                "shard_config".to_string(),
                Value::Object(vec![
                    (
                        "results_capacity".to_string(),
                        Value::Int(self.shard_config.results_capacity as i128),
                    ),
                    (
                        "betas_capacity".to_string(),
                        Value::Int(self.shard_config.betas_capacity as i128),
                    ),
                    (
                        "slices_capacity".to_string(),
                        Value::Int(self.shard_config.slices_capacity as i128),
                    ),
                    (
                        "surfaces_capacity".to_string(),
                        Value::Int(self.shard_config.surfaces_capacity as i128),
                    ),
                ]),
            ),
            ("queries".to_string(), Value::Int(self.queries as i128)),
            ("hits".to_string(), Value::Int(self.hits as i128)),
            ("misses".to_string(), Value::Int(self.misses as i128)),
            ("dropped".to_string(), Value::Int(self.dropped as i128)),
            (
                "warm_entries".to_string(),
                Value::Int(self.warm_entries as i128),
            ),
            ("events".to_string(), Value::Array(flat)),
        ])
    }

    /// [`TraceDocument::to_value`] printed as compact JSON.
    pub fn to_json(&self) -> String {
        json::to_string(&self.to_value())
    }

    /// Parses a serialized trace. Rejects version skew, truncated or torn
    /// flat vectors, out-of-range integers and type confusion with typed
    /// [`TraceError`]s; never panics on hostile input.
    pub fn from_value(value: &Value) -> Result<TraceDocument, TraceError> {
        let version = read_u64(value, "version")?;
        if version != TRACE_VERSION as u64 {
            return Err(TraceError::Version(version));
        }
        let num_shards = read_u64(value, "num_shards")?;
        if num_shards == 0 || num_shards > u32::MAX as u64 {
            return Err(TraceError::Malformed(format!(
                "shard count {num_shards} out of range"
            )));
        }
        let config = value
            .field("shard_config")
            .map_err(|e| TraceError::Malformed(e.to_string()))?;
        let shard_config = EngineConfig {
            results_capacity: read_u64(config, "results_capacity")?,
            betas_capacity: read_u64(config, "betas_capacity")?,
            slices_capacity: read_u64(config, "slices_capacity")?,
            surfaces_capacity: read_u64(config, "surfaces_capacity")?,
        };
        let flat = match value
            .field("events")
            .map_err(|e| TraceError::Malformed(e.to_string()))?
        {
            Value::Array(items) => items,
            other => {
                return Err(TraceError::Malformed(format!(
                    "expected an array of event integers, found {}",
                    other.kind()
                )))
            }
        };
        let mut events = Vec::new();
        let mut at = 0usize;
        while at < flat.len() {
            if flat.len() - at < EVENT_HEADER {
                return Err(TraceError::Malformed(format!(
                    "torn event header at offset {at}: {} of {EVENT_HEADER} fields",
                    flat.len() - at
                )));
            }
            let ordinal = uint_at(flat, at, "ordinal")?;
            let batch = uint_at(flat, at + 1, "batch")?;
            let sig = uint_at(flat, at + 2, "sig")?;
            let orient = uint_at(flat, at + 3, "orient")?;
            let kind = uint_at(flat, at + 4, "kind")?;
            let m = uint_at(flat, at + 5, "m")?;
            let lhash = uint_at(flat, at + 6, "lhash")?;
            let fam = uint_at(flat, at + 7, "fam")?;
            let oc = uint_at(flat, at + 8, "outcome")?;
            let ncosts = uint_at(flat, at + 9, "ncosts")?;
            if kind >= super::QUERY_KIND_COUNT as u64 {
                return Err(TraceError::Malformed(format!(
                    "event kind {kind} out of range at offset {at}"
                )));
            }
            if oc > outcome::FAILED_NO_INTERN as u64 {
                return Err(TraceError::Malformed(format!(
                    "event outcome {oc} out of range at offset {at}"
                )));
            }
            if ncosts > MAX_COSTS as u64 {
                return Err(TraceError::Malformed(format!(
                    "implausible cost count {ncosts} at offset {at}"
                )));
            }
            let ncosts = ncosts as usize;
            at += EVENT_HEADER;
            if flat.len() - at < ncosts {
                return Err(TraceError::Malformed(format!(
                    "torn cost vector at offset {at}: {} of {ncosts} values",
                    flat.len() - at
                )));
            }
            let mut costs = Vec::with_capacity(ncosts);
            for i in 0..ncosts {
                costs.push(uint_at(flat, at + i, "cost")?);
            }
            at += ncosts;
            events.push(TraceEvent {
                ordinal,
                batch,
                sig,
                orient,
                kind: kind as u8,
                m,
                lhash,
                fam,
                outcome: oc as u8,
                costs,
            });
        }
        Ok(TraceDocument {
            version: TRACE_VERSION,
            num_shards: num_shards as u32,
            shard_config,
            queries: read_u64(value, "queries")?,
            hits: read_u64(value, "hits")?,
            misses: read_u64(value, "misses")?,
            dropped: read_u64(value, "dropped")?,
            warm_entries: read_u64(value, "warm_entries")?,
            events,
        })
    }

    /// Parses a trace from JSON text ([`TraceDocument::from_value`]).
    pub fn from_json(text: &str) -> Result<TraceDocument, TraceError> {
        let value =
            json::parse(text).map_err(|e| TraceError::Malformed(format!("trace JSON: {e}")))?;
        TraceDocument::from_value(&value)
    }
}

fn read_u64(value: &Value, name: &str) -> Result<u64, TraceError> {
    let field = value
        .field(name)
        .map_err(|e| TraceError::Malformed(e.to_string()))?;
    as_u64(field).map_err(|got| {
        TraceError::Malformed(format!("field `{name}` must be an unsigned integer, {got}"))
    })
}

fn uint_at(flat: &[Value], at: usize, what: &str) -> Result<u64, TraceError> {
    let v = flat.get(at).ok_or_else(|| {
        TraceError::Malformed(format!("event vector ends before {what} at offset {at}"))
    })?;
    as_u64(v).map_err(|got| {
        TraceError::Malformed(format!(
            "event {what} at offset {at} must be unsigned, {got}"
        ))
    })
}

/// `Ok(n)` for an in-range non-negative integer, `Err(description)` of
/// what was found otherwise.
fn as_u64(v: &Value) -> Result<u64, String> {
    match v {
        Value::Int(i) => u64::try_from(*i).map_err(|_| format!("found out-of-range {i}")),
        other => Err(format!("found {}", other.kind())),
    }
}

/// Why a serialized trace was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The document declares an unsupported format version.
    Version(u64),
    /// The document is structurally invalid: missing or mistyped fields, a
    /// torn or truncated event vector, or out-of-range values.
    Malformed(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Version(found) => write!(
                f,
                "unsupported trace version {found} (expected {TRACE_VERSION})"
            ),
            TraceError::Malformed(msg) => write!(f, "malformed trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(ordinal: u64, costs: Vec<u64>) -> TraceEvent {
        TraceEvent {
            ordinal,
            batch: ordinal / 2,
            sig: 11 * ordinal + 3,
            orient: 13 * ordinal + 5,
            kind: (ordinal % 6) as u8,
            m: 1 << 10,
            lhash: 17 * ordinal + 7,
            fam: 19 * ordinal + 9,
            outcome: if costs.is_empty() {
                outcome::HIT
            } else {
                outcome::MISS
            },
            costs,
        }
    }

    #[test]
    fn recorder_is_bounded_and_counts_drops() {
        let rec = TraceRecorder::with_capacity(3);
        assert!(rec.enabled());
        rec.record(vec![event(0, vec![]), event(0, vec![100])]);
        rec.record(vec![event(0, vec![]), event(0, vec![])]);
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.dropped(), 1);
        // Ordinals are rewritten to global slots.
        assert_eq!(
            events.iter().map(|e| e.ordinal).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = TraceRecorder::disabled();
        assert!(!rec.enabled());
        rec.record(vec![event(0, vec![])]);
        assert!(rec.events().is_empty());
        assert_eq!(rec.dropped(), 1);
    }

    #[test]
    fn document_round_trips_through_json() {
        let doc = TraceDocument {
            version: TRACE_VERSION,
            num_shards: 4,
            shard_config: EngineConfig {
                results_capacity: 175,
                betas_capacity: 50,
                slices_capacity: 225,
                surfaces_capacity: 500,
            },
            queries: 7,
            hits: 3,
            misses: 3,
            dropped: 0,
            warm_entries: 0,
            events: vec![
                event(0, vec![]),
                event(1, vec![456]),
                event(2, vec![1, 2, 3, 4, 5]),
            ],
        };
        let parsed = TraceDocument::from_json(&doc.to_json()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn version_skew_is_a_typed_error() {
        let mut doc = TraceDocument {
            version: TRACE_VERSION,
            num_shards: 1,
            shard_config: EngineConfig::default(),
            queries: 0,
            hits: 0,
            misses: 0,
            dropped: 0,
            warm_entries: 0,
            events: vec![],
        };
        doc.version = TRACE_VERSION + 1;
        match TraceDocument::from_json(&doc.to_json()) {
            Err(TraceError::Version(v)) => assert_eq!(v, (TRACE_VERSION + 1) as u64),
            other => panic!("expected a version error, got {other:?}"),
        }
    }
}
