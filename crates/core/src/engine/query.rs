//! Typed queries and wire-ready results for the [`crate::engine::Engine`].

use projtile_arith::Rational;
use projtile_lp::mplp::AffinePiece;
use projtile_lp::parametric::ValueFunction;
use projtile_lp::LpError;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::bounds::{EnumeratedBound, LowerBound};
use crate::tightness::TightnessReport;

/// One analysis request against a loop nest. Every variant names the fast
/// memory size it is answered for; positions (`axis`, `axes`) refer to the
/// queried nest's own loop order.
///
/// Queries are plain serializable data, so a service front-end can accept
/// them off the wire and feed them to [`crate::engine::Engine::analyze_batch`]
/// unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Query {
    /// The strongest Theorem-2 exponent and communication lower bound, with
    /// its `(Q*, ŝ, ζ)` certificate (§4). Answered like
    /// [`crate::bounds::arbitrary_bound_exponent`].
    LowerBound {
        /// Fast-memory size `M` in words.
        cache_size: u64,
    },
    /// The paper's explicit `2^d` subset enumeration (§4). Answered like
    /// [`crate::bounds::enumerated_exponent`].
    EnumeratedBound {
        /// Fast-memory size `M` in words.
        cache_size: u64,
    },
    /// The optimal rectangular tiling from LP (5.1) (§5), as log-space
    /// exponents plus concrete integer tile edge lengths. Answered like
    /// [`crate::tiling_lp::optimal_tiling`].
    OptimalTiling {
        /// Fast-memory size `M` in words.
        cache_size: u64,
    },
    /// The executable Theorem-3 check (§5). Answered like
    /// [`crate::tightness::check_tightness`].
    Tightness {
        /// Fast-memory size `M` in words.
        cache_size: u64,
    },
    /// The multiparametric §7 exponent surface over a box of loop bounds.
    /// Answered like [`crate::parametric::exponent_surface`]; the full
    /// surface object is additionally memoized inside the engine (retrieve it
    /// via [`crate::engine::Engine::exponent_surface`]).
    Surface {
        /// Fast-memory size `M` in words.
        cache_size: u64,
        /// Swept loop positions (in the queried nest's order).
        axes: Vec<usize>,
        /// Per-axis lower loop bounds (≥ 1).
        lo_bounds: Vec<u64>,
        /// Per-axis upper loop bounds (≥ the matching lower bound).
        hi_bounds: Vec<u64>,
    },
    /// The one-dimensional §7 value function along one loop axis, all other
    /// bounds held at the queried nest's values. Answered like
    /// [`crate::parametric::exponent_vs_beta`].
    Slice {
        /// Fast-memory size `M` in words.
        cache_size: u64,
        /// Swept loop position (in the queried nest's order).
        axis: usize,
        /// Lower loop bound of the sweep (≥ 1).
        lo_bound: u64,
        /// Upper loop bound of the sweep (≥ `lo_bound`).
        hi_bound: u64,
    },
}

impl Query {
    /// The fast-memory size this query is answered for.
    pub fn cache_size(&self) -> u64 {
        match self {
            Query::LowerBound { cache_size }
            | Query::EnumeratedBound { cache_size }
            | Query::OptimalTiling { cache_size }
            | Query::Tightness { cache_size }
            | Query::Surface { cache_size, .. }
            | Query::Slice { cache_size, .. } => *cache_size,
        }
    }
}

/// Number of [`Query`] kinds (the length of [`QUERY_KIND_NAMES`]).
pub const QUERY_KIND_COUNT: usize = 6;

/// Stable wire names of the [`Query`] kinds, indexed by
/// [`query_kind_index`]. The service `/metrics` endpoint and the trace
/// documents of the cache policy lab both key per-kind counters by these
/// positions, so the order is part of the wire contract.
pub const QUERY_KIND_NAMES: [&str; QUERY_KIND_COUNT] = [
    "lower_bound",
    "enumerated_bound",
    "optimal_tiling",
    "tightness",
    "surface",
    "slice",
];

/// The stable position of `query`'s kind in [`QUERY_KIND_NAMES`].
pub fn query_kind_index(query: &Query) -> usize {
    match query {
        Query::LowerBound { .. } => 0,
        Query::EnumeratedBound { .. } => 1,
        Query::OptimalTiling { .. } => 2,
        Query::Tightness { .. } => 3,
        Query::Surface { .. } => 4,
        Query::Slice { .. } => 5,
    }
}

/// Hit/miss counters for one [`Query`] kind, as reported per kind by
/// [`crate::engine::Engine::cache_metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindCounters {
    /// Queries of this kind answered from a memoized result.
    pub hits: u64,
    /// Queries of this kind that had to compute.
    pub misses: u64,
}

/// The optimal tiling of LP (5.1) in wire-ready form: the log-space solution
/// plus the concrete integer tile. Carries exactly the data
/// [`crate::tiling_lp::optimal_tiling`] derives, minus the embedded nest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilingSummary {
    /// Optimal block exponents `λ_1..λ_d` (`b_i = M^{λ_i}`).
    pub lambda: Vec<Rational>,
    /// Optimal value `Σ λ_i` — the log (base `M`) of the tile cardinality.
    pub value: Rational,
    /// Concrete tile edge lengths `⌊M^{λ_i}⌋`, clamped to `[1, L_i]`.
    pub tile_dims: Vec<u64>,
}

/// A wire-ready digest of an [`crate::parametric::ExponentSurface`]: the
/// critical-region count and the distinct closed-form pieces, exact and
/// rendered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurfaceSummary {
    /// The swept loop positions (in the queried nest's order).
    pub axes: Vec<usize>,
    /// Number of critical regions of the decomposition.
    pub num_regions: usize,
    /// The distinct affine pieces `f(β) = c·β + k`, exact rationals.
    pub pieces: Vec<AffinePiece>,
    /// The pieces rendered over `β{name}` labels, e.g. `"1 + βk"`.
    pub rendered: Vec<String>,
}

/// A typed, serde-serializable answer to one [`Query`]. The variant always
/// matches the query variant; all payloads are bitwise-identical to what the
/// corresponding free function computes on the same nest (pinned by the
/// engine's differential tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnalysisResult {
    /// Answer to [`Query::LowerBound`].
    LowerBound(LowerBound),
    /// Answer to [`Query::EnumeratedBound`].
    EnumeratedBound(EnumeratedBound),
    /// Answer to [`Query::OptimalTiling`].
    OptimalTiling(TilingSummary),
    /// Answer to [`Query::Tightness`].
    Tightness(TightnessReport),
    /// Answer to [`Query::Surface`].
    Surface(SurfaceSummary),
    /// Answer to [`Query::Slice`].
    Slice(ValueFunction),
}

/// Why the engine rejected or failed a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query is malformed for the nest it was asked about (bad axis,
    /// empty bound range, cache size below 2, nest too deep to enumerate).
    /// The free functions assert the same conditions; the engine reports them
    /// as errors so a service front-end can reject bad requests gracefully.
    InvalidQuery(String),
    /// The underlying LP solver failed (does not happen for well-formed
    /// projective programs; surfaced rather than unwrapped).
    Lp(LpError),
    /// A session snapshot could not be restored (version mismatch, corrupt
    /// or truncated document, out-of-range indices).
    Snapshot(String),
    /// An engine-internal invariant did not hold (a memoized artifact
    /// vanished between being ensured and being read, or a detached batch
    /// result did not match its query's variant). Never expected in normal
    /// operation; reported as a typed error instead of unwinding so the
    /// service's no-panic surface survives even an engine bug.
    Internal(&'static str),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            EngineError::Lp(e) => write!(f, "lp error: {e}"),
            EngineError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            EngineError::Internal(msg) => write!(f, "internal engine invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<LpError> for EngineError {
    fn from(e: LpError) -> EngineError {
        EngineError::Lp(e)
    }
}
