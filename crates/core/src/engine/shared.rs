//! The thread-safe service front: a [`SharedEngine`] sharding session state
//! by canonical nest signature.
//!
//! # Concurrency model
//!
//! * **Sharding.** Each interned nest lives in exactly one shard (chosen by
//!   hashing its permutation-invariant [`NestSignature`]), and each shard is
//!   an independent [`Engine`] behind a `parking_lot` reader-writer lock.
//!   Traffic on distinct nests contends only when the nests hash to the same
//!   shard.
//! * **Lock-free read path for hits.** A cache hit takes only the shard's
//!   *shared* read lock: the memoized answer is read through
//!   [`projtile_cachesim::BoundedLru::peek`], which records recency in
//!   per-entry atomic stamps rather than re-threading the LRU list, so
//!   concurrent hits on one shard proceed in parallel and never queue behind
//!   a writer (the stamps are folded into the eviction order by the next
//!   exclusive operation).
//! * **Compute outside the locks.** A miss computes with the stateless
//!   free-function paths (identical bitwise to the memoizing paths) using a
//!   solver context checked out of the front's shared
//!   [`projtile_lp::ContextPool`] — one context per worker, so concurrent
//!   `analyze_batch` calls from many threads never serialize on one warm
//!   tableau — and only then takes the shard's write lock, briefly, to
//!   intern and install. Two threads racing on the same query compute the
//!   same bitwise value; the loser's install is an idempotent overwrite.
//!
//! Answers are bitwise-identical to a single-threaded [`Engine`] and to the
//! cold free functions, under any interleaving and any eviction pressure —
//! pinned by the multi-threaded differential proptests.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use projtile_loopnest::{canonicalize, CanonicalNest, LoopNest, NestSignature};
use projtile_lp::ContextPool;
use projtile_par::par_map_with;
use serde::{json, Value};

use super::snapshot::SNAPSHOT_VERSION;
use super::trace::{outcome, TraceDocument, TraceEvent, TraceRecorder, TRACE_VERSION};
use super::{
    compute_detached, query_kind_index, validate_query, AnalysisResult, CacheMetrics, Engine,
    EngineConfig, EngineError, EngineStats, Query, QUERY_KIND_COUNT,
};

/// A thread-safe, sharded analysis service front. Create once, share by
/// reference (`&SharedEngine` is `Send + Sync`) across worker threads.
///
/// ```
/// use projtile_core::engine::{AnalysisResult, Query, SharedEngine};
/// use projtile_loopnest::builders;
///
/// let shared = SharedEngine::new();
/// let nest = builders::matmul(512, 512, 8);
/// let query = Query::Tightness { cache_size: 1 << 10 };
/// // Concurrent callers share one session; repeats are read-lock hits.
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         scope.spawn(|| shared.analyze(&nest, &query).unwrap());
///     }
/// });
/// assert_eq!(shared.stats().interned, 1);
/// match shared.analyze(&nest, &query).unwrap() {
///     AnalysisResult::Tightness(report) => assert!(report.tight),
///     other => panic!("unexpected result {other:?}"),
/// }
/// ```
pub struct SharedEngine {
    shards: Vec<RwLock<Engine>>,
    pool: ContextPool,
    queries: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    kind_hits: [AtomicU64; QUERY_KIND_COUNT],
    kind_misses: [AtomicU64; QUERY_KIND_COUNT],
    recorder: TraceRecorder,
    /// Front-wide counters at the moment the recorder was attached, so the
    /// drained document reports stats covering exactly the recorded window.
    trace_base: EngineStats,
    /// Cache entries resident when the recorder was attached (non-zero for
    /// a snapshot-restored front; differential replays refuse warm traces).
    trace_warm_entries: u64,
}

impl Default for SharedEngine {
    fn default() -> SharedEngine {
        SharedEngine::new()
    }
}

impl std::fmt::Debug for SharedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedEngine")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Default shard count: enough to keep `PROJTILE_THREADS` workers off each
/// other's locks, capped so idle shards stay cheap.
fn default_shards() -> usize {
    projtile_par::num_threads().clamp(1, 16).next_power_of_two()
}

impl SharedEngine {
    /// Creates a front with default cache budgets and shard count.
    pub fn new() -> SharedEngine {
        SharedEngine::with_config(EngineConfig::default(), default_shards())
    }

    /// Creates a front with explicit cache budgets and shard count. The
    /// budgets are **divided evenly across shards** (rounding up, so a
    /// small budget is never silently zeroed; the front may retain up to
    /// `shards - 1` cost units more than requested per cache). `config`
    /// therefore describes the whole front's retention, not one shard's.
    pub fn with_config(config: EngineConfig, num_shards: usize) -> SharedEngine {
        let n = num_shards.max(1) as u64;
        let per_shard = EngineConfig {
            results_capacity: config.results_capacity.div_ceil(n),
            betas_capacity: config.betas_capacity.div_ceil(n),
            slices_capacity: config.slices_capacity.div_ceil(n),
            surfaces_capacity: config.surfaces_capacity.div_ceil(n),
        };
        let n = n as usize;
        SharedEngine {
            shards: (0..n)
                .map(|_| RwLock::new(Engine::with_config(per_shard)))
                .collect(),
            pool: ContextPool::new(),
            queries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            kind_hits: std::array::from_fn(|_| AtomicU64::new(0)),
            kind_misses: std::array::from_fn(|_| AtomicU64::new(0)),
            recorder: TraceRecorder::disabled(),
            trace_base: EngineStats::default(),
            trace_warm_entries: 0,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Counters for this front's lifetime, aggregated across shards.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            interned: self
                .shards
                .iter()
                .map(|s| s.read().num_interned() as u64)
                .sum(),
        }
    }

    /// Cache occupancy and eviction counters, summed across shards, plus
    /// per-query-kind hit/miss counters. The front resolves queries itself
    /// (peek + install), so its shard engines' own kind counters stay zero
    /// and the per-kind totals come from the front's atomics.
    pub fn cache_metrics(&self) -> CacheMetrics {
        let mut total = CacheMetrics::default();
        for shard in &self.shards {
            // Engine::cache_metrics only reads its own caches; the edge into
            // SharedEngine::stats is a same-name dispatch over-approximation.
            // lint: allow(L009) Engine::cache_metrics reads shard-local caches only
            let m = shard.read().cache_metrics();
            for (acc, part) in [
                (&mut total.betas, m.betas),
                (&mut total.results, m.results),
                (&mut total.slices, m.slices),
                (&mut total.surfaces, m.surfaces),
            ] {
                acc.entries += part.entries;
                acc.cost += part.cost;
                acc.capacity += part.capacity;
                acc.evictions += part.evictions;
            }
            for (acc, part) in total.kinds.iter_mut().zip(m.kinds) {
                acc.hits += part.hits;
                acc.misses += part.misses;
            }
        }
        for ((acc, hits), misses) in total
            .kinds
            .iter_mut()
            .zip(&self.kind_hits)
            .zip(&self.kind_misses)
        {
            acc.hits += hits.load(Ordering::Relaxed);
            acc.misses += misses.load(Ordering::Relaxed);
        }
        total
    }

    // -----------------------------------------------------------------------
    // Trace recording (the cache policy lab's input)
    // -----------------------------------------------------------------------

    /// Attaches a bounded lock-free trace recorder retaining up to
    /// `capacity` events (0 disables recording and removes all overhead
    /// from the query path). Takes `&mut self`, so recording is wired
    /// before the front is shared — the service does this at boot, driven
    /// by `--trace-capacity` / `PROJTILE_TRACE_CAPACITY`.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.recorder = TraceRecorder::with_capacity(capacity);
        self.trace_base = self.stats();
        let m = self.cache_metrics();
        self.trace_warm_entries = (m.betas.entries + m.results.entries)
            .saturating_add(m.slices.entries + m.surfaces.entries)
            as u64;
    }

    /// `true` iff a non-zero-capacity recorder is attached.
    pub fn trace_enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Drains the recorded trace (without resetting it) as a
    /// [`TraceDocument`]: the recorded events plus the front geometry
    /// (shard count, per-shard budgets) and the hit/miss counters covering
    /// the recorded window — everything the lab's differential replay
    /// needs to reproduce the live accounting.
    pub fn trace_document(&self) -> TraceDocument {
        let stats = self.stats();
        let shard_config = self
            .shards
            .first()
            .map(|s| s.read().config())
            .unwrap_or_default();
        TraceDocument {
            version: TRACE_VERSION,
            num_shards: self.shards.len() as u32,
            shard_config,
            queries: stats.queries.saturating_sub(self.trace_base.queries),
            hits: stats.hits.saturating_sub(self.trace_base.hits),
            misses: stats.misses.saturating_sub(self.trace_base.misses),
            dropped: self.recorder.dropped(),
            warm_entries: self.trace_warm_entries,
            events: self.recorder.events(),
        }
    }

    fn shard_of(&self, sig: &NestSignature) -> usize {
        self.shard_index(hash_u64(sig))
    }

    /// Routes a signature hash to its home shard's index. `shards` is
    /// non-empty for every constructed front, and `checked_rem` keeps the
    /// arithmetic total even if it were not.
    fn shard_index(&self, hash: u64) -> usize {
        hash.checked_rem(self.shards.len() as u64).unwrap_or(0) as usize
    }

    /// The shard lock routed to by `hash`.
    fn shard(&self, hash: u64) -> &RwLock<Engine> {
        // lint: allow(L008) shard_index is always < shards.len() (checked_rem) and shards is non-empty by construction
        &self.shards[self.shard_index(hash)]
    }

    /// Answers one typed query about `nest`. Hits are served under the
    /// shard's read lock; misses compute outside any lock and install under
    /// a brief write lock. Answers are bitwise-identical to
    /// [`Engine::analyze`] on a private session.
    pub fn analyze(&self, nest: &LoopNest, query: &Query) -> Result<AnalysisResult, EngineError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        validate_query(nest, query)?;
        let canon = canonicalize(nest);
        let sig_hash = hash_u64(&canon.signature());
        let shard = self.shard(sig_hash);
        let kind = query_kind_index(query);
        // Build the hashed trace identity before `canon` is consumed by
        // interning; with recording disabled this is skipped entirely.
        let traced = self.recorder.enabled().then(|| {
            let orient = orientation_hash(sig_hash, &canon);
            (
                orient,
                hash_u64(query),
                family_hash(sig_hash, orient, &canon, query),
            )
        });
        {
            let engine = shard.read();
            if let Some((e, o)) = engine.find_indices(&canon) {
                if let Some(result) = engine.peek_cached(e, o, query) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    bump(&self.kind_hits, kind);
                    if let Some(id) = traced {
                        self.record_single(sig_hash, id, query, outcome::HIT, Vec::new());
                    }
                    return Ok(result);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        bump(&self.kind_misses, kind);
        // Compute with no lock held: the detached path is bitwise-identical
        // to the memoizing path (both bottom out in path-independent
        // solves), so racing threads install interchangeable values.
        let detached = {
            let mut ctx = self.pool.checkout();
            compute_detached(
                nest,
                canon.nest(),
                canon.loop_permutation(),
                query,
                &mut ctx,
            )
        };
        let detached = match detached {
            Ok(d) => d,
            Err(err) => {
                // Counted as a miss but nothing interned or installed: the
                // replay must not intern the orientation either.
                if let Some(id) = traced {
                    self.record_single(sig_hash, id, query, outcome::FAILED_NO_INTERN, Vec::new());
                }
                return Err(err);
            }
        };
        let costs = if traced.is_some() {
            super::detached_costs(&detached)
        } else {
            Vec::new()
        };
        let result = {
            let mut engine = shard.write();
            let (e, o) = engine.intern_with(nest, canon);
            // `install` hands back the caller-facing result directly, so the
            // write lock is held only for the cache insertions — no
            // re-lookup, no surface re-remap under the lock.
            engine.install(e, o, query, detached)
        };
        if let Some(id) = traced {
            match &result {
                Ok(_) => self.record_single(sig_hash, id, query, outcome::MISS, costs),
                Err(_) => self.record_single(sig_hash, id, query, outcome::FAILED, Vec::new()),
            }
        }
        result
    }

    /// Records the lone event of a single-query call (its own batch).
    fn record_single(
        &self,
        sig_hash: u64,
        (orient, lhash, fam): (u64, u64, u64),
        query: &Query,
        outcome: u8,
        costs: Vec<u64>,
    ) {
        let batch = self.recorder.next_batch();
        self.recorder.record(vec![TraceEvent {
            ordinal: 0,
            batch,
            sig: sig_hash,
            orient,
            kind: query_kind_index(query) as u8,
            m: query.cache_size(),
            lhash,
            fam,
            outcome,
            costs,
        }]);
    }

    /// Answers a batch of queries about `nest`, in input order — the
    /// concurrent counterpart of [`Engine::analyze_batch`]. Hits are read
    /// under the shard's read lock; the remaining distinct queries fan out
    /// through `projtile_par` with per-worker pooled solver contexts before
    /// one write-lock installation pass.
    pub fn analyze_batch(
        &self,
        nest: &LoopNest,
        queries: &[Query],
    ) -> Vec<Result<AnalysisResult, EngineError>> {
        self.queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let validity: Vec<Option<EngineError>> = queries
            .iter()
            .map(|q| validate_query(nest, q).err())
            .collect();
        if validity.iter().all(|v| v.is_some()) {
            // All invalid (`flatten` preserves the length: all are `Some`).
            return validity.into_iter().flatten().map(Err).collect();
        }
        let canon = canonicalize(nest);
        let sig_hash = hash_u64(&canon.signature());
        let shard = self.shard(sig_hash);
        let tracing = self.recorder.enabled();
        // Hashed trace identities per valid query, built while `canon` is
        // still available (interning consumes it below).
        let orient_hash = tracing.then(|| orientation_hash(sig_hash, &canon));
        let identities: Vec<Option<(u64, u64)>> = match orient_hash {
            Some(orient) => queries
                .iter()
                .zip(&validity)
                .map(|(q, v)| {
                    v.is_none()
                        .then(|| (hash_u64(q), family_hash(sig_hash, orient, &canon, q)))
                })
                .collect(),
            None => Vec::new(),
        };

        // Serve what is already memoized from the read path.
        let mut cached: HashMap<Query, AnalysisResult> = HashMap::new();
        {
            let engine = shard.read();
            if let Some((e, o)) = engine.find_indices(&canon) {
                for (q, v) in queries.iter().zip(&validity) {
                    if v.is_none() && !cached.contains_key(q) {
                        if let Some(result) = engine.peek_cached(e, o, q) {
                            cached.insert(q.clone(), result);
                        }
                    }
                }
            }
        }
        // Distinct uncached queries, deduplicated by cache-canonical form
        // (permuted-axes twins compute once); duplicate occurrences count
        // as hits, exactly like [`Engine::analyze_batch`]'s accounting.
        let mut pending: Vec<Query> = Vec::new();
        let mut pending_forms: HashMap<Query, ()> = HashMap::new();
        for (q, v) in queries.iter().zip(&validity) {
            if v.is_none()
                && !cached.contains_key(q)
                && pending_forms
                    .insert(super::canonical_query_form(q), ())
                    .is_none()
            {
                pending.push(q.clone());
            }
        }
        let mut hit_count = 0u64;
        for (q, v) in queries.iter().zip(&validity) {
            if v.is_none() && !pending.contains(q) {
                hit_count += 1;
                bump(&self.kind_hits, query_kind_index(q));
            }
        }
        self.hits.fetch_add(hit_count, Ordering::Relaxed);
        self.misses
            .fetch_add(pending.len() as u64, Ordering::Relaxed);
        for q in &pending {
            bump(&self.kind_misses, query_kind_index(q));
        }

        // Fan out with no lock held; one pooled context per worker chunk.
        let computed: Vec<(Query, Result<super::Detached, EngineError>)> = {
            let orientation_nest = nest;
            let canonical = canon.nest();
            let loop_perm = canon.loop_permutation();
            let pool = &self.pool;
            par_map_with(
                &pending,
                || pool.checkout(),
                |ctx, _, q| {
                    (
                        q.clone(),
                        compute_detached(orientation_nest, canonical, loop_perm, q, ctx),
                    )
                },
            )
        };

        let mut errors: HashMap<Query, EngineError> = HashMap::new();
        let mut installed: HashMap<Query, AnalysisResult> = HashMap::new();
        let mut install_costs: HashMap<Query, Vec<u64>> = HashMap::new();
        let mut engine = shard.write();
        let (e, o) = engine.intern_with(nest, canon);
        for (q, res) in computed {
            match res {
                Ok(detached) => {
                    if tracing {
                        install_costs.insert(q.clone(), super::detached_costs(&detached));
                    }
                    match engine.install(e, o, &q, detached) {
                        Ok(result) => {
                            installed.insert(q, result);
                        }
                        Err(err) => {
                            errors.insert(q, err);
                        }
                    }
                }
                Err(err) => {
                    errors.insert(q, err);
                }
            }
        }
        let results: Vec<Result<AnalysisResult, EngineError>> = queries
            .iter()
            .zip(&validity)
            .map(|(q, v)| {
                if let Some(err) = v {
                    return Err(err.clone());
                }
                if let Some(err) = errors.get(q) {
                    return Err(err.clone());
                }
                if let Some(result) = cached.get(q) {
                    return Ok(result.clone());
                }
                if let Some(result) = installed.get(q) {
                    return Ok(result.clone());
                }
                // A canonical twin of this query was computed and installed
                // under the shared key; answer by the exact remap. The warm
                // context pool mutex inside is a leaf lock: checkout pops a
                // free context and releases before any shard lock is touched.
                // lint: allow(L009) ContextPool's mutex is a leaf lock, released before any shard access
                engine.answer(e, o, q)
            })
            .collect();
        drop(engine);
        if let Some(orient) = orient_hash {
            // One contiguous event group per batch, in input order; the
            // outcome classification mirrors the accounting above exactly
            // (hit / first-pending miss / duplicate literal / failed).
            let batch = self.recorder.next_batch();
            let mut seen_pending: HashSet<&Query> = HashSet::new();
            let mut events = Vec::new();
            for ((q, id), installed_ok) in queries.iter().zip(&identities).zip(&results) {
                let Some((lhash, fam)) = id else { continue };
                let (oc, costs) = if cached.contains_key(q) {
                    (outcome::HIT, Vec::new())
                } else if pending.contains(q) {
                    if seen_pending.insert(q) {
                        if installed_ok.is_err() {
                            (outcome::FAILED, Vec::new())
                        } else {
                            (
                                outcome::MISS,
                                install_costs.get(q).cloned().unwrap_or_default(),
                            )
                        }
                    } else {
                        (outcome::DUPLICATE, Vec::new())
                    }
                } else {
                    // A canonical twin: counted as a hit, answered by remap.
                    (outcome::HIT, Vec::new())
                };
                events.push(TraceEvent {
                    ordinal: 0,
                    batch,
                    sig: sig_hash,
                    orient,
                    kind: query_kind_index(q) as u8,
                    m: q.cache_size(),
                    lhash: *lhash,
                    fam: *fam,
                    outcome: oc,
                    costs,
                });
            }
            self.recorder.record(events);
        }
        results
    }

    /// Serializes the whole front — every shard's result caches — as one
    /// snapshot document in the same format as [`Engine::snapshot`], so
    /// snapshots move freely between sharded and single-threaded sessions
    /// (and between fronts with different shard counts). Takes each shard's
    /// write lock briefly, one at a time.
    pub fn snapshot(&self) -> Value {
        let mut entries = Vec::new();
        let mut betas = Vec::new();
        let mut results = Vec::new();
        let mut slices = Vec::new();
        let mut surfaces = Vec::new();
        for shard in &self.shards {
            let mut engine = shard.write();
            let (e, b, r, sl, su) = engine.snapshot_parts(entries.len());
            entries.extend(e);
            betas.extend(b);
            results.extend(r);
            slices.extend(sl);
            surfaces.extend(su);
        }
        Value::Object(vec![
            ("version".to_string(), Value::Int(SNAPSHOT_VERSION as i128)),
            ("entries".to_string(), Value::Array(entries)),
            ("betas".to_string(), Value::Array(betas)),
            ("results".to_string(), Value::Array(results)),
            ("slices".to_string(), Value::Array(slices)),
            ("surfaces".to_string(), Value::Array(surfaces)),
        ])
    }

    /// [`SharedEngine::snapshot`] printed as compact JSON.
    pub fn snapshot_json(&self) -> String {
        json::to_string(&self.snapshot())
    }

    /// Restores a front from a snapshot (produced by either
    /// [`Engine::snapshot`] or [`SharedEngine::snapshot`]) with default
    /// budgets and shard count. Entries are routed to their home shards by
    /// signature, so the shard count need not match the snapshotting front.
    pub fn restore(value: &Value) -> Result<SharedEngine, EngineError> {
        SharedEngine::restore_with_config(value, EngineConfig::default(), default_shards())
    }

    /// [`SharedEngine::restore`] with explicit budgets and shard count.
    pub fn restore_with_config(
        value: &Value,
        config: EngineConfig,
        num_shards: usize,
    ) -> Result<SharedEngine, EngineError> {
        let front = SharedEngine::with_config(config, num_shards);
        // One routing pass assigns every entry to its home shard; each
        // per-shard restore then deserializes only its own entries and
        // artifacts (foreign records are skipped by index before their
        // payloads are parsed).
        let routing: Vec<usize> = super::snapshot::entry_signatures(value)?
            .iter()
            .map(|sig| front.shard_of(sig))
            .collect();
        for (i, shard) in front.shards.iter().enumerate() {
            let per_shard_config = shard.read().config();
            let restored = Engine::restore_filtered(value, per_shard_config, &|idx| {
                routing.get(idx) == Some(&i)
            })?;
            *shard.write() = restored;
        }
        Ok(front)
    }

    /// Restores a front from snapshot JSON text with default budgets.
    pub fn restore_json(text: &str) -> Result<SharedEngine, EngineError> {
        let value =
            json::parse(text).map_err(|e| EngineError::Snapshot(format!("snapshot JSON: {e}")))?;
        SharedEngine::restore(&value)
    }
}

/// Best-effort per-kind counter bump: an out-of-range kind drops the count
/// rather than panicking a query that already has its answer.
fn bump(counters: &[AtomicU64], kind: usize) {
    if let Some(c) = counters.get(kind) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// `DefaultHasher` digest of any hashable value — the trace's identity
/// primitive (also how [`SharedEngine::shard_of`] routes, so a recorded
/// `sig % num_shards` names the live shard).
fn hash_u64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// Hash of one declaration order of a canonical nest: the identity the
/// orientation-keyed caches (typed results, surfaces) miss across until a
/// write-lock pass has interned this orientation.
fn orientation_hash(sig_hash: u64, canon: &CanonicalNest) -> u64 {
    hash_u64(&(
        sig_hash,
        canon.loop_permutation(),
        canon.array_permutation(),
    ))
}

/// Hash of the cache-canonical identity of a valid query — which memoized
/// entry (within its kind's cache) answers it:
///
/// * typed results are keyed per `(orientation, M)`;
/// * slices are keyed per `(signature, M, canonical axis, span)` — shared
///   across orientations, like the live slice cache;
/// * surfaces are keyed per `(orientation, M, sorted axes, box)`, so
///   permuted-axes twins share a family (the live canonicalized key).
///
/// Two valid queries of one batch (same orientation) agree on
/// `(kind, family)` exactly when their [`super::canonical_query_form`]s
/// are equal, which is what the live batch dedupe compares.
fn family_hash(sig_hash: u64, orient_hash: u64, canon: &CanonicalNest, query: &Query) -> u64 {
    match query {
        Query::LowerBound { cache_size }
        | Query::EnumeratedBound { cache_size }
        | Query::OptimalTiling { cache_size }
        | Query::Tightness { cache_size } => hash_u64(&(orient_hash, *cache_size)),
        Query::Slice {
            cache_size,
            axis,
            lo_bound,
            hi_bound,
        } => hash_u64(&(
            sig_hash,
            *cache_size,
            canon.loop_permutation().get(*axis).copied(),
            *lo_bound,
            *hi_bound,
        )),
        Query::Surface { .. } => match super::canonical_query_form(query) {
            Query::Surface {
                cache_size,
                axes,
                lo_bounds,
                hi_bounds,
            } => hash_u64(&(orient_hash, cache_size, axes, lo_bounds, hi_bounds)),
            // The canonical form of a surface query is a surface query.
            _ => orient_hash,
        },
    }
}
