//! The thread-safe service front: a [`SharedEngine`] sharding session state
//! by canonical nest signature.
//!
//! # Concurrency model
//!
//! * **Sharding.** Each interned nest lives in exactly one shard (chosen by
//!   hashing its permutation-invariant [`NestSignature`]), and each shard is
//!   an independent [`Engine`] behind a `parking_lot` reader-writer lock.
//!   Traffic on distinct nests contends only when the nests hash to the same
//!   shard.
//! * **Lock-free read path for hits.** A cache hit takes only the shard's
//!   *shared* read lock: the memoized answer is read through
//!   [`projtile_cachesim::BoundedLru::peek`], which records recency in
//!   per-entry atomic stamps rather than re-threading the LRU list, so
//!   concurrent hits on one shard proceed in parallel and never queue behind
//!   a writer (the stamps are folded into the eviction order by the next
//!   exclusive operation).
//! * **Compute outside the locks.** A miss computes with the stateless
//!   free-function paths (identical bitwise to the memoizing paths) using a
//!   solver context checked out of the front's shared
//!   [`projtile_lp::ContextPool`] — one context per worker, so concurrent
//!   `analyze_batch` calls from many threads never serialize on one warm
//!   tableau — and only then takes the shard's write lock, briefly, to
//!   intern and install. Two threads racing on the same query compute the
//!   same bitwise value; the loser's install is an idempotent overwrite.
//!
//! Answers are bitwise-identical to a single-threaded [`Engine`] and to the
//! cold free functions, under any interleaving and any eviction pressure —
//! pinned by the multi-threaded differential proptests.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use projtile_loopnest::{canonicalize, LoopNest, NestSignature};
use projtile_lp::ContextPool;
use projtile_par::par_map_with;
use serde::{json, Value};

use super::snapshot::SNAPSHOT_VERSION;
use super::{
    compute_detached, validate_query, AnalysisResult, CacheMetrics, Engine, EngineConfig,
    EngineError, EngineStats, Query,
};

/// A thread-safe, sharded analysis service front. Create once, share by
/// reference (`&SharedEngine` is `Send + Sync`) across worker threads.
///
/// ```
/// use projtile_core::engine::{AnalysisResult, Query, SharedEngine};
/// use projtile_loopnest::builders;
///
/// let shared = SharedEngine::new();
/// let nest = builders::matmul(512, 512, 8);
/// let query = Query::Tightness { cache_size: 1 << 10 };
/// // Concurrent callers share one session; repeats are read-lock hits.
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         scope.spawn(|| shared.analyze(&nest, &query).unwrap());
///     }
/// });
/// assert_eq!(shared.stats().interned, 1);
/// match shared.analyze(&nest, &query).unwrap() {
///     AnalysisResult::Tightness(report) => assert!(report.tight),
///     other => panic!("unexpected result {other:?}"),
/// }
/// ```
pub struct SharedEngine {
    shards: Vec<RwLock<Engine>>,
    pool: ContextPool,
    queries: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SharedEngine {
    fn default() -> SharedEngine {
        SharedEngine::new()
    }
}

impl std::fmt::Debug for SharedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedEngine")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Default shard count: enough to keep `PROJTILE_THREADS` workers off each
/// other's locks, capped so idle shards stay cheap.
fn default_shards() -> usize {
    projtile_par::num_threads().clamp(1, 16).next_power_of_two()
}

impl SharedEngine {
    /// Creates a front with default cache budgets and shard count.
    pub fn new() -> SharedEngine {
        SharedEngine::with_config(EngineConfig::default(), default_shards())
    }

    /// Creates a front with explicit cache budgets and shard count. The
    /// budgets are **divided evenly across shards** (rounding up, so a
    /// small budget is never silently zeroed; the front may retain up to
    /// `shards - 1` cost units more than requested per cache). `config`
    /// therefore describes the whole front's retention, not one shard's.
    pub fn with_config(config: EngineConfig, num_shards: usize) -> SharedEngine {
        let n = num_shards.max(1) as u64;
        let per_shard = EngineConfig {
            results_capacity: config.results_capacity.div_ceil(n),
            betas_capacity: config.betas_capacity.div_ceil(n),
            slices_capacity: config.slices_capacity.div_ceil(n),
            surfaces_capacity: config.surfaces_capacity.div_ceil(n),
        };
        let n = n as usize;
        SharedEngine {
            shards: (0..n)
                .map(|_| RwLock::new(Engine::with_config(per_shard)))
                .collect(),
            pool: ContextPool::new(),
            queries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Counters for this front's lifetime, aggregated across shards.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            interned: self
                .shards
                .iter()
                .map(|s| s.read().num_interned() as u64)
                .sum(),
        }
    }

    /// Cache occupancy and eviction counters, summed across shards.
    pub fn cache_metrics(&self) -> CacheMetrics {
        let mut total = CacheMetrics::default();
        for shard in &self.shards {
            let m = shard.read().cache_metrics();
            for (acc, part) in [
                (&mut total.betas, m.betas),
                (&mut total.results, m.results),
                (&mut total.slices, m.slices),
                (&mut total.surfaces, m.surfaces),
            ] {
                acc.entries += part.entries;
                acc.cost += part.cost;
                acc.capacity += part.capacity;
                acc.evictions += part.evictions;
            }
        }
        total
    }

    fn shard_of(&self, sig: &NestSignature) -> usize {
        let mut hasher = DefaultHasher::new();
        sig.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Answers one typed query about `nest`. Hits are served under the
    /// shard's read lock; misses compute outside any lock and install under
    /// a brief write lock. Answers are bitwise-identical to
    /// [`Engine::analyze`] on a private session.
    pub fn analyze(&self, nest: &LoopNest, query: &Query) -> Result<AnalysisResult, EngineError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        validate_query(nest, query)?;
        let canon = canonicalize(nest);
        let shard = &self.shards[self.shard_of(&canon.signature())];
        {
            let engine = shard.read();
            if let Some((e, o)) = engine.find_indices(&canon) {
                if let Some(result) = engine.peek_cached(e, o, query) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(result);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Compute with no lock held: the detached path is bitwise-identical
        // to the memoizing path (both bottom out in path-independent
        // solves), so racing threads install interchangeable values.
        let detached = {
            let mut ctx = self.pool.checkout();
            compute_detached(
                nest,
                canon.nest(),
                canon.loop_permutation(),
                query,
                &mut ctx,
            )?
        };
        let mut engine = shard.write();
        let (e, o) = engine.intern_with(nest, canon);
        // `install` hands back the caller-facing result directly, so the
        // write lock is held only for the cache insertions — no re-lookup,
        // no surface re-remap under the lock.
        engine.install(e, o, query, detached)
    }

    /// Answers a batch of queries about `nest`, in input order — the
    /// concurrent counterpart of [`Engine::analyze_batch`]. Hits are read
    /// under the shard's read lock; the remaining distinct queries fan out
    /// through `projtile_par` with per-worker pooled solver contexts before
    /// one write-lock installation pass.
    pub fn analyze_batch(
        &self,
        nest: &LoopNest,
        queries: &[Query],
    ) -> Vec<Result<AnalysisResult, EngineError>> {
        self.queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let validity: Vec<Option<EngineError>> = queries
            .iter()
            .map(|q| validate_query(nest, q).err())
            .collect();
        if validity.iter().all(|v| v.is_some()) {
            // All invalid (`flatten` preserves the length: all are `Some`).
            return validity.into_iter().flatten().map(Err).collect();
        }
        let canon = canonicalize(nest);
        let shard = &self.shards[self.shard_of(&canon.signature())];

        // Serve what is already memoized from the read path.
        let mut cached: HashMap<Query, AnalysisResult> = HashMap::new();
        {
            let engine = shard.read();
            if let Some((e, o)) = engine.find_indices(&canon) {
                for (q, v) in queries.iter().zip(&validity) {
                    if v.is_none() && !cached.contains_key(q) {
                        if let Some(result) = engine.peek_cached(e, o, q) {
                            cached.insert(q.clone(), result);
                        }
                    }
                }
            }
        }
        // Distinct uncached queries, deduplicated by cache-canonical form
        // (permuted-axes twins compute once); duplicate occurrences count
        // as hits, exactly like [`Engine::analyze_batch`]'s accounting.
        let mut pending: Vec<Query> = Vec::new();
        let mut pending_forms: HashMap<Query, ()> = HashMap::new();
        for (q, v) in queries.iter().zip(&validity) {
            if v.is_none()
                && !cached.contains_key(q)
                && pending_forms
                    .insert(super::canonical_query_form(q), ())
                    .is_none()
            {
                pending.push(q.clone());
            }
        }
        self.hits.fetch_add(
            queries
                .iter()
                .zip(&validity)
                .filter(|(q, v)| v.is_none() && !pending.contains(q))
                .count() as u64,
            Ordering::Relaxed,
        );
        self.misses
            .fetch_add(pending.len() as u64, Ordering::Relaxed);

        // Fan out with no lock held; one pooled context per worker chunk.
        let computed: Vec<(Query, Result<super::Detached, EngineError>)> = {
            let orientation_nest = nest;
            let canonical = canon.nest();
            let loop_perm = canon.loop_permutation();
            let pool = &self.pool;
            par_map_with(
                &pending,
                || pool.checkout(),
                |ctx, _, q| {
                    (
                        q.clone(),
                        compute_detached(orientation_nest, canonical, loop_perm, q, ctx),
                    )
                },
            )
        };

        let mut errors: HashMap<Query, EngineError> = HashMap::new();
        let mut installed: HashMap<Query, AnalysisResult> = HashMap::new();
        let mut engine = shard.write();
        let (e, o) = engine.intern_with(nest, canon);
        for (q, res) in computed {
            match res.and_then(|detached| engine.install(e, o, &q, detached)) {
                Ok(result) => {
                    installed.insert(q, result);
                }
                Err(err) => {
                    errors.insert(q, err);
                }
            }
        }
        queries
            .iter()
            .zip(validity)
            .map(|(q, v)| {
                if let Some(err) = v {
                    return Err(err);
                }
                if let Some(err) = errors.get(q) {
                    return Err(err.clone());
                }
                if let Some(result) = cached.get(q) {
                    return Ok(result.clone());
                }
                if let Some(result) = installed.get(q) {
                    return Ok(result.clone());
                }
                // A canonical twin of this query was computed and installed
                // under the shared key; answer by the exact remap.
                engine.answer(e, o, q)
            })
            .collect()
    }

    /// Serializes the whole front — every shard's result caches — as one
    /// snapshot document in the same format as [`Engine::snapshot`], so
    /// snapshots move freely between sharded and single-threaded sessions
    /// (and between fronts with different shard counts). Takes each shard's
    /// write lock briefly, one at a time.
    pub fn snapshot(&self) -> Value {
        let mut entries = Vec::new();
        let mut betas = Vec::new();
        let mut results = Vec::new();
        let mut slices = Vec::new();
        let mut surfaces = Vec::new();
        for shard in &self.shards {
            let mut engine = shard.write();
            let (e, b, r, sl, su) = engine.snapshot_parts(entries.len());
            entries.extend(e);
            betas.extend(b);
            results.extend(r);
            slices.extend(sl);
            surfaces.extend(su);
        }
        Value::Object(vec![
            ("version".to_string(), Value::Int(SNAPSHOT_VERSION as i128)),
            ("entries".to_string(), Value::Array(entries)),
            ("betas".to_string(), Value::Array(betas)),
            ("results".to_string(), Value::Array(results)),
            ("slices".to_string(), Value::Array(slices)),
            ("surfaces".to_string(), Value::Array(surfaces)),
        ])
    }

    /// [`SharedEngine::snapshot`] printed as compact JSON.
    pub fn snapshot_json(&self) -> String {
        json::to_string(&self.snapshot())
    }

    /// Restores a front from a snapshot (produced by either
    /// [`Engine::snapshot`] or [`SharedEngine::snapshot`]) with default
    /// budgets and shard count. Entries are routed to their home shards by
    /// signature, so the shard count need not match the snapshotting front.
    pub fn restore(value: &Value) -> Result<SharedEngine, EngineError> {
        SharedEngine::restore_with_config(value, EngineConfig::default(), default_shards())
    }

    /// [`SharedEngine::restore`] with explicit budgets and shard count.
    pub fn restore_with_config(
        value: &Value,
        config: EngineConfig,
        num_shards: usize,
    ) -> Result<SharedEngine, EngineError> {
        let front = SharedEngine::with_config(config, num_shards);
        // One routing pass assigns every entry to its home shard; each
        // per-shard restore then deserializes only its own entries and
        // artifacts (foreign records are skipped by index before their
        // payloads are parsed).
        let routing: Vec<usize> = super::snapshot::entry_signatures(value)?
            .iter()
            .map(|sig| front.shard_of(sig))
            .collect();
        for (i, shard) in front.shards.iter().enumerate() {
            let per_shard_config = shard.read().config();
            let restored = Engine::restore_filtered(value, per_shard_config, &|idx| {
                routing.get(idx) == Some(&i)
            })?;
            *shard.write() = restored;
        }
        Ok(front)
    }

    /// Restores a front from snapshot JSON text with default budgets.
    pub fn restore_json(text: &str) -> Result<SharedEngine, EngineError> {
        let value =
            json::parse(text).map_err(|e| EngineError::Snapshot(format!("snapshot JSON: {e}")))?;
        SharedEngine::restore(&value)
    }
}
