//! The unified analysis session: a long-lived [`Engine`] answering typed
//! [`Query`]s over interned loop nests with cross-query artifact reuse,
//! bounded memoization, and session persistence — plus the thread-safe
//! sharded [`SharedEngine`] front for concurrent serving.
//!
//! # Why a session API
//!
//! The paper's analyses share expensive intermediates: the Theorem-2 bound,
//! the `2^d` enumeration, the tiling LP, the Theorem-3 check and the §7
//! value functions all revolve around the same `β` vectors, the same HBL
//! constraint matrix, and the same warm simplex bases. The stateless free
//! functions (`communication_lower_bound`, `check_tightness`,
//! `exponent_surface`, …) rebuild all of it per call — fine for one-shot use,
//! wasteful for the repeated-query traffic of a compiler pass or an analysis
//! service that probes many variants of the same nest. The `Engine` makes
//! that workload pay amortized cost:
//!
//! * **Interning.** Nests are interned by their permutation-invariant
//!   [`projtile_loopnest::NestSignature`], so a caller that re-declares the
//!   same program with loops or arrays in a different order hits the same
//!   cache entry.
//! * **Artifact reuse.** Per interned nest the engine keeps the `β` vectors
//!   per cache size, a warm [`crate::hbl::HblFamily`] (its matrix is
//!   cache-size-independent), memoized §7 slices (shared across permuted
//!   variants — a value function carries no positional data), memoized
//!   surfaces keyed by `(sorted axes, box)` (a permuted-axes request is a
//!   hit answered by an exact coordinate remap), and every typed result it
//!   has computed. A `Tightness` query warms `LowerBound`,
//!   `EnumeratedBound` and `OptimalTiling` for free, and vice versa.
//! * **Bounded memoization.** Every memo map is a cost-aware
//!   [`projtile_cachesim::BoundedLru`] with caps set by [`EngineConfig`]
//!   (approximate heap bytes), so a long-lived service session cannot grow
//!   without bound; least recently used artifacts are evicted first and
//!   transparently recomputed on the next query.
//! * **Persistence.** [`Engine::snapshot`] serializes the result caches
//!   through the workspace serde layer and [`Engine::restore`] warm-starts a
//!   new session from them, so a service restart does not start cold.
//! * **Exactness.** Engine answers are **bitwise-identical** to the retained
//!   free functions, which double as the cold differential oracles in the
//!   test suite — under cache hits, eviction pressure, concurrent access
//!   through [`SharedEngine`], and snapshot/restore alike. Everything the
//!   engine shares across queries is either path-independent by
//!   construction (canonical lex-min LP optima, unique optimal values,
//!   unique value functions) or cached per declaration order (vertex
//!   certificates, `λ` vectors).
//!
//! ```
//! use projtile_core::engine::{AnalysisResult, Engine, Query};
//! use projtile_loopnest::builders;
//!
//! let mut engine = Engine::new();
//! let nest = builders::matmul(512, 512, 8);
//! // First query computes; the repeat is a pure cache lookup.
//! let q = Query::Tightness { cache_size: 1 << 10 };
//! let first = engine.analyze(&nest, &q).unwrap();
//! let again = engine.analyze(&nest, &q).unwrap();
//! assert_eq!(first, again);
//! assert_eq!(engine.stats().hits, 1);
//! match first {
//!     AnalysisResult::Tightness(report) => assert!(report.tight),
//!     other => panic!("unexpected result {other:?}"),
//! }
//! // The session can be persisted and warm-restored.
//! let snapshot = engine.snapshot_json();
//! let mut restored = Engine::restore_json(&snapshot).unwrap();
//! assert_eq!(restored.analyze(&nest, &q).unwrap(), again);
//! assert_eq!(restored.stats().hits, 1);
//! ```

mod cache;
mod query;
mod shared;
mod snapshot;
mod store;
mod trace;

pub use query::{
    query_kind_index, AnalysisResult, EngineError, KindCounters, Query, SurfaceSummary,
    TilingSummary, QUERY_KIND_COUNT, QUERY_KIND_NAMES,
};
pub use shared::SharedEngine;
pub use snapshot::SNAPSHOT_VERSION;
pub use store::{SnapshotStore, SNAPSHOT_TMP};
pub use trace::{outcome, TraceDocument, TraceError, TraceEvent, TraceRecorder, TRACE_VERSION};

use std::collections::HashMap;
use std::fmt;

use projtile_arith::{log, Rational};
use projtile_cachesim::BoundedLru;
pub use projtile_cachesim::BoundedLruStats;
use projtile_loopnest::{canonicalize, CanonicalNest, LoopNest, NestSignature};
use projtile_lp::parametric::ValueFunction;
use projtile_lp::ContextPool;
use projtile_par::par_map_with;

use crate::bounds::{
    arbitrary_bound_exponent, exponent_from_s_hat_with_betas, select_best, EnumeratedBound,
    LowerBound,
};
use crate::hbl::{hbl_lp, HblFamily};
use crate::parametric::{exponent_vs_beta_with, ExponentSurface};
use crate::tightness::TightnessReport;
use crate::tiling_lp::{solve_tiling_lp, tile_dims_from_lambda};
use cache::{
    cost, BetaKey, CachedResult, NestEntry, Orientation, PointSlice, ResultKey, ResultKind,
    SliceEntry, SliceKey, SliceKind, StoredSurface, SurfaceKey,
};

/// Retention budgets (approximate heap bytes) for the engine's memo caches.
/// Each cap governs one artifact class across **all** interned nests; least
/// recently used entries are evicted first when a cap is exceeded, and the
/// most recently inserted entry is always retained. Eviction never changes
/// an answer — evicted artifacts are recomputed by the same deterministic
/// routine on the next query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Budget for typed results (bounds, enumerations, tilings, tightness
    /// reports, certificates).
    pub results_capacity: u64,
    /// Budget for `β` vectors.
    pub betas_capacity: u64,
    /// Budget for §7 value-function slices (explicit sweeps and the growing
    /// probe slices behind [`Engine::exponent_at_bound`]).
    pub slices_capacity: u64,
    /// Budget for memoized exponent surfaces (by far the largest artifacts).
    pub surfaces_capacity: u64,
}

impl Default for EngineConfig {
    /// Service-friendly defaults: tens of megabytes per artifact class,
    /// orders of magnitude above any single analysis.
    fn default() -> EngineConfig {
        EngineConfig {
            results_capacity: 32 << 20,
            betas_capacity: 4 << 20,
            slices_capacity: 32 << 20,
            surfaces_capacity: 64 << 20,
        }
    }
}

/// Per-cache occupancy and eviction counters, from [`Engine::cache_metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheMetrics {
    /// The `β`-vector cache.
    pub betas: BoundedLruStats,
    /// The typed-result cache.
    pub results: BoundedLruStats,
    /// The slice cache.
    pub slices: BoundedLruStats,
    /// The surface cache.
    pub surfaces: BoundedLruStats,
    /// Hit/miss counters per query kind, indexed like [`QUERY_KIND_NAMES`]
    /// (`exponent_at_bound` probes count under the `slice` kind, whose
    /// memo they share).
    pub kinds: [KindCounters; QUERY_KIND_COUNT],
}

/// Counters describing how an [`Engine`] resolved its queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Total queries answered (including batch members).
    pub queries: u64,
    /// Queries answered from a memoized result (pure lookups).
    pub hits: u64,
    /// Queries that had to compute (and then memoized) their result.
    pub misses: u64,
    /// Distinct canonical signatures interned.
    pub interned: u64,
}

/// A long-lived analysis session. See the [module docs](self) for the reuse
/// model; see [`Query`] for the request vocabulary and [`SharedEngine`] for
/// the thread-safe front.
pub struct Engine {
    config: EngineConfig,
    entries: Vec<NestEntry>,
    index: HashMap<NestSignature, usize>,
    betas: BoundedLru<BetaKey, Vec<Rational>>,
    results: BoundedLru<ResultKey, CachedResult>,
    slices: BoundedLru<SliceKey, SliceEntry>,
    surfaces: BoundedLru<SurfaceKey, StoredSurface>,
    pool: ContextPool,
    stats: EngineStats,
    kinds: [KindCounters; QUERY_KIND_COUNT],
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::with_config(EngineConfig::default())
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("interned_nests", &self.entries.len())
            .field("stats", &self.stats)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Creates an empty session with the default cache budgets.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Creates an empty session with explicit cache budgets.
    pub fn with_config(config: EngineConfig) -> Engine {
        Engine {
            config,
            entries: Vec::new(),
            index: HashMap::new(),
            betas: BoundedLru::new(config.betas_capacity),
            results: BoundedLru::new(config.results_capacity),
            slices: BoundedLru::new(config.slices_capacity),
            surfaces: BoundedLru::new(config.surfaces_capacity),
            pool: ContextPool::new(),
            stats: EngineStats::default(),
            kinds: [KindCounters::default(); QUERY_KIND_COUNT],
        }
    }

    /// The session's cache budgets.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Interns `nest` (no analysis yet) and returns its canonical signature.
    /// Permuted re-declarations of the same program return the same
    /// signature and share one cache entry.
    pub fn intern(&mut self, nest: &LoopNest) -> NestSignature {
        let canon = canonicalize(nest);
        let sig = canon.signature();
        let _ = self.intern_with(nest, canon);
        sig
    }

    /// Number of distinct canonical signatures interned so far.
    pub fn num_interned(&self) -> usize {
        self.entries.len()
    }

    /// Counters for this session's lifetime.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Occupancy, cost, and eviction counters of the four memo caches,
    /// plus hit/miss counters per query kind.
    pub fn cache_metrics(&self) -> CacheMetrics {
        CacheMetrics {
            betas: self.betas.stats(),
            results: self.results.stats(),
            slices: self.slices.stats(),
            surfaces: self.surfaces.stats(),
            kinds: self.kinds,
        }
    }

    /// Records one resolved query in the per-kind counters (mirrors the
    /// aggregate `stats.hits`/`stats.misses` accounting).
    fn count_kind(&mut self, kind: usize, hit: bool) {
        // Counters are best-effort; an out-of-range kind drops the count
        // rather than panicking a query that already has its answer.
        let Some(k) = self.kinds.get_mut(kind) else {
            return;
        };
        if hit {
            k.hits += 1;
        } else {
            k.misses += 1;
        }
    }

    /// Answers one typed query about `nest`, reusing every applicable cached
    /// artifact and memoizing what it computes. Results are bitwise-identical
    /// to the corresponding free function (see the module docs).
    pub fn analyze(
        &mut self,
        nest: &LoopNest,
        query: &Query,
    ) -> Result<AnalysisResult, EngineError> {
        self.stats.queries += 1;
        validate_query(nest, query)?;
        let (e, o) = self.intern_indices(nest);
        let hit = self.is_cached(e, o, query);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.count_kind(query_kind_index(query), hit);
        self.answer(e, o, query)
    }

    /// Answers a batch of queries about `nest`, in input order.
    ///
    /// Already-memoized queries are answered by lookup; the remaining
    /// distinct queries are fanned out through `projtile_par` with one pooled
    /// warm solver context per worker chunk, then installed into the cache.
    /// Results are identical to issuing the queries one-by-one through
    /// [`Engine::analyze`] (pinned by tests): every parallel compute path is
    /// path-independent, so the fan-out cannot change any answer.
    pub fn analyze_batch(
        &mut self,
        nest: &LoopNest,
        queries: &[Query],
    ) -> Vec<Result<AnalysisResult, EngineError>> {
        self.stats.queries += queries.len() as u64;
        let validity: Vec<Option<EngineError>> = queries
            .iter()
            .map(|q| validate_query(nest, q).err())
            .collect();
        if validity.iter().all(|v| v.is_some()) {
            // Nothing valid to intern or compute; every slot is an error
            // (`flatten` preserves the length because all are `Some`).
            return validity.into_iter().flatten().map(Err).collect();
        }
        let (e, o) = self.intern_indices(nest);

        // The distinct valid queries that are not yet memoized, deduplicated
        // by cache-canonical form (permuted-axes twins compute once).
        let mut pending: Vec<Query> = Vec::new();
        let mut pending_forms: std::collections::HashSet<Query> = std::collections::HashSet::new();
        for (q, v) in queries.iter().zip(&validity) {
            if v.is_none()
                && !self.is_cached(e, o, q)
                && pending_forms.insert(canonical_query_form(q))
            {
                pending.push(q.clone());
            }
        }
        for (q, v) in queries.iter().zip(&validity) {
            if v.is_none() && !pending.contains(q) {
                self.stats.hits += 1;
                self.count_kind(query_kind_index(q), true);
            }
        }
        self.stats.misses += pending.len() as u64;
        for q in &pending {
            self.count_kind(query_kind_index(q), false);
        }

        // Fan the pending queries out; per-worker pooled contexts warm-start
        // along each chunk. Only shared borrows of the engine are used here.
        let computed: Vec<(Query, Result<Detached, EngineError>)> = {
            let orientation_nest = &self.orientation(e, o).nest;
            let canonical = &self.entry(e).canonical;
            let loop_perm = &self.orientation(e, o).loop_perm;
            let pool = &self.pool;
            par_map_with(
                &pending,
                || pool.checkout(),
                |ctx, _, q| {
                    (
                        q.clone(),
                        compute_detached(orientation_nest, canonical, loop_perm, q, ctx),
                    )
                },
            )
        };

        // Install the computed results, then assemble answers positionally
        // (pre-existing hits by lookup, fresh results straight from install).
        let mut errors: HashMap<Query, EngineError> = HashMap::new();
        let mut installed: HashMap<Query, AnalysisResult> = HashMap::new();
        for (q, res) in computed {
            match res.and_then(|detached| self.install(e, o, &q, detached)) {
                Ok(result) => {
                    installed.insert(q, result);
                }
                Err(err) => {
                    errors.insert(q, err);
                }
            }
        }
        queries
            .iter()
            .zip(validity)
            .map(|(q, v)| {
                if let Some(err) = v {
                    return Err(err);
                }
                if let Some(err) = errors.get(q) {
                    return Err(err.clone());
                }
                if let Some(result) = installed.get(q) {
                    return Ok(result.clone());
                }
                self.answer(e, o, q)
            })
            .collect()
    }

    /// The optimal exponent at one specific bound value along `axis` — the
    /// memoized form of [`crate::parametric::exponent_at_bound`]. The first
    /// query per `(cache size, axis)` sweeps a 1-D slice of the §7 value
    /// function once; every later bound on that axis (a JIT probing candidate
    /// specializations, say) is read off the slice without touching the
    /// solver. Answers are bitwise-identical to the cold oracle
    /// [`crate::parametric::exponent_at_bound_cold`].
    pub fn exponent_at_bound(
        &mut self,
        nest: &LoopNest,
        cache_size: u64,
        axis: usize,
        bound: u64,
    ) -> Result<Rational, EngineError> {
        self.stats.queries += 1;
        if cache_size < 2 {
            return Err(EngineError::InvalidQuery(
                "cache size must be at least 2 words".into(),
            ));
        }
        if axis >= nest.num_loops() {
            return Err(EngineError::InvalidQuery(format!(
                "axis {axis} out of range for a {}-loop nest",
                nest.num_loops()
            )));
        }
        if bound == 0 {
            return Err(EngineError::InvalidQuery("bound must be positive".into()));
        }
        let (e, o) = self.intern_indices(nest);
        let (value, was_hit) = self.exponent_at_bound_memo(e, o, cache_size, axis, bound)?;
        if was_hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        // Probe reads share the slice memo, so they count under `slice`.
        self.count_kind(
            query_kind_index(&Query::Slice {
                cache_size,
                axis,
                lo_bound: bound,
                hi_bound: bound,
            }),
            was_hit,
        );
        Ok(value)
    }

    /// The full memoized [`ExponentSurface`] for a [`Query::Surface`]-shaped
    /// request, for callers that need region geometry or slices beyond the
    /// wire-ready [`SurfaceSummary`].
    pub fn exponent_surface(
        &mut self,
        nest: &LoopNest,
        cache_size: u64,
        axes: &[usize],
        lo_bounds: &[u64],
        hi_bounds: &[u64],
    ) -> Result<ExponentSurface, EngineError> {
        let query = Query::Surface {
            cache_size,
            axes: axes.to_vec(),
            lo_bounds: lo_bounds.to_vec(),
            hi_bounds: hi_bounds.to_vec(),
        };
        self.stats.queries += 1;
        validate_query(nest, &query)?;
        let (e, o) = self.intern_indices(nest);
        let hit = self.is_cached(e, o, &query);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.count_kind(query_kind_index(&query), hit);
        self.surface(e, o, cache_size, axes, lo_bounds, hi_bounds)
    }

    // -----------------------------------------------------------------------
    // Interning
    // -----------------------------------------------------------------------

    fn intern_indices(&mut self, nest: &LoopNest) -> (usize, usize) {
        let canon = canonicalize(nest);
        self.intern_with(nest, canon)
    }

    pub(crate) fn intern_with(&mut self, nest: &LoopNest, canon: CanonicalNest) -> (usize, usize) {
        let sig = canon.signature();
        let e = match self.index.get(&sig) {
            Some(&e) => e,
            None => {
                self.entries.push(NestEntry {
                    canonical: canon.nest().clone(),
                    orientations: Vec::new(),
                });
                self.stats.interned += 1;
                let e = self.entries.len() - 1;
                self.index.insert(sig, e);
                e
            }
        };
        let o = self.orientation_index(e, nest, &canon);
        (e, o)
    }

    /// The interned entry `e`. Every `e` in circulation was minted by
    /// [`Engine::intern_with`] against this engine, and `entries` is
    /// append-only, so the index cannot go out of range.
    fn entry(&self, e: usize) -> &NestEntry {
        // lint: allow(L008) e is an interned id minted by intern_with; entries is append-only
        &self.entries[e]
    }

    /// The interned orientation `(e, o)` (same invariant as [`Engine::entry`];
    /// `o` is minted by `orientation_index` and orientations are append-only).
    fn orientation(&self, e: usize, o: usize) -> &Orientation {
        // lint: allow(L008) (e, o) are interned ids; entries and orientations are append-only
        &self.entries[e].orientations[o]
    }

    /// Mutable variant of [`Engine::orientation`].
    fn orientation_mut(&mut self, e: usize, o: usize) -> &mut Orientation {
        // lint: allow(L008) (e, o) are interned ids; entries and orientations are append-only
        &mut self.entries[e].orientations[o]
    }

    /// Maps orientation-local axis `axis` to the canonical axis it names.
    /// `axis` has been validated against the nest's loop count by
    /// [`validate_query`] before any memo path runs.
    fn canon_axis(&self, e: usize, o: usize, axis: usize) -> usize {
        // lint: allow(L008) loop_perm has one slot per loop and axis was validated by validate_query
        self.orientation(e, o).loop_perm[axis]
    }

    /// Finds or creates the orientation of entry `e` matching `canon`'s
    /// permutations.
    fn orientation_index(&mut self, e: usize, nest: &LoopNest, canon: &CanonicalNest) -> usize {
        let loop_perm = canon.loop_permutation();
        let array_perm = canon.array_permutation();
        // lint: allow(L008) e was just minted (or found) by intern_with against this engine
        let entry = &mut self.entries[e];
        if let Some(i) = entry
            .orientations
            .iter()
            .position(|o| o.loop_perm == loop_perm && o.array_perm == array_perm)
        {
            return i;
        }
        entry.orientations.push(Orientation {
            loop_perm: loop_perm.to_vec(),
            array_perm: array_perm.to_vec(),
            nest: nest.clone(),
            hbl_family: None,
        });
        entry.orientations.len() - 1
    }

    /// Entry/orientation lookup **without interning**, for the shared
    /// read path: `None` if the nest (or this orientation of it) has never
    /// been seen.
    pub(crate) fn find_indices(&self, canon: &CanonicalNest) -> Option<(usize, usize)> {
        let e = *self.index.get(&canon.signature())?;
        let loop_perm = canon.loop_permutation();
        let array_perm = canon.array_permutation();
        let o = self
            .entries
            .get(e)?
            .orientations
            .iter()
            .position(|o| o.loop_perm == loop_perm && o.array_perm == array_perm)?;
        Some((e, o))
    }

    // -----------------------------------------------------------------------
    // Memoized artifact paths
    // -----------------------------------------------------------------------

    /// The `β` vector for cache size `m` in canonical loop order, computed
    /// once per `(nest, m)` and recomputed transparently after eviction
    /// (`log_M L` is a pure function of the bounds).
    fn betas_canonical(&mut self, e: usize, m: u64) -> Vec<Rational> {
        let key = BetaKey { entry: e, m };
        if let Some(v) = self.betas.get(&key) {
            return v.clone();
        }
        let v = crate::bounds::betas(&self.entry(e).canonical, m);
        self.betas.insert(key, v.clone(), cost::betas(&v));
        v
    }

    /// The `β` vector in orientation `o`'s loop order, permuted from the
    /// shared canonical vector.
    fn betas_oriented(&mut self, e: usize, o: usize, m: u64) -> Vec<Rational> {
        let canon = self.betas_canonical(e, m);
        let perm = &self.orientation(e, o).loop_perm;
        // lint: allow(L008) loop_perm is a permutation of 0..d and canon has length d
        perm.iter().map(|&c| canon[c].clone()).collect()
    }

    /// `true` iff `query` is already memoized (a repeat query is a pure
    /// lookup). Residency checks do not touch recency.
    fn is_cached(&self, e: usize, o: usize, query: &Query) -> bool {
        match query {
            Query::LowerBound { cache_size } => self.results.contains(&ResultKey {
                entry: e,
                orientation: o,
                m: *cache_size,
                kind: ResultKind::Bound,
            }),
            Query::EnumeratedBound { cache_size } => self.results.contains(&ResultKey {
                entry: e,
                orientation: o,
                m: *cache_size,
                kind: ResultKind::Enumerated,
            }),
            Query::OptimalTiling { cache_size } => self.results.contains(&ResultKey {
                entry: e,
                orientation: o,
                m: *cache_size,
                kind: ResultKind::Tiling,
            }),
            Query::Tightness { cache_size } => self.results.contains(&ResultKey {
                entry: e,
                orientation: o,
                m: *cache_size,
                kind: ResultKind::Tightness,
            }),
            Query::Surface {
                cache_size,
                axes,
                lo_bounds,
                hi_bounds,
            } => {
                let (key, _) = self.surface_key(e, o, *cache_size, axes, lo_bounds, hi_bounds);
                self.surfaces.contains(&key)
            }
            Query::Slice {
                cache_size,
                axis,
                lo_bound,
                hi_bound,
            } => self.slices.contains(&SliceKey {
                entry: e,
                m: *cache_size,
                canon_axis: self.canon_axis(e, o, *axis),
                kind: SliceKind::Span {
                    lo_bound: *lo_bound,
                    hi_bound: *hi_bound,
                },
            }),
        }
    }

    /// Pure cached lookup for the shared read path: `Some(result)` iff the
    /// query is fully answerable without solver work or re-threading any
    /// recency list. Reads go through [`BoundedLru::peek`], which records
    /// recency in atomic stamps, so concurrent readers of a
    /// [`SharedEngine`] shard never take its write lock for a hit. A
    /// tightness query whose report was evicted but whose component
    /// artifacts survive (the shape the derived-last policy produces) is
    /// recomposed here — pure arithmetic, bitwise what the memoizing path
    /// composes — so the shared front keeps the O(1) rewarm property.
    pub(crate) fn peek_cached(&self, e: usize, o: usize, query: &Query) -> Option<AnalysisResult> {
        let result_key = |kind: ResultKind, m: u64| ResultKey {
            entry: e,
            orientation: o,
            m,
            kind,
        };
        match query {
            Query::LowerBound { cache_size } => {
                match self
                    .results
                    .peek(&result_key(ResultKind::Bound, *cache_size))?
                {
                    CachedResult::Bound(lb) => Some(AnalysisResult::LowerBound(lb.clone())),
                    _ => None,
                }
            }
            Query::EnumeratedBound { cache_size } => {
                match self
                    .results
                    .peek(&result_key(ResultKind::Enumerated, *cache_size))?
                {
                    CachedResult::Enumerated(en) => {
                        Some(AnalysisResult::EnumeratedBound(en.clone()))
                    }
                    _ => None,
                }
            }
            Query::OptimalTiling { cache_size } => {
                match self
                    .results
                    .peek(&result_key(ResultKind::Tiling, *cache_size))?
                {
                    CachedResult::Tiling(t) => Some(AnalysisResult::OptimalTiling(t.clone())),
                    _ => None,
                }
            }
            Query::Tightness { cache_size } => {
                if let Some(CachedResult::Tightness(t)) = self
                    .results
                    .peek(&result_key(ResultKind::Tightness, *cache_size))
                {
                    return Some(AnalysisResult::Tightness(t.clone()));
                }
                // Report evicted: recompose from resident components.
                let CachedResult::Tiling(tiling) = self
                    .results
                    .peek(&result_key(ResultKind::Tiling, *cache_size))?
                else {
                    return None;
                };
                let CachedResult::Bound(bound) = self
                    .results
                    .peek(&result_key(ResultKind::Bound, *cache_size))?
                else {
                    return None;
                };
                let CachedResult::Enumerated(enumerated) = self
                    .results
                    .peek(&result_key(ResultKind::Enumerated, *cache_size))?
                else {
                    return None;
                };
                let CachedResult::Certificate(certificate_ok) = self
                    .results
                    .peek(&result_key(ResultKind::Certificate, *cache_size))?
                else {
                    return None;
                };
                Some(AnalysisResult::Tightness(compose_tightness_report(
                    tiling,
                    bound,
                    enumerated,
                    *certificate_ok,
                )))
            }
            Query::Surface {
                cache_size,
                axes,
                lo_bounds,
                hi_bounds,
            } => {
                let (key, order) = self.surface_key(e, o, *cache_size, axes, lo_bounds, hi_bounds);
                let stored = self.surfaces.peek(&key)?;
                Some(AnalysisResult::Surface(match order {
                    None => stored.summary.clone(),
                    Some(order) => {
                        let remapped = stored.surface.with_axis_order(&order);
                        summarize_surface(&remapped, axes)
                    }
                }))
            }
            Query::Slice {
                cache_size,
                axis,
                lo_bound,
                hi_bound,
            } => {
                let key = SliceKey {
                    entry: e,
                    m: *cache_size,
                    canon_axis: self.canon_axis(e, o, *axis),
                    kind: SliceKind::Span {
                        lo_bound: *lo_bound,
                        hi_bound: *hi_bound,
                    },
                };
                match self.slices.peek(&key)? {
                    SliceEntry::Span(vf) => Some(AnalysisResult::Slice(vf.clone())),
                    SliceEntry::Probe(_) => None,
                }
            }
        }
    }

    /// Answers `query`, computing and memoizing on miss.
    pub(crate) fn answer(
        &mut self,
        e: usize,
        o: usize,
        query: &Query,
    ) -> Result<AnalysisResult, EngineError> {
        match query {
            Query::LowerBound { cache_size } => Ok(AnalysisResult::LowerBound(self.lower_bound(
                e,
                o,
                *cache_size,
            ))),
            Query::EnumeratedBound { cache_size } => Ok(AnalysisResult::EnumeratedBound(
                self.enumerated(e, o, *cache_size),
            )),
            Query::OptimalTiling { cache_size } => Ok(AnalysisResult::OptimalTiling(self.tiling(
                e,
                o,
                *cache_size,
            ))),
            Query::Tightness { cache_size } => {
                Ok(AnalysisResult::Tightness(self.tightness(e, o, *cache_size)))
            }
            Query::Surface {
                cache_size,
                axes,
                lo_bounds,
                hi_bounds,
            } => self
                .surface_summary(e, o, *cache_size, axes, lo_bounds, hi_bounds)
                .map(AnalysisResult::Surface),
            Query::Slice {
                cache_size,
                axis,
                lo_bound,
                hi_bound,
            } => self
                .slice(e, o, *cache_size, *axis, *lo_bound, *hi_bound)
                .map(AnalysisResult::Slice),
        }
    }

    fn lower_bound(&mut self, e: usize, o: usize, m: u64) -> LowerBound {
        let key = ResultKey {
            entry: e,
            orientation: o,
            m,
            kind: ResultKind::Bound,
        };
        if let Some(CachedResult::Bound(lb)) = self.results.get(&key) {
            return lb.clone();
        }
        // Cold oracle path: the engine's answer *is* the free function's.
        let lb = arbitrary_bound_exponent(&self.orientation(e, o).nest, m);
        let entry = CachedResult::Bound(lb.clone());
        let c = cost::result(&entry);
        self.results.insert(key, entry, c);
        lb
    }

    fn enumerated(&mut self, e: usize, o: usize, m: u64) -> EnumeratedBound {
        let key = ResultKey {
            entry: e,
            orientation: o,
            m,
            kind: ResultKind::Enumerated,
        };
        if let Some(CachedResult::Enumerated(en)) = self.results.get(&key) {
            return en.clone();
        }
        // Warm path through the orientation's persistent HblFamily: the
        // family's matrix is cache-size-independent, so re-enumerations at
        // other cache sizes (and tightness checks) re-enter the retained
        // basis instead of rebuilding it. Results are bitwise-identical to
        // `bounds::enumerated_exponent` (and its cold oracle): each subset's
        // solution is the canonical lex-min optimum — a property of the
        // program, not of the pivot path — and the selection rule is shared.
        let beta = self.betas_oriented(e, o, m);
        let orientation = self.orientation_mut(e, o);
        let d = orientation.nest.num_loops();
        let nest = orientation.nest.clone();
        let family = orientation
            .hbl_family
            .get_or_insert_with(|| HblFamily::new(&nest));
        let gray = (0..1u64 << d).map(|i| i ^ (i >> 1));
        let mut per_subset: Vec<(projtile_loopnest::IndexSet, Rational)> = gray
            .map(|mask| {
                let q = projtile_loopnest::IndexSet::from_bits(mask);
                let sol = family.solve(q);
                (q, exponent_from_s_hat_with_betas(&nest, &beta, q, &sol.s))
            })
            .collect();
        per_subset.sort_unstable_by_key(|(q, _)| q.bits());
        let en = select_best(per_subset);
        let entry = CachedResult::Enumerated(en.clone());
        let c = cost::result(&entry);
        self.results.insert(key, entry, c);
        en
    }

    fn tiling(&mut self, e: usize, o: usize, m: u64) -> TilingSummary {
        let key = ResultKey {
            entry: e,
            orientation: o,
            m,
            kind: ResultKind::Tiling,
        };
        if let Some(CachedResult::Tiling(t)) = self.results.get(&key) {
            return t.clone();
        }
        let nest = &self.orientation(e, o).nest;
        let sol = solve_tiling_lp(nest, m);
        let tile_dims = tile_dims_from_lambda(nest, m, &sol.lambda);
        let summary = TilingSummary {
            lambda: sol.lambda,
            value: sol.value,
            tile_dims,
        };
        let entry = CachedResult::Tiling(summary.clone());
        let c = cost::result(&entry);
        self.results.insert(key, entry, c);
        summary
    }

    /// Validity of the Theorem-3 certificate of the cached lower bound — a
    /// pure function of `(nest, bound)` memoized as a component of the
    /// tightness report, so a report evicted under cache pressure can be
    /// recomposed from surviving components without re-solving the
    /// row-deleted HBL LP.
    fn certificate(&mut self, e: usize, o: usize, m: u64, bound: &LowerBound) -> bool {
        let key = ResultKey {
            entry: e,
            orientation: o,
            m,
            kind: ResultKind::Certificate,
        };
        if let Some(&CachedResult::Certificate(ok)) = self.results.get(&key) {
            return ok;
        }
        let beta = self.betas_oriented(e, o, m);
        let ok = certificate_valid(&self.orientation(e, o).nest, &beta, bound);
        self.results.insert(
            key,
            CachedResult::Certificate(ok),
            cost::result(&CachedResult::Certificate(ok)),
        );
        ok
    }

    fn tightness(&mut self, e: usize, o: usize, m: u64) -> TightnessReport {
        let key = ResultKey {
            entry: e,
            orientation: o,
            m,
            kind: ResultKind::Tightness,
        };
        if let Some(CachedResult::Tightness(t)) = self.results.get(&key) {
            return t.clone();
        }
        // Composed from the shared artifacts — each the exact value the
        // corresponding free function computes — so the report is
        // field-for-field what `tightness::check_tightness` returns, while a
        // preceding LowerBound/EnumeratedBound/OptimalTiling query (or this
        // one) warms the others.
        let tiling = self.tiling(e, o, m);
        let bound = self.lower_bound(e, o, m);
        let enumerated = self.enumerated(e, o, m);
        let certificate_ok = self.certificate(e, o, m, &bound);
        let report = compose_tightness_report(&tiling, &bound, &enumerated, certificate_ok);
        let entry = CachedResult::Tightness(report.clone());
        let c = cost::result(&entry);
        self.results.insert(key, entry, c);
        // Derived-last recency policy: re-touch the component artifacts the
        // report was composed from (bound, enumeration, tiling,
        // certificate), so under LRU pressure the *derived* report is
        // evicted before its inputs. A report is the cheapest artifact to
        // rebuild — recomposition from surviving components takes no LP
        // solve at all — so evicting it first keeps the rewarm path O(1)
        // in solver work.
        self.touch_tightness_components(e, o, m);
        report
    }

    /// Marks the four component artifacts of a tightness report as more
    /// recently used than the report itself (see the derived-last policy in
    /// [`Engine::tightness`]).
    fn touch_tightness_components(&mut self, e: usize, o: usize, m: u64) {
        for kind in [
            ResultKind::Tiling,
            ResultKind::Bound,
            ResultKind::Enumerated,
            ResultKind::Certificate,
        ] {
            self.results.get(&ResultKey {
                entry: e,
                orientation: o,
                m,
                kind,
            });
        }
    }

    /// The canonical (sorted-axes) surface cache key for a request, plus the
    /// remap presenting the stored surface in the caller's axis order
    /// (`None` when the request is already sorted).
    fn surface_key(
        &self,
        e: usize,
        o: usize,
        m: u64,
        axes: &[usize],
        lo_bounds: &[u64],
        hi_bounds: &[u64],
    ) -> (SurfaceKey, Option<Vec<usize>>) {
        let (axes, lo_bounds, hi_bounds, order) =
            crate::parametric::sort_surface_request(axes, lo_bounds, hi_bounds);
        (
            SurfaceKey {
                entry: e,
                orientation: o,
                m,
                axes,
                lo_bounds,
                hi_bounds,
            },
            order,
        )
    }

    /// Ensures the sorted-order surface for `key` is resident, computing it
    /// on miss (the stored entry is touched either way). The newest
    /// insertion is never evicted, so the entry is readable afterwards.
    fn ensure_surface(&mut self, e: usize, o: usize, key: &SurfaceKey) -> Result<(), EngineError> {
        if self.surfaces.get(key).is_some() {
            return Ok(());
        }
        let s = crate::parametric::exponent_surface(
            &self.orientation(e, o).nest,
            key.m,
            &key.axes,
            &key.lo_bounds,
            &key.hi_bounds,
        )?;
        let summary = summarize_surface(&s, &key.axes);
        let stored = StoredSurface {
            surface: s,
            summary,
        };
        let c = cost::surface(&stored);
        self.surfaces.insert(key.clone(), stored, c);
        Ok(())
    }

    /// Returns the memoized surface **and** summary in the caller's axis
    /// order, computing (in sorted-axes order) on miss. A permuted-axes
    /// repeat of a cached surface is a hit: the stored sorted-order surface
    /// is remapped exactly as [`crate::parametric::exponent_surface`] itself
    /// remaps, so the answer stays bitwise-identical to the free function.
    fn surface(
        &mut self,
        e: usize,
        o: usize,
        m: u64,
        axes: &[usize],
        lo_bounds: &[u64],
        hi_bounds: &[u64],
    ) -> Result<ExponentSurface, EngineError> {
        let (key, order) = self.surface_key(e, o, m, axes, lo_bounds, hi_bounds);
        self.ensure_surface(e, o, &key)?;
        let stored = self
            .surfaces
            .peek(&key)
            .ok_or(EngineError::Internal("surface memo missing after ensure"))?;
        Ok(match order {
            None => stored.surface.clone(),
            Some(order) => stored.surface.with_axis_order(&order),
        })
    }

    /// The wire-ready summary only — the [`Engine::answer`] path. Avoids
    /// cloning the stored surface (the engine's largest artifacts) when the
    /// request is already in canonical axis order.
    fn surface_summary(
        &mut self,
        e: usize,
        o: usize,
        m: u64,
        axes: &[usize],
        lo_bounds: &[u64],
        hi_bounds: &[u64],
    ) -> Result<SurfaceSummary, EngineError> {
        let (key, order) = self.surface_key(e, o, m, axes, lo_bounds, hi_bounds);
        self.ensure_surface(e, o, &key)?;
        let stored = self
            .surfaces
            .peek(&key)
            .ok_or(EngineError::Internal("surface memo missing after ensure"))?;
        Ok(match order {
            None => stored.summary.clone(),
            Some(order) => {
                let remapped = stored.surface.with_axis_order(&order);
                summarize_surface(&remapped, axes)
            }
        })
    }

    fn slice(
        &mut self,
        e: usize,
        o: usize,
        m: u64,
        axis: usize,
        lo_bound: u64,
        hi_bound: u64,
    ) -> Result<ValueFunction, EngineError> {
        let key = SliceKey {
            entry: e,
            m,
            canon_axis: self.canon_axis(e, o, axis),
            kind: SliceKind::Span { lo_bound, hi_bound },
        };
        if let Some(SliceEntry::Span(vf)) = self.slices.get(&key) {
            return Ok(vf.clone());
        }
        // Computed on the canonical nest (same program, same unique value
        // function — a 1-D value function carries no positional data), so
        // every permuted variant of the nest shares this entry. The sweep
        // probes through a pooled context, warm across queries.
        let vf = {
            let mut ctx = self.pool.checkout();
            exponent_vs_beta_with(
                &self.entry(e).canonical,
                m,
                key.canon_axis,
                lo_bound,
                hi_bound,
                &mut ctx,
            )?
        };
        let entry = SliceEntry::Span(vf.clone());
        let c = cost::slice_entry(&entry);
        self.slices.insert(key, entry, c);
        Ok(vf)
    }

    /// The memoized `exponent_at_bound` path: reads the exponent off a
    /// per-axis probe slice of the §7 value function, sweeping (and
    /// widening) that slice only when a queried bound exceeds the covered
    /// range — or when eviction dropped it, in which case the re-sweep
    /// produces the identical value function again.
    fn exponent_at_bound_memo(
        &mut self,
        e: usize,
        o: usize,
        m: u64,
        axis: usize,
        bound: u64,
    ) -> Result<(Rational, bool), EngineError> {
        let canon_axis = self.canon_axis(e, o, axis);
        let key = SliceKey {
            entry: e,
            m,
            canon_axis,
            kind: SliceKind::Probe,
        };
        let (covered, prev) = match self.slices.get(&key) {
            Some(SliceEntry::Probe(ps)) => (ps.hi_bound >= bound, ps.hi_bound),
            _ => (false, 1),
        };
        if !covered {
            // Widen past the request (and past the nest's own bound) so a
            // scan of nearby candidate bounds is answered by one sweep. Near
            // the top of the u64 range the power-of-two rounding would
            // overflow; sweep to the exact bound instead.
            // lint: allow(L008) canon_axis comes from Orientation::loop_perm, a permutation of the nest's axes
            let nest_bound = self.entry(e).canonical.bounds()[canon_axis];
            let hi = bound.max(nest_bound).max(prev).max(m);
            let hi = hi.checked_next_power_of_two().unwrap_or(hi);
            let vf = {
                let mut ctx = self.pool.checkout();
                exponent_vs_beta_with(&self.entry(e).canonical, m, canon_axis, 1, hi, &mut ctx)?
            };
            let entry = SliceEntry::Probe(PointSlice { hi_bound: hi, vf });
            let c = cost::slice_entry(&entry);
            // The newest insertion is never evicted, so the read below is
            // served even under a zero-cap configuration.
            self.slices.insert(key, entry, c);
        }
        let Some(SliceEntry::Probe(ps)) = self.slices.peek(&key) else {
            return Err(EngineError::Internal("probe slice missing after sweep"));
        };
        let beta = log::beta(bound as u128, m as u128);
        Ok((ps.vf.value_at(&beta), covered))
    }

    /// Installs a detached batch result into the memo caches, mirroring the
    /// sequential memoizing paths, and returns the caller-facing result
    /// (identical to what a post-install [`Engine::answer`] would return,
    /// without re-reading — or, for surfaces, re-remapping — the caches).
    pub(crate) fn install(
        &mut self,
        e: usize,
        o: usize,
        query: &Query,
        detached: Detached,
    ) -> Result<AnalysisResult, EngineError> {
        let result_key = |kind: ResultKind, m: u64| ResultKey {
            entry: e,
            orientation: o,
            m,
            kind,
        };
        Ok(match (query, detached.result) {
            (Query::LowerBound { cache_size }, AnalysisResult::LowerBound(lb)) => {
                let entry = CachedResult::Bound(lb.clone());
                let c = cost::result(&entry);
                self.results
                    .insert(result_key(ResultKind::Bound, *cache_size), entry, c);
                AnalysisResult::LowerBound(lb)
            }
            (Query::EnumeratedBound { cache_size }, AnalysisResult::EnumeratedBound(en)) => {
                let entry = CachedResult::Enumerated(en.clone());
                let c = cost::result(&entry);
                self.results
                    .insert(result_key(ResultKind::Enumerated, *cache_size), entry, c);
                AnalysisResult::EnumeratedBound(en)
            }
            (Query::OptimalTiling { cache_size }, AnalysisResult::OptimalTiling(t)) => {
                let entry = CachedResult::Tiling(t.clone());
                let c = cost::result(&entry);
                self.results
                    .insert(result_key(ResultKind::Tiling, *cache_size), entry, c);
                AnalysisResult::OptimalTiling(t)
            }
            (Query::Tightness { cache_size }, AnalysisResult::Tightness(t)) => {
                // Install the component artifacts first (only where absent —
                // like the sequential path's get_or_insert), then the report
                // last so it is the most recently used of the set.
                if let Some((bound, enumerated, tiling, certificate_ok)) = detached.tightness_parts
                {
                    for (kind, entry) in [
                        (ResultKind::Tiling, CachedResult::Tiling(tiling)),
                        (ResultKind::Bound, CachedResult::Bound(bound)),
                        (ResultKind::Enumerated, CachedResult::Enumerated(enumerated)),
                        (
                            ResultKind::Certificate,
                            CachedResult::Certificate(certificate_ok),
                        ),
                    ] {
                        let key = result_key(kind, *cache_size);
                        if !self.results.contains(&key) {
                            let c = cost::result(&entry);
                            self.results.insert(key, entry, c);
                        }
                    }
                }
                let entry = CachedResult::Tightness(t.clone());
                let c = cost::result(&entry);
                self.results
                    .insert(result_key(ResultKind::Tightness, *cache_size), entry, c);
                // Same derived-last recency policy as the sequential path:
                // the report's component inputs outlive the bulky report.
                self.touch_tightness_components(e, o, *cache_size);
                AnalysisResult::Tightness(t)
            }
            (
                Query::Surface {
                    cache_size,
                    axes,
                    lo_bounds,
                    hi_bounds,
                },
                AnalysisResult::Surface(summary),
            ) => {
                let (key, _) = self.surface_key(e, o, *cache_size, axes, lo_bounds, hi_bounds);
                let stored = detached
                    .surface
                    .ok_or(EngineError::Internal("surface result lacks its surface"))?;
                if !self.surfaces.contains(&key) {
                    let c = cost::surface(&stored);
                    self.surfaces.insert(key, stored, c);
                }
                AnalysisResult::Surface(summary)
            }
            (
                Query::Slice {
                    cache_size,
                    axis,
                    lo_bound,
                    hi_bound,
                },
                AnalysisResult::Slice(vf),
            ) => {
                let key = SliceKey {
                    entry: e,
                    m: *cache_size,
                    canon_axis: self.canon_axis(e, o, *axis),
                    kind: SliceKind::Span {
                        lo_bound: *lo_bound,
                        hi_bound: *hi_bound,
                    },
                };
                if !self.slices.contains(&key) {
                    let entry = SliceEntry::Span(vf.clone());
                    let c = cost::slice_entry(&entry);
                    self.slices.insert(key, entry, c);
                }
                AnalysisResult::Slice(vf)
            }
            _ => {
                return Err(EngineError::Internal(
                    "detached result variant does not match its query",
                ))
            }
        })
    }
}

/// A result computed off-engine during a batch fan-out, plus the extra
/// artifacts the memoizing path would have cached as side effects: the full
/// sorted-order surface for a surface query, and the component artifacts of
/// a tightness check (so a batched `Tightness` warms `LowerBound`,
/// `EnumeratedBound`, `OptimalTiling` and the certificate exactly like the
/// sequential path).
pub(crate) struct Detached {
    result: AnalysisResult,
    surface: Option<StoredSurface>,
    tightness_parts: Option<(LowerBound, EnumeratedBound, TilingSummary, bool)>,
}

/// Cost estimates of the cache entries installing `detached` would write,
/// in install order — five for a tightness result (tiling, bound,
/// enumerated, certificate, then the report last), one otherwise. Recorded
/// into trace events so the lab's replay charges simulated caches exactly
/// what the live install charged the real ones.
pub(crate) fn detached_costs(detached: &Detached) -> Vec<u64> {
    if let Some((bound, enumerated, tiling, _certificate_ok)) = &detached.tightness_parts {
        return vec![
            cost::tiling(tiling),
            cost::bound(bound),
            cost::enumerated(enumerated),
            cost::certificate(),
            cost::tightness(),
        ];
    }
    if let Some(stored) = &detached.surface {
        return vec![cost::surface(stored)];
    }
    match &detached.result {
        AnalysisResult::LowerBound(lb) => vec![cost::bound(lb)],
        AnalysisResult::EnumeratedBound(en) => vec![cost::enumerated(en)],
        AnalysisResult::OptimalTiling(t) => vec![cost::tiling(t)],
        AnalysisResult::Slice(vf) => vec![cost::value_function(vf)],
        // Tightness and Surface results always carry their parts/surface
        // and are handled above; an inconsistent Detached records nothing.
        AnalysisResult::Tightness(_) | AnalysisResult::Surface(_) => Vec::new(),
    }
}

/// Computes one query with no access to the engine's caches — the batch
/// fan-out worker (also the miss path of [`SharedEngine`], which computes
/// outside its shard locks). Every path here is bitwise-identical to the
/// corresponding memoizing path in [`Engine::answer`] (both bottom out in
/// path-independent solves), so batch answers equal sequential answers.
pub(crate) fn compute_detached(
    orientation_nest: &LoopNest,
    canonical: &LoopNest,
    loop_perm: &[usize],
    query: &Query,
    ctx: &mut projtile_lp::SolverContext,
) -> Result<Detached, EngineError> {
    let result = match query {
        Query::LowerBound { cache_size } => AnalysisResult::LowerBound(
            crate::bounds::arbitrary_bound_exponent(orientation_nest, *cache_size),
        ),
        Query::EnumeratedBound { cache_size } => AnalysisResult::EnumeratedBound(
            crate::bounds::enumerated_exponent(orientation_nest, *cache_size),
        ),
        Query::OptimalTiling { cache_size } => {
            let sol = crate::tiling_lp::solve_tiling_lp(orientation_nest, *cache_size);
            let tile_dims =
                crate::tiling_lp::tile_dims_from_lambda(orientation_nest, *cache_size, &sol.lambda);
            AnalysisResult::OptimalTiling(TilingSummary {
                lambda: sol.lambda,
                value: sol.value,
                tile_dims,
            })
        }
        Query::Tightness { cache_size } => {
            // Computed from its explicit components (exactly the fields
            // `check_tightness` derives) so the fan-out can hand them back
            // for installation — a batched Tightness warms LowerBound,
            // EnumeratedBound and OptimalTiling just like the sequential
            // path does.
            let m = *cache_size;
            let bound = crate::bounds::arbitrary_bound_exponent(orientation_nest, m);
            let enumerated = crate::bounds::enumerated_exponent(orientation_nest, m);
            let sol = crate::tiling_lp::solve_tiling_lp(orientation_nest, m);
            let tile_dims =
                crate::tiling_lp::tile_dims_from_lambda(orientation_nest, m, &sol.lambda);
            let tiling = TilingSummary {
                lambda: sol.lambda,
                value: sol.value,
                tile_dims,
            };
            let beta = crate::bounds::betas(orientation_nest, m);
            let certificate_ok = certificate_valid(orientation_nest, &beta, &bound);
            let report = compose_tightness_report(&tiling, &bound, &enumerated, certificate_ok);
            return Ok(Detached {
                result: AnalysisResult::Tightness(report),
                surface: None,
                tightness_parts: Some((bound, enumerated, tiling, certificate_ok)),
            });
        }
        Query::Surface {
            cache_size,
            axes,
            lo_bounds,
            hi_bounds,
        } => {
            // Compute in sorted-axes order (the storage order of the surface
            // memo) and derive the caller-order summary by the same exact
            // remap the free function applies.
            let (s_axes, s_lo, s_hi, order) =
                crate::parametric::sort_surface_request(axes, lo_bounds, hi_bounds);
            let s = crate::parametric::exponent_surface(
                orientation_nest,
                *cache_size,
                &s_axes,
                &s_lo,
                &s_hi,
            )?;
            let sorted_summary = summarize_surface(&s, &s_axes);
            let caller_summary = match &order {
                None => sorted_summary.clone(),
                Some(order) => {
                    let remapped = s.with_axis_order(order);
                    summarize_surface(&remapped, axes)
                }
            };
            return Ok(Detached {
                result: AnalysisResult::Surface(caller_summary),
                surface: Some(StoredSurface {
                    surface: s,
                    summary: sorted_summary,
                }),
                tightness_parts: None,
            });
        }
        Query::Slice {
            cache_size,
            axis,
            lo_bound,
            hi_bound,
        } => AnalysisResult::Slice(crate::parametric::exponent_vs_beta_with(
            canonical,
            *cache_size,
            // lint: allow(L008) axis was range-checked against num_loops by validate_query
            loop_perm[*axis],
            *lo_bound,
            *hi_bound,
            ctx,
        )?),
    };
    Ok(Detached {
        result,
        surface: None,
        tightness_parts: None,
    })
}

/// The cache-canonical form of a query: `Surface` axes sorted ascending
/// with their bound ranges permuted alongside — the form the surface memo
/// keys by. Every other variant is its own canonical form. Batch dedupe
/// compares these, so two permuted-axes requests for the same surface in
/// one batch compute it once (the second is answered by the exact remap).
pub(crate) fn canonical_query_form(query: &Query) -> Query {
    match query {
        Query::Surface {
            cache_size,
            axes,
            lo_bounds,
            hi_bounds,
        } => {
            let (axes, lo_bounds, hi_bounds, _) =
                crate::parametric::sort_surface_request(axes, lo_bounds, hi_bounds);
            Query::Surface {
                cache_size: *cache_size,
                axes,
                lo_bounds,
                hi_bounds,
            }
        }
        other => other.clone(),
    }
}

/// Validity of a lower bound's Theorem-3 certificate: the `ŝ` formula value
/// matches the claimed exponent and `ŝ` is feasible for the row-deleted HBL
/// LP. A pure function of `(nest, betas, bound)` — exactly the check
/// [`crate::tightness::check_tightness`] performs inline.
pub(crate) fn certificate_valid(nest: &LoopNest, beta: &[Rational], bound: &LowerBound) -> bool {
    let formula_value =
        exponent_from_s_hat_with_betas(nest, beta, bound.witness_subset, &bound.s_hat);
    let row_deleted = hbl_lp(nest, bound.witness_subset);
    formula_value == bound.exponent && row_deleted.is_feasible(&bound.s_hat)
}

/// Builds the Theorem-3 report from its component artifacts —
/// field-for-field what [`crate::tightness::check_tightness`] computes on the
/// same nest (shared by the memoizing path and the batch fan-out, so both
/// install identical state).
pub(crate) fn compose_tightness_report(
    tiling: &TilingSummary,
    bound: &LowerBound,
    enumerated: &EnumeratedBound,
    certificate_ok: bool,
) -> TightnessReport {
    TightnessReport {
        tiling_exponent: tiling.value.clone(),
        bound_exponent: bound.exponent.clone(),
        enumerated_exponent: enumerated.exponent.clone(),
        witness_subset: bound.witness_subset,
        tight: tiling.value == bound.exponent && certificate_ok,
    }
}

/// Builds the wire-ready digest of a surface.
pub(crate) fn summarize_surface(s: &ExponentSurface, axes: &[usize]) -> SurfaceSummary {
    SurfaceSummary {
        axes: axes.to_vec(),
        num_regions: s.num_regions(),
        pieces: s.pieces().into_iter().cloned().collect(),
        rendered: s.render_pieces(),
    }
}

/// Mirrors the assertions of the free functions as recoverable errors.
pub(crate) fn validate_query(nest: &LoopNest, query: &Query) -> Result<(), EngineError> {
    let d = nest.num_loops();
    if query.cache_size() < 2 {
        return Err(EngineError::InvalidQuery(
            "cache size must be at least 2 words".into(),
        ));
    }
    match query {
        Query::EnumeratedBound { .. } | Query::Tightness { .. } => {
            if d > 30 {
                return Err(EngineError::InvalidQuery(format!(
                    "subset enumeration over {d} > 30 indices refused"
                )));
            }
        }
        Query::Surface {
            axes,
            lo_bounds,
            hi_bounds,
            ..
        } => {
            if axes.is_empty() {
                return Err(EngineError::InvalidQuery(
                    "at least one swept axis required".into(),
                ));
            }
            if axes.len() != lo_bounds.len() || axes.len() != hi_bounds.len() {
                return Err(EngineError::InvalidQuery(
                    "one bound range per swept axis required".into(),
                ));
            }
            let mut seen: Vec<usize> = Vec::with_capacity(axes.len());
            for (&a, (&lo, &hi)) in axes.iter().zip(lo_bounds.iter().zip(hi_bounds.iter())) {
                if a >= d {
                    return Err(EngineError::InvalidQuery(format!(
                        "axis {a} out of range for a {d}-loop nest"
                    )));
                }
                if seen.contains(&a) {
                    return Err(EngineError::InvalidQuery(format!(
                        "axis {a} swept twice in the same surface"
                    )));
                }
                seen.push(a);
                if lo < 1 || hi < lo {
                    return Err(EngineError::InvalidQuery(format!(
                        "invalid bound range on axis {a}"
                    )));
                }
            }
        }
        Query::Slice {
            axis,
            lo_bound,
            hi_bound,
            ..
        } => {
            if *axis >= d {
                return Err(EngineError::InvalidQuery(format!(
                    "axis {axis} out of range for a {d}-loop nest"
                )));
            }
            if *lo_bound < 1 || hi_bound < lo_bound {
                return Err(EngineError::InvalidQuery("invalid bound range".into()));
            }
        }
        Query::LowerBound { .. } | Query::OptimalTiling { .. } => {}
    }
    Ok(())
}
