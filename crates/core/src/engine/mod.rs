//! The unified analysis session: one long-lived [`Engine`] answering typed
//! [`Query`]s over interned loop nests with cross-query artifact reuse.
//!
//! # Why a session API
//!
//! The paper's analyses share expensive intermediates: the Theorem-2 bound,
//! the `2^d` enumeration, the tiling LP, the Theorem-3 check and the §7
//! value functions all revolve around the same `β` vectors, the same HBL
//! constraint matrix, and the same warm simplex bases. The stateless free
//! functions (`communication_lower_bound`, `check_tightness`,
//! `exponent_surface`, …) rebuild all of it per call — fine for one-shot use,
//! wasteful for the repeated-query traffic of a compiler pass or an analysis
//! service that probes many variants of the same nest. The `Engine` makes
//! that workload pay amortized cost:
//!
//! * **Interning.** Nests are interned by their permutation-invariant
//!   [`projtile_loopnest::NestSignature`], so a caller that re-declares the
//!   same program with loops or arrays in a different order hits the same
//!   cache entry.
//! * **Artifact reuse.** Per interned nest the engine keeps the `β` vectors
//!   per cache size, a warm [`crate::hbl::HblFamily`] (its matrix is
//!   cache-size-independent), memoized §7 slices (shared across permuted
//!   variants — a value function carries no positional data), memoized
//!   surfaces keyed by `(axes, box)`, and every typed result it has computed.
//!   A `Tightness` query warms `LowerBound`, `EnumeratedBound` and
//!   `OptimalTiling` for free, and vice versa.
//! * **Exactness.** Engine answers are **bitwise-identical** to the retained
//!   free functions, which double as the cold differential oracles in the
//!   test suite. Everything the engine shares across queries is either
//!   path-independent by construction (canonical lex-min LP optima, unique
//!   optimal values, unique value functions) or cached per declaration order
//!   (vertex certificates, `λ` vectors).
//!
//! ```
//! use projtile_core::engine::{AnalysisResult, Engine, Query};
//! use projtile_loopnest::builders;
//!
//! let mut engine = Engine::new();
//! let nest = builders::matmul(512, 512, 8);
//! // First query computes; the repeat is a pure cache lookup.
//! let q = Query::Tightness { cache_size: 1 << 10 };
//! let first = engine.analyze(&nest, &q).unwrap();
//! let again = engine.analyze(&nest, &q).unwrap();
//! assert_eq!(first, again);
//! assert_eq!(engine.stats().hits, 1);
//! match first {
//!     AnalysisResult::Tightness(report) => assert!(report.tight),
//!     other => panic!("unexpected result {other:?}"),
//! }
//! ```

mod cache;
mod query;

pub use query::{AnalysisResult, EngineError, Query, SurfaceSummary, TilingSummary};

use std::collections::HashMap;
use std::fmt;

use projtile_arith::Rational;
use projtile_loopnest::{canonicalize, LoopNest, NestSignature};
use projtile_lp::ContextPool;
use projtile_par::par_map_with;

use crate::bounds::{EnumeratedBound, LowerBound};
use crate::parametric::ExponentSurface;
use cache::{summarize_surface, NestEntry};

/// Counters describing how an [`Engine`] resolved its queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Total queries answered (including batch members).
    pub queries: u64,
    /// Queries answered from a memoized result (pure lookups).
    pub hits: u64,
    /// Queries that had to compute (and then memoized) their result.
    pub misses: u64,
    /// Distinct canonical signatures interned.
    pub interned: u64,
}

/// A long-lived analysis session. See the [module docs](self) for the reuse
/// model; see [`Query`] for the request vocabulary.
#[derive(Default)]
pub struct Engine {
    entries: Vec<NestEntry>,
    index: HashMap<NestSignature, usize>,
    pool: ContextPool,
    stats: EngineStats,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("interned_nests", &self.entries.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Creates an empty session.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Interns `nest` (no analysis yet) and returns its canonical signature.
    /// Permuted re-declarations of the same program return the same
    /// signature and share one cache entry.
    pub fn intern(&mut self, nest: &LoopNest) -> NestSignature {
        let canon = canonicalize(nest);
        let sig = canon.signature();
        let _ = self.intern_with(nest, canon);
        sig
    }

    /// Number of distinct canonical signatures interned so far.
    pub fn num_interned(&self) -> usize {
        self.entries.len()
    }

    /// Counters for this session's lifetime.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Answers one typed query about `nest`, reusing every applicable cached
    /// artifact and memoizing what it computes. Results are bitwise-identical
    /// to the corresponding free function (see the module docs).
    pub fn analyze(
        &mut self,
        nest: &LoopNest,
        query: &Query,
    ) -> Result<AnalysisResult, EngineError> {
        self.stats.queries += 1;
        validate_query(nest, query)?;
        let (e, o) = self.intern_indices(nest);
        if self.entries[e].is_cached(o, query) {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.entries[e].answer(o, query, &self.pool)
    }

    /// Answers a batch of queries about `nest`, in input order.
    ///
    /// Already-memoized queries are answered by lookup; the remaining
    /// distinct queries are fanned out through `projtile_par` with one pooled
    /// warm solver context per worker chunk, then installed into the cache.
    /// Results are identical to issuing the queries one-by-one through
    /// [`Engine::analyze`] (pinned by tests): every parallel compute path is
    /// path-independent, so the fan-out cannot change any answer.
    pub fn analyze_batch(
        &mut self,
        nest: &LoopNest,
        queries: &[Query],
    ) -> Vec<Result<AnalysisResult, EngineError>> {
        self.stats.queries += queries.len() as u64;
        let validity: Vec<Option<EngineError>> = queries
            .iter()
            .map(|q| validate_query(nest, q).err())
            .collect();
        if validity.iter().all(|v| v.is_some()) {
            // Nothing valid to intern or compute.
            return validity
                .into_iter()
                .map(|v| Err(v.expect("all invalid")))
                .collect();
        }
        let (e, o) = self.intern_indices(nest);

        // The distinct valid queries that are not yet memoized.
        let mut pending: Vec<Query> = Vec::new();
        for (q, v) in queries.iter().zip(&validity) {
            if v.is_none() && !self.entries[e].is_cached(o, q) && !pending.contains(q) {
                pending.push(q.clone());
            }
        }
        self.stats.hits += queries
            .iter()
            .zip(&validity)
            .filter(|(q, v)| v.is_none() && !pending.contains(q))
            .count() as u64;
        self.stats.misses += pending.len() as u64;

        // Fan the pending queries out; per-worker pooled contexts warm-start
        // along each chunk. Only shared borrows of the engine are used here.
        let computed: Vec<(Query, Result<Detached, EngineError>)> = {
            let entry = &self.entries[e];
            let orientation_nest = &entry.orientations[o].nest;
            let canonical = &entry.canonical;
            let loop_perm = &entry.orientations[o].loop_perm;
            let pool = &self.pool;
            par_map_with(
                &pending,
                || pool.checkout(),
                |ctx, _, q| {
                    (
                        q.clone(),
                        compute_detached(orientation_nest, canonical, loop_perm, q, ctx),
                    )
                },
            )
        };

        // Install the computed results, then assemble answers by lookup.
        let mut errors: HashMap<Query, EngineError> = HashMap::new();
        for (q, res) in computed {
            match res {
                Ok(detached) => self.entries[e].install(o, &q, detached),
                Err(err) => {
                    errors.insert(q, err);
                }
            }
        }
        queries
            .iter()
            .zip(validity)
            .map(|(q, v)| {
                if let Some(err) = v {
                    return Err(err);
                }
                if let Some(err) = errors.get(q) {
                    return Err(err.clone());
                }
                self.entries[e].answer(o, q, &self.pool)
            })
            .collect()
    }

    /// The optimal exponent at one specific bound value along `axis` — the
    /// memoized form of [`crate::parametric::exponent_at_bound`]. The first
    /// query per `(cache size, axis)` sweeps a 1-D slice of the §7 value
    /// function once; every later bound on that axis (a JIT probing candidate
    /// specializations, say) is read off the slice without touching the
    /// solver. Answers are bitwise-identical to the cold oracle
    /// [`crate::parametric::exponent_at_bound_cold`].
    pub fn exponent_at_bound(
        &mut self,
        nest: &LoopNest,
        cache_size: u64,
        axis: usize,
        bound: u64,
    ) -> Result<Rational, EngineError> {
        self.stats.queries += 1;
        if cache_size < 2 {
            return Err(EngineError::InvalidQuery(
                "cache size must be at least 2 words".into(),
            ));
        }
        if axis >= nest.num_loops() {
            return Err(EngineError::InvalidQuery(format!(
                "axis {axis} out of range for a {}-loop nest",
                nest.num_loops()
            )));
        }
        if bound == 0 {
            return Err(EngineError::InvalidQuery("bound must be positive".into()));
        }
        let (e, o) = self.intern_indices(nest);
        let (value, was_hit) =
            self.entries[e].exponent_at_bound(o, cache_size, axis, bound, &self.pool)?;
        if was_hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        Ok(value)
    }

    /// The full memoized [`ExponentSurface`] for a [`Query::Surface`]-shaped
    /// request, for callers that need region geometry or slices beyond the
    /// wire-ready [`SurfaceSummary`].
    pub fn exponent_surface(
        &mut self,
        nest: &LoopNest,
        cache_size: u64,
        axes: &[usize],
        lo_bounds: &[u64],
        hi_bounds: &[u64],
    ) -> Result<ExponentSurface, EngineError> {
        let query = Query::Surface {
            cache_size,
            axes: axes.to_vec(),
            lo_bounds: lo_bounds.to_vec(),
            hi_bounds: hi_bounds.to_vec(),
        };
        self.stats.queries += 1;
        validate_query(nest, &query)?;
        let (e, o) = self.intern_indices(nest);
        if self.entries[e].is_cached(o, &query) {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.entries[e]
            .surface(o, cache_size, axes, lo_bounds, hi_bounds)
            .map(|(surface, _)| surface)
    }

    fn intern_indices(&mut self, nest: &LoopNest) -> (usize, usize) {
        let canon = canonicalize(nest);
        self.intern_with(nest, canon)
    }

    fn intern_with(
        &mut self,
        nest: &LoopNest,
        canon: projtile_loopnest::CanonicalNest,
    ) -> (usize, usize) {
        let sig = canon.signature();
        let e = match self.index.get(&sig) {
            Some(&e) => e,
            None => {
                self.entries.push(NestEntry::new(canon.nest().clone()));
                self.stats.interned += 1;
                let e = self.entries.len() - 1;
                self.index.insert(sig, e);
                e
            }
        };
        let o = self.entries[e].orientation_index(nest, &canon);
        (e, o)
    }
}

/// A result computed off-engine during a batch fan-out, plus the extra
/// artifacts the memoizing path would have cached as side effects: the full
/// surface object for a surface query, and the component artifacts of a
/// tightness check (so a batched `Tightness` warms `LowerBound`,
/// `EnumeratedBound` and `OptimalTiling` exactly like the sequential path).
struct Detached {
    result: AnalysisResult,
    surface: Option<ExponentSurface>,
    tightness_parts: Option<(LowerBound, EnumeratedBound, TilingSummary)>,
}

impl NestEntry {
    /// Installs a detached batch result into the memo maps.
    fn install(&mut self, o: usize, query: &Query, detached: Detached) {
        match (query, detached.result) {
            (Query::LowerBound { cache_size }, AnalysisResult::LowerBound(lb)) => {
                self.orientations[o]
                    .per_m
                    .entry(*cache_size)
                    .or_default()
                    .lower_bound = Some(lb);
            }
            (Query::EnumeratedBound { cache_size }, AnalysisResult::EnumeratedBound(en)) => {
                self.orientations[o]
                    .per_m
                    .entry(*cache_size)
                    .or_default()
                    .enumerated = Some(en);
            }
            (Query::OptimalTiling { cache_size }, AnalysisResult::OptimalTiling(t)) => {
                self.orientations[o]
                    .per_m
                    .entry(*cache_size)
                    .or_default()
                    .tiling = Some(t);
            }
            (Query::Tightness { cache_size }, AnalysisResult::Tightness(t)) => {
                let memo = self.orientations[o].per_m.entry(*cache_size).or_default();
                memo.tightness = Some(t);
                if let Some((bound, enumerated, tiling)) = detached.tightness_parts {
                    memo.lower_bound.get_or_insert(bound);
                    memo.enumerated.get_or_insert(enumerated);
                    memo.tiling.get_or_insert(tiling);
                }
            }
            (
                Query::Surface {
                    cache_size,
                    axes,
                    lo_bounds,
                    hi_bounds,
                },
                AnalysisResult::Surface(summary),
            ) => {
                let key = cache::SurfaceKey {
                    cache_size: *cache_size,
                    axes: axes.clone(),
                    lo_bounds: lo_bounds.clone(),
                    hi_bounds: hi_bounds.clone(),
                };
                let surface = detached.surface.expect("surface results carry the surface");
                if !self.orientations[o]
                    .surfaces
                    .iter()
                    .any(|(k, _, _)| *k == key)
                {
                    self.orientations[o].surfaces.push((key, surface, summary));
                }
            }
            (
                Query::Slice {
                    cache_size,
                    axis,
                    lo_bound,
                    hi_bound,
                },
                AnalysisResult::Slice(vf),
            ) => {
                let key = cache::SliceKey {
                    cache_size: *cache_size,
                    axis: self.orientations[o].loop_perm[*axis],
                    lo_bound: *lo_bound,
                    hi_bound: *hi_bound,
                };
                self.slices.entry(key).or_insert(vf);
            }
            _ => unreachable!("detached result variant matches its query"),
        }
    }
}

/// Computes one query with no access to the engine's caches — the batch
/// fan-out worker. Every path here is bitwise-identical to the corresponding
/// memoizing path in [`cache::NestEntry::answer`] (both bottom out in
/// path-independent solves), so batch answers equal sequential answers.
fn compute_detached(
    orientation_nest: &LoopNest,
    canonical: &LoopNest,
    loop_perm: &[usize],
    query: &Query,
    ctx: &mut projtile_lp::SolverContext,
) -> Result<Detached, EngineError> {
    let result = match query {
        Query::LowerBound { cache_size } => AnalysisResult::LowerBound(
            crate::bounds::arbitrary_bound_exponent(orientation_nest, *cache_size),
        ),
        Query::EnumeratedBound { cache_size } => AnalysisResult::EnumeratedBound(
            crate::bounds::enumerated_exponent(orientation_nest, *cache_size),
        ),
        Query::OptimalTiling { cache_size } => {
            let sol = crate::tiling_lp::solve_tiling_lp(orientation_nest, *cache_size);
            let tile_dims =
                crate::tiling_lp::tile_dims_from_lambda(orientation_nest, *cache_size, &sol.lambda);
            AnalysisResult::OptimalTiling(TilingSummary {
                lambda: sol.lambda,
                value: sol.value,
                tile_dims,
            })
        }
        Query::Tightness { cache_size } => {
            // Computed from its explicit components (exactly the fields
            // `check_tightness` derives) so the fan-out can hand them back
            // for installation — a batched Tightness warms LowerBound,
            // EnumeratedBound and OptimalTiling just like the sequential
            // path does.
            let m = *cache_size;
            let bound = crate::bounds::arbitrary_bound_exponent(orientation_nest, m);
            let enumerated = crate::bounds::enumerated_exponent(orientation_nest, m);
            let sol = crate::tiling_lp::solve_tiling_lp(orientation_nest, m);
            let tile_dims =
                crate::tiling_lp::tile_dims_from_lambda(orientation_nest, m, &sol.lambda);
            let tiling = TilingSummary {
                lambda: sol.lambda,
                value: sol.value,
                tile_dims,
            };
            let beta = crate::bounds::betas(orientation_nest, m);
            let report =
                cache::compose_tightness(orientation_nest, &beta, &tiling, &bound, &enumerated);
            return Ok(Detached {
                result: AnalysisResult::Tightness(report),
                surface: None,
                tightness_parts: Some((bound, enumerated, tiling)),
            });
        }
        Query::Surface {
            cache_size,
            axes,
            lo_bounds,
            hi_bounds,
        } => {
            let s = crate::parametric::exponent_surface(
                orientation_nest,
                *cache_size,
                axes,
                lo_bounds,
                hi_bounds,
            )?;
            let summary = summarize_surface(&s, axes);
            return Ok(Detached {
                result: AnalysisResult::Surface(summary),
                surface: Some(s),
                tightness_parts: None,
            });
        }
        Query::Slice {
            cache_size,
            axis,
            lo_bound,
            hi_bound,
        } => AnalysisResult::Slice(crate::parametric::exponent_vs_beta_with(
            canonical,
            *cache_size,
            loop_perm[*axis],
            *lo_bound,
            *hi_bound,
            ctx,
        )?),
    };
    Ok(Detached {
        result,
        surface: None,
        tightness_parts: None,
    })
}

/// Mirrors the assertions of the free functions as recoverable errors.
fn validate_query(nest: &LoopNest, query: &Query) -> Result<(), EngineError> {
    let d = nest.num_loops();
    if query.cache_size() < 2 {
        return Err(EngineError::InvalidQuery(
            "cache size must be at least 2 words".into(),
        ));
    }
    match query {
        Query::EnumeratedBound { .. } | Query::Tightness { .. } => {
            if d > 30 {
                return Err(EngineError::InvalidQuery(format!(
                    "subset enumeration over {d} > 30 indices refused"
                )));
            }
        }
        Query::Surface {
            axes,
            lo_bounds,
            hi_bounds,
            ..
        } => {
            if axes.is_empty() {
                return Err(EngineError::InvalidQuery(
                    "at least one swept axis required".into(),
                ));
            }
            if axes.len() != lo_bounds.len() || axes.len() != hi_bounds.len() {
                return Err(EngineError::InvalidQuery(
                    "one bound range per swept axis required".into(),
                ));
            }
            for (i, &a) in axes.iter().enumerate() {
                if a >= d {
                    return Err(EngineError::InvalidQuery(format!(
                        "axis {a} out of range for a {d}-loop nest"
                    )));
                }
                if axes[..i].contains(&a) {
                    return Err(EngineError::InvalidQuery(format!(
                        "axis {a} swept twice in the same surface"
                    )));
                }
                if lo_bounds[i] < 1 || hi_bounds[i] < lo_bounds[i] {
                    return Err(EngineError::InvalidQuery(format!(
                        "invalid bound range on axis {a}"
                    )));
                }
            }
        }
        Query::Slice {
            axis,
            lo_bound,
            hi_bound,
            ..
        } => {
            if *axis >= d {
                return Err(EngineError::InvalidQuery(format!(
                    "axis {axis} out of range for a {d}-loop nest"
                )));
            }
            if *lo_bound < 1 || hi_bound < lo_bound {
                return Err(EngineError::InvalidQuery("invalid bound range".into()));
            }
        }
        Query::LowerBound { .. } | Query::OptimalTiling { .. } => {}
    }
    Ok(())
}
