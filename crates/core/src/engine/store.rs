//! Crash-safe on-disk snapshot generations.
//!
//! A [`SnapshotStore`] owns a directory of numbered snapshot files
//! (`snap-00000042.json`). Publication is atomic with respect to crashes at
//! any instruction boundary:
//!
//! 1. the document is written to `snap.tmp` in the same directory;
//! 2. the file is fsynced, so the bytes are durable before they are named;
//! 3. `snap.tmp` is renamed to the next generation's name (POSIX rename is
//!    atomic within a filesystem);
//! 4. the directory is fsynced, so the rename itself is durable.
//!
//! A crash before step 3 leaves at most a stray `snap.tmp` — never a
//! half-written *numbered* generation — so previously published generations
//! are never clobbered. A crash between 3 and 4 can lose the newest name on
//! power failure but still never corrupts an older one. Readers therefore
//! walk generations newest-first and settle on the first that parses and
//! validates ([`SnapshotStore::restore_latest`]), which makes torn writes,
//! truncations, and garbage files a *freshness* problem, not a correctness
//! problem: the answers served after recovery are the answers of some
//! recently persisted good state.
//!
//! Old generations are garbage-collected after each successful publication,
//! keeping the newest `keep` files — enough history to survive a corrupt
//! newest generation (or several) without losing warm state entirely.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the staging file a publication writes before its atomic rename.
pub const SNAPSHOT_TMP: &str = "snap.tmp";

/// A directory of numbered snapshot generations with atomic publication,
/// bounded retention, and newest-valid-first recovery. See the module docs
/// for the crash-safety argument.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    keep: usize,
}

impl SnapshotStore {
    /// Opens (creating if needed) the store rooted at `dir`, retaining the
    /// newest `keep` generations after each publication. `keep` is clamped
    /// to at least 1 — a store that retained nothing could never recover.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> io::Result<SnapshotStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore {
            dir,
            keep: keep.max(1),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path a generation number maps to.
    pub fn generation_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("snap-{generation:08}.json"))
    }

    /// All published generations, newest first. Files that do not match the
    /// `snap-N.json` naming scheme (including a stray `snap.tmp` from an
    /// interrupted publication) are ignored.
    pub fn generations(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut found = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(digits) = name
                .strip_prefix("snap-")
                .and_then(|rest| rest.strip_suffix(".json"))
            else {
                continue;
            };
            if let Ok(generation) = digits.parse::<u64>() {
                found.push((generation, path));
            }
        }
        found.sort_by_key(|entry| std::cmp::Reverse(entry.0));
        Ok(found)
    }

    /// Atomically publishes `text` as the next generation and prunes
    /// generations beyond the retention limit. Returns the new generation
    /// number.
    pub fn publish(&self, text: &str) -> io::Result<u64> {
        let next = self.generations()?.first().map_or(1, |(g, _)| g + 1);
        let tmp = self.dir.join(SNAPSHOT_TMP);
        {
            use io::Write;
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.generation_path(next))?;
        // Durability of the rename itself: fsync the directory entry.
        fs::File::open(&self.dir)?.sync_all()?;
        self.collect_garbage()?;
        Ok(next)
    }

    /// Simulates a crash mid-publication for fault-injection tests and the
    /// service's `FaultPlan`: writes only the first `keep_bytes` bytes of
    /// `text` to the staging file and returns *without renaming* — exactly
    /// the on-disk state a process killed between write and rename leaves
    /// behind. Published generations are untouched.
    pub fn torn_publish(&self, text: &str, keep_bytes: usize) -> io::Result<()> {
        let cut = keep_bytes.min(text.len());
        fs::write(
            self.dir.join(SNAPSHOT_TMP),
            text.as_bytes().get(..cut).unwrap_or_default(),
        )
    }

    /// Walks generations newest-first and returns the first whose contents
    /// `restore` accepts, with its generation number — or `None` if no
    /// generation exists or none validates. Unreadable files and rejected
    /// documents are skipped, not deleted: recovery never destroys evidence.
    pub fn restore_latest<T, E>(
        &self,
        restore: impl Fn(&str) -> Result<T, E>,
    ) -> io::Result<Option<(u64, T)>> {
        for (generation, path) in self.generations()? {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            if let Ok(value) = restore(&text) {
                return Ok(Some((generation, value)));
            }
        }
        Ok(None)
    }

    /// Deletes all but the newest `keep` generations. Best-effort per file:
    /// a file that cannot be removed is left for the next pass.
    fn collect_garbage(&self) -> io::Result<()> {
        for (_, path) in self.generations()?.into_iter().skip(self.keep) {
            let _ = fs::remove_file(path);
        }
        Ok(())
    }
}
