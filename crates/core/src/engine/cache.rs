//! Bounded per-session artifact caches behind the [`crate::engine::Engine`].
//!
//! Since PR 5 every memo map of the engine is a cost-aware
//! [`projtile_cachesim::BoundedLru`] (approximate heap bytes as the cost
//! unit, caps set by [`crate::engine::EngineConfig`]), keyed at the engine
//! level so one budget governs each artifact class across *all* interned
//! nests:
//!
//! * **β vectors** ([`BetaKey`]) — per `(nest, cache size)`, canonical loop
//!   order, shared by every orientation;
//! * **typed results** ([`ResultKey`]) — per `(nest, orientation, cache
//!   size, kind)`: the `LowerBound`, `EnumeratedBound`, tiling summary and
//!   tightness report, plus the internal Theorem-3 certificate-validity bit
//!   ([`ResultKind::Certificate`]) that lets an evicted tightness report be
//!   recomposed from its surviving components without re-solving the
//!   row-deleted HBL LP;
//! * **§7 slices** ([`SliceKey`]) — per `(nest, cache size, canonical
//!   axis)`, both explicit `[lo, hi]` sweeps ([`SliceKind::Span`]) and the
//!   growing probe slices behind `exponent_at_bound`
//!   ([`SliceKind::Probe`]); a slice carries no positional data, so permuted
//!   variants share entries;
//! * **surfaces** ([`SurfaceKey`]) — per `(nest, orientation, cache size,
//!   sorted axes, box)`. Keys are canonicalized by sorting the swept axes
//!   (the box permuted alongside), so the same surface requested with
//!   permuted axes is a cache *hit* answered by an exact coordinate remap
//!   ([`crate::parametric::ExponentSurface::with_axis_order`]) — which is
//!   also precisely what the free function returns for that axis order.
//!
//! Eviction changes only *what is retained*, never *what is answered*: every
//! artifact is recomputed by the same deterministic, path-independent
//! routine that produced it, so answers stay bitwise-identical to the cold
//! free-function oracles under any cache pressure (pinned by the eviction
//! differential proptests).

use projtile_arith::Rational;
use projtile_lp::parametric::ValueFunction;

use crate::bounds::{EnumeratedBound, LowerBound};
use crate::engine::query::{SurfaceSummary, TilingSummary};
use crate::hbl::HblFamily;
use crate::parametric::ExponentSurface;
use crate::tightness::TightnessReport;
use projtile_loopnest::LoopNest;

/// Key of a memoized β vector: per `(interned nest, cache size)`, stored in
/// canonical loop order and permuted per orientation on read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BetaKey {
    pub entry: usize,
    pub m: u64,
}

/// Which typed artifact a [`ResultKey`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ResultKind {
    /// The Theorem-2 [`LowerBound`].
    Bound,
    /// The explicit `2^d` [`EnumeratedBound`].
    Enumerated,
    /// The optimal-tiling [`TilingSummary`].
    Tiling,
    /// The Theorem-3 [`TightnessReport`].
    Tightness,
    /// Validity of the cached lower bound's `(ŝ, ζ)` certificate — an
    /// internal component of the tightness report (never answered
    /// directly). Caching it separately lets an evicted report be
    /// recomposed from surviving components in O(1) solver work.
    Certificate,
}

/// Key of one typed result: vertex-carrying payloads are positional, so the
/// orientation (declaration order) is part of the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ResultKey {
    pub entry: usize,
    pub orientation: usize,
    pub m: u64,
    pub kind: ResultKind,
}

/// One memoized typed artifact.
#[derive(Debug, Clone)]
pub(crate) enum CachedResult {
    Bound(LowerBound),
    Enumerated(EnumeratedBound),
    Tiling(TilingSummary),
    Tightness(TightnessReport),
    Certificate(bool),
}

/// The two flavors of memoized 1-D value-function slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum SliceKind {
    /// An explicit `Query::Slice` sweep over `[lo_bound, hi_bound]`.
    Span { lo_bound: u64, hi_bound: u64 },
    /// The growing per-axis slice behind `exponent_at_bound`, covering
    /// `1..=hi` for a stored `hi` that widens on demand.
    Probe,
}

/// Key of a memoized slice, in canonical coordinates (slices carry no
/// positional data, so permuted variants of a nest share entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SliceKey {
    pub entry: usize,
    pub m: u64,
    /// Canonical loop position of the swept axis.
    pub canon_axis: usize,
    pub kind: SliceKind,
}

/// A growing probe slice: covers bounds `1..=hi_bound` and is re-swept
/// (wider) only when a queried bound exceeds the covered range.
#[derive(Debug, Clone)]
pub(crate) struct PointSlice {
    pub hi_bound: u64,
    pub vf: ValueFunction,
}

/// A memoized slice entry; the variant matches its key's [`SliceKind`].
#[derive(Debug, Clone)]
pub(crate) enum SliceEntry {
    Span(ValueFunction),
    Probe(PointSlice),
}

/// Key of a memoized surface. `axes` is **sorted ascending** (the box
/// permuted to match): permuted-axes requests canonicalize to the same key
/// and are answered by remapping the stored sorted-order surface.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SurfaceKey {
    pub entry: usize,
    pub orientation: usize,
    pub m: u64,
    pub axes: Vec<usize>,
    pub lo_bounds: Vec<u64>,
    pub hi_bounds: Vec<u64>,
}

/// A memoized surface in sorted-axes order, with its wire-ready summary.
#[derive(Debug, Clone)]
pub(crate) struct StoredSurface {
    pub surface: ExponentSurface,
    pub summary: SurfaceSummary,
}

/// One declaration order of an interned nest. Holds only identity (the
/// permutations and the oriented nest) plus the warm HBL solver; all
/// memoized artifacts live in the engine-level bounded caches.
pub(crate) struct Orientation {
    /// `original loop position → canonical position`.
    pub loop_perm: Vec<usize>,
    /// `original array position → canonical position`.
    pub array_perm: Vec<usize>,
    /// The nest in this orientation (the one the caller queries with).
    pub nest: LoopNest,
    /// Warm row-relaxed HBL solver, shared by every enumeration/tightness
    /// query of this orientation (its constraint matrix does not depend on
    /// the cache size). Never evicted (it is solver state, not a result)
    /// and never serialized (rebuilt lazily after a restore).
    pub hbl_family: Option<HblFamily>,
}

/// Identity of one interned canonical signature.
pub(crate) struct NestEntry {
    pub canonical: LoopNest,
    pub orientations: Vec<Orientation>,
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

/// Approximate retention costs (heap bytes) of the cached artifacts, used as
/// the cost unit of the bounded caches. The estimates are deliberately
/// simple — flat per-rational cost plus container overheads — because the
/// caps they are compared against are order-of-magnitude budgets, not exact
/// allocator accounting.
pub(crate) mod cost {
    use super::*;

    /// Flat estimate for one `Rational` (two small big-ints plus enum tags;
    /// large values under-count, which only makes eviction later).
    const RATIONAL: u64 = 48;
    /// Base overhead per cached entry (key, hash-map slot, list links).
    const ENTRY: u64 = 96;

    fn rationals(n: usize) -> u64 {
        24 + RATIONAL * n as u64
    }

    pub(crate) fn betas(v: &[Rational]) -> u64 {
        ENTRY + rationals(v.len())
    }

    pub(crate) fn value_function(vf: &ValueFunction) -> u64 {
        ENTRY + rationals(2 * vf.breakpoints.len())
    }

    pub(crate) fn slice_entry(s: &SliceEntry) -> u64 {
        match s {
            SliceEntry::Span(vf) => value_function(vf),
            SliceEntry::Probe(ps) => 8 + value_function(&ps.vf),
        }
    }

    pub(crate) fn surface(s: &StoredSurface) -> u64 {
        let regions = s.surface.surface().regions();
        let mut total = ENTRY + rationals(s.surface.axes().len());
        for r in regions {
            total += rationals(r.piece.gradient.len() + 1);
            total += rationals(r.witness.len());
            for h in &r.halfspaces {
                total += rationals(h.normal.len() + 1);
            }
        }
        for (pieces, rendered) in s.summary.pieces.iter().zip(&s.summary.rendered) {
            total += rationals(pieces.gradient.len() + 1) + rendered.len() as u64;
        }
        total
    }

    /// Cost of a cached Theorem-2 lower bound.
    pub(crate) fn bound(lb: &LowerBound) -> u64 {
        ENTRY + rationals(1 + lb.s_hat.len() + lb.zeta.len()) + 24
    }

    /// Cost of a cached `2^d` enumeration.
    pub(crate) fn enumerated(en: &EnumeratedBound) -> u64 {
        ENTRY + rationals(1) + rationals(en.per_subset.len()) + 16 * en.per_subset.len() as u64
    }

    /// Cost of a cached tiling summary.
    pub(crate) fn tiling(t: &TilingSummary) -> u64 {
        ENTRY + rationals(1 + t.lambda.len()) + 8 * t.tile_dims.len() as u64
    }

    /// Cost of a cached tightness report (payload-independent).
    pub(crate) fn tightness() -> u64 {
        ENTRY + rationals(3) + 16
    }

    /// Cost of a cached certificate bit (payload-independent).
    pub(crate) fn certificate() -> u64 {
        ENTRY + 1
    }

    pub(crate) fn result(r: &CachedResult) -> u64 {
        match r {
            CachedResult::Bound(lb) => bound(lb),
            CachedResult::Enumerated(en) => enumerated(en),
            CachedResult::Tiling(t) => tiling(t),
            CachedResult::Tightness(_) => tightness(),
            CachedResult::Certificate(_) => certificate(),
        }
    }
}
