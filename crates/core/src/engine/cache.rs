//! Per-nest artifact caches behind the [`crate::engine::Engine`].
//!
//! One [`NestEntry`] exists per interned canonical signature. It owns:
//!
//! * **orientation-independent artifacts**, stored once in canonical
//!   coordinates and shared by every permuted variant of the nest: the
//!   `β_i = log_M L_i` vectors per cache size, the memoized 1-D slices of the
//!   §7 value function (a slice is a property of the *program*, not of the
//!   declaration order, so permuted variants read the same entry), and the
//!   growing per-axis slices behind
//!   [`crate::engine::Engine::exponent_at_bound`];
//! * **per-orientation caches** ([`Orientation`]): the memoized typed results
//!   for one concrete declaration order (vertex-carrying payloads such as the
//!   `ŝ`/`ζ` certificate or the `λ` vector are positional, so they are cached
//!   per orientation to stay bitwise-identical to the free-function oracles),
//!   plus the warm [`HblFamily`] reused by every enumeration/tightness query
//!   of that orientation across cache sizes.

use std::collections::HashMap;

use projtile_arith::{log, Rational};
use projtile_loopnest::{CanonicalNest, LoopNest};
use projtile_lp::parametric::ValueFunction;
use projtile_lp::ContextPool;

use crate::bounds::{
    arbitrary_bound_exponent, exponent_from_s_hat_with_betas, select_best, EnumeratedBound,
    LowerBound,
};
use crate::engine::query::{AnalysisResult, EngineError, Query, SurfaceSummary, TilingSummary};
use crate::hbl::{hbl_lp, HblFamily};
use crate::parametric::{exponent_surface, exponent_vs_beta_with, ExponentSurface};
use crate::tightness::TightnessReport;
use crate::tiling_lp::{solve_tiling_lp, tile_dims_from_lambda};

/// Key of a memoized 1-D slice, in canonical coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SliceKey {
    pub cache_size: u64,
    /// Canonical loop position of the swept axis.
    pub axis: usize,
    pub lo_bound: u64,
    pub hi_bound: u64,
}

/// Key of a memoized surface, in the orientation's own coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SurfaceKey {
    pub cache_size: u64,
    pub axes: Vec<usize>,
    pub lo_bounds: Vec<u64>,
    pub hi_bounds: Vec<u64>,
}

/// A growing slice along one canonical axis, backing the memoized
/// `exponent_at_bound` path: covers bounds `1..=hi_bound` and is re-swept
/// (wider) only when a query exceeds the covered range.
pub(crate) struct PointSlice {
    pub hi_bound: u64,
    pub vf: ValueFunction,
}

/// Memoized typed results for one orientation at one cache size.
#[derive(Default)]
pub(crate) struct MemoAtM {
    pub lower_bound: Option<LowerBound>,
    pub enumerated: Option<EnumeratedBound>,
    pub tiling: Option<TilingSummary>,
    pub tightness: Option<TightnessReport>,
}

/// One declaration order of an interned nest.
pub(crate) struct Orientation {
    /// `original loop position → canonical position`.
    pub loop_perm: Vec<usize>,
    /// `original array position → canonical position`.
    pub array_perm: Vec<usize>,
    /// The nest in this orientation (the one the caller queries with).
    pub nest: LoopNest,
    /// Warm row-relaxed HBL solver, shared by every enumeration/tightness
    /// query of this orientation (its constraint matrix does not depend on
    /// the cache size).
    pub hbl_family: Option<HblFamily>,
    pub per_m: HashMap<u64, MemoAtM>,
    pub surfaces: Vec<(SurfaceKey, ExponentSurface, SurfaceSummary)>,
}

/// All cached state for one interned canonical signature.
pub(crate) struct NestEntry {
    pub canonical: LoopNest,
    /// `β` vectors per cache size, canonical loop order.
    pub betas: HashMap<u64, Vec<Rational>>,
    /// Memoized 1-D slices (canonical axis), shared across orientations.
    pub slices: HashMap<SliceKey, ValueFunction>,
    /// Growing per-axis slices behind `exponent_at_bound`, keyed by
    /// `(cache_size, canonical axis)`.
    pub point_slices: HashMap<(u64, usize), PointSlice>,
    pub orientations: Vec<Orientation>,
}

impl NestEntry {
    pub fn new(canonical: LoopNest) -> NestEntry {
        NestEntry {
            canonical,
            betas: HashMap::new(),
            slices: HashMap::new(),
            point_slices: HashMap::new(),
            orientations: Vec::new(),
        }
    }

    /// Finds or creates the orientation matching `canon`'s permutations.
    pub fn orientation_index(&mut self, nest: &LoopNest, canon: &CanonicalNest) -> usize {
        let loop_perm = canon.loop_permutation();
        let array_perm = canon.array_permutation();
        if let Some(i) = self
            .orientations
            .iter()
            .position(|o| o.loop_perm == loop_perm && o.array_perm == array_perm)
        {
            return i;
        }
        self.orientations.push(Orientation {
            loop_perm: loop_perm.to_vec(),
            array_perm: array_perm.to_vec(),
            nest: nest.clone(),
            hbl_family: None,
            per_m: HashMap::new(),
            surfaces: Vec::new(),
        });
        self.orientations.len() - 1
    }

    /// The `β` vector for cache size `m` in canonical loop order, computed
    /// once per `(nest, m)`.
    fn betas_canonical(&mut self, m: u64) -> Vec<Rational> {
        self.betas
            .entry(m)
            .or_insert_with(|| crate::bounds::betas(&self.canonical, m))
            .clone()
    }

    /// The `β` vector in orientation `o`'s loop order, permuted from the
    /// shared canonical vector (`log_M L` is a pure function of the bound, so
    /// the permuted vector is exactly `bounds::betas` of the oriented nest).
    fn betas_oriented(&mut self, o: usize, m: u64) -> Vec<Rational> {
        let canon = self.betas_canonical(m);
        let perm = &self.orientations[o].loop_perm;
        perm.iter().map(|&c| canon[c].clone()).collect()
    }

    /// `true` iff `query` is already memoized (a repeat query is a pure
    /// lookup).
    pub fn is_cached(&self, o: usize, query: &Query) -> bool {
        let orientation = &self.orientations[o];
        match query {
            Query::LowerBound { cache_size } => orientation
                .per_m
                .get(cache_size)
                .is_some_and(|m| m.lower_bound.is_some()),
            Query::EnumeratedBound { cache_size } => orientation
                .per_m
                .get(cache_size)
                .is_some_and(|m| m.enumerated.is_some()),
            Query::OptimalTiling { cache_size } => orientation
                .per_m
                .get(cache_size)
                .is_some_and(|m| m.tiling.is_some()),
            Query::Tightness { cache_size } => orientation
                .per_m
                .get(cache_size)
                .is_some_and(|m| m.tightness.is_some()),
            Query::Surface {
                cache_size,
                axes,
                lo_bounds,
                hi_bounds,
            } => {
                let key = SurfaceKey {
                    cache_size: *cache_size,
                    axes: axes.clone(),
                    lo_bounds: lo_bounds.clone(),
                    hi_bounds: hi_bounds.clone(),
                };
                orientation.surfaces.iter().any(|(k, _, _)| *k == key)
            }
            Query::Slice {
                cache_size,
                axis,
                lo_bound,
                hi_bound,
            } => self.slices.contains_key(&SliceKey {
                cache_size: *cache_size,
                axis: orientation.loop_perm[*axis],
                lo_bound: *lo_bound,
                hi_bound: *hi_bound,
            }),
        }
    }

    /// Answers `query` for orientation `o`, computing and memoizing on miss.
    pub fn answer(
        &mut self,
        o: usize,
        query: &Query,
        pool: &ContextPool,
    ) -> Result<AnalysisResult, EngineError> {
        match query {
            Query::LowerBound { cache_size } => self
                .lower_bound(o, *cache_size)
                .map(AnalysisResult::LowerBound),
            Query::EnumeratedBound { cache_size } => self
                .enumerated(o, *cache_size)
                .map(AnalysisResult::EnumeratedBound),
            Query::OptimalTiling { cache_size } => self
                .tiling(o, *cache_size)
                .map(AnalysisResult::OptimalTiling),
            Query::Tightness { cache_size } => self
                .tightness(o, *cache_size)
                .map(AnalysisResult::Tightness),
            Query::Surface {
                cache_size,
                axes,
                lo_bounds,
                hi_bounds,
            } => self
                .surface(o, *cache_size, axes, lo_bounds, hi_bounds)
                .map(|(_, summary)| AnalysisResult::Surface(summary)),
            Query::Slice {
                cache_size,
                axis,
                lo_bound,
                hi_bound,
            } => self
                .slice(o, *cache_size, *axis, *lo_bound, *hi_bound, pool)
                .map(AnalysisResult::Slice),
        }
    }

    pub fn lower_bound(&mut self, o: usize, m: u64) -> Result<LowerBound, EngineError> {
        if let Some(lb) = &self.orientations[o].per_m.entry(m).or_default().lower_bound {
            return Ok(lb.clone());
        }
        // Cold oracle path: the engine's answer *is* the free function's.
        let lb = arbitrary_bound_exponent(&self.orientations[o].nest, m);
        self.orientations[o]
            .per_m
            .get_mut(&m)
            .expect("slot created above")
            .lower_bound = Some(lb.clone());
        Ok(lb)
    }

    pub fn enumerated(&mut self, o: usize, m: u64) -> Result<EnumeratedBound, EngineError> {
        if let Some(en) = &self.orientations[o].per_m.entry(m).or_default().enumerated {
            return Ok(en.clone());
        }
        // Warm path through the orientation's persistent HblFamily: the
        // family's matrix is cache-size-independent, so re-enumerations at
        // other cache sizes (and tightness checks) re-enter the retained
        // basis instead of rebuilding it. Results are bitwise-identical to
        // `bounds::enumerated_exponent` (and its cold oracle): each subset's
        // solution is the canonical lex-min optimum — a property of the
        // program, not of the pivot path — and the selection rule is shared.
        let beta = self.betas_oriented(o, m);
        let orientation = &mut self.orientations[o];
        let d = orientation.nest.num_loops();
        let nest = orientation.nest.clone();
        let family = orientation
            .hbl_family
            .get_or_insert_with(|| HblFamily::new(&nest));
        let gray = (0..1u64 << d).map(|i| i ^ (i >> 1));
        let mut per_subset: Vec<(projtile_loopnest::IndexSet, Rational)> = gray
            .map(|mask| {
                let q = projtile_loopnest::IndexSet::from_bits(mask);
                let sol = family.solve(q);
                (q, exponent_from_s_hat_with_betas(&nest, &beta, q, &sol.s))
            })
            .collect();
        per_subset.sort_unstable_by_key(|(q, _)| q.bits());
        let en = select_best(per_subset);
        orientation
            .per_m
            .get_mut(&m)
            .expect("slot created above")
            .enumerated = Some(en.clone());
        Ok(en)
    }

    pub fn tiling(&mut self, o: usize, m: u64) -> Result<TilingSummary, EngineError> {
        if let Some(t) = &self.orientations[o].per_m.entry(m).or_default().tiling {
            return Ok(t.clone());
        }
        let nest = &self.orientations[o].nest;
        let sol = solve_tiling_lp(nest, m);
        let tile_dims = tile_dims_from_lambda(nest, m, &sol.lambda);
        let summary = TilingSummary {
            lambda: sol.lambda,
            value: sol.value,
            tile_dims,
        };
        self.orientations[o]
            .per_m
            .get_mut(&m)
            .expect("slot created above")
            .tiling = Some(summary.clone());
        Ok(summary)
    }

    pub fn tightness(&mut self, o: usize, m: u64) -> Result<TightnessReport, EngineError> {
        if let Some(t) = &self.orientations[o].per_m.entry(m).or_default().tightness {
            return Ok(t.clone());
        }
        // Composed from the shared artifacts — each the exact value the
        // corresponding free function computes — so the report is
        // field-for-field what `tightness::check_tightness` returns, while a
        // preceding LowerBound/EnumeratedBound/OptimalTiling query (or this
        // one) warms the others.
        let tiling = self.tiling(o, m)?;
        let bound = self.lower_bound(o, m)?;
        let enumerated = self.enumerated(o, m)?;
        let beta = self.betas_oriented(o, m);
        let nest = &self.orientations[o].nest;
        let report = compose_tightness(nest, &beta, &tiling, &bound, &enumerated);
        self.orientations[o]
            .per_m
            .get_mut(&m)
            .expect("slot created above")
            .tightness = Some(report.clone());
        Ok(report)
    }

    /// Returns the memoized surface and summary for the key, computing on
    /// miss.
    pub fn surface(
        &mut self,
        o: usize,
        m: u64,
        axes: &[usize],
        lo_bounds: &[u64],
        hi_bounds: &[u64],
    ) -> Result<(ExponentSurface, SurfaceSummary), EngineError> {
        let key = SurfaceKey {
            cache_size: m,
            axes: axes.to_vec(),
            lo_bounds: lo_bounds.to_vec(),
            hi_bounds: hi_bounds.to_vec(),
        };
        let orientation = &mut self.orientations[o];
        if let Some((_, s, summary)) = orientation.surfaces.iter().find(|(k, _, _)| *k == key) {
            return Ok((s.clone(), summary.clone()));
        }
        let s = exponent_surface(&orientation.nest, m, axes, lo_bounds, hi_bounds)?;
        let summary = summarize_surface(&s, axes);
        orientation.surfaces.push((key, s.clone(), summary.clone()));
        Ok((s, summary))
    }

    pub fn slice(
        &mut self,
        o: usize,
        m: u64,
        axis: usize,
        lo_bound: u64,
        hi_bound: u64,
        pool: &ContextPool,
    ) -> Result<ValueFunction, EngineError> {
        let key = SliceKey {
            cache_size: m,
            axis: self.orientations[o].loop_perm[axis],
            lo_bound,
            hi_bound,
        };
        if let Some(vf) = self.slices.get(&key) {
            return Ok(vf.clone());
        }
        // Computed on the canonical nest (same program, same unique value
        // function — a 1-D value function carries no positional data), so
        // every permuted variant of the nest shares this entry. The sweep
        // probes through a pooled context, warm across queries.
        let mut ctx = pool.checkout();
        let vf = exponent_vs_beta_with(&self.canonical, m, key.axis, lo_bound, hi_bound, &mut ctx)?;
        self.slices.insert(key, vf.clone());
        Ok(vf)
    }

    /// The memoized `exponent_at_bound` path: reads the exponent off a
    /// per-axis slice of the §7 value function, sweeping (and widening) that
    /// slice only when a queried bound exceeds the covered range.
    pub fn exponent_at_bound(
        &mut self,
        o: usize,
        m: u64,
        axis: usize,
        bound: u64,
        pool: &ContextPool,
    ) -> Result<(Rational, bool), EngineError> {
        let canon_axis = self.orientations[o].loop_perm[axis];
        let key = (m, canon_axis);
        let covered = self
            .point_slices
            .get(&key)
            .is_some_and(|ps| ps.hi_bound >= bound);
        if !covered {
            // Widen past the request (and past the nest's own bound) so a
            // scan of nearby candidate bounds is answered by one sweep. Near
            // the top of the u64 range the power-of-two rounding would
            // overflow; sweep to the exact bound instead.
            let nest_bound = self.canonical.bounds()[canon_axis];
            let prev = self.point_slices.get(&key).map_or(1, |ps| ps.hi_bound);
            let hi = bound.max(nest_bound).max(prev).max(m);
            let hi = hi.checked_next_power_of_two().unwrap_or(hi);
            let mut ctx = pool.checkout();
            let vf = exponent_vs_beta_with(&self.canonical, m, canon_axis, 1, hi, &mut ctx)?;
            self.point_slices
                .insert(key, PointSlice { hi_bound: hi, vf });
        }
        let ps = self.point_slices.get(&key).expect("slice ensured above");
        let beta = log::beta(bound as u128, m as u128);
        Ok((ps.vf.value_at(&beta), covered))
    }
}

/// Builds the Theorem-3 report from its three component artifacts —
/// field-for-field what [`crate::tightness::check_tightness`] computes on the
/// same nest (shared by the memoizing path and the batch fan-out, so both
/// install identical state).
pub(crate) fn compose_tightness(
    nest: &LoopNest,
    beta: &[Rational],
    tiling: &TilingSummary,
    bound: &LowerBound,
    enumerated: &EnumeratedBound,
) -> TightnessReport {
    let formula_value =
        exponent_from_s_hat_with_betas(nest, beta, bound.witness_subset, &bound.s_hat);
    let row_deleted = hbl_lp(nest, bound.witness_subset);
    let certificate_ok = formula_value == bound.exponent && row_deleted.is_feasible(&bound.s_hat);
    let tight = tiling.value == bound.exponent && certificate_ok;
    TightnessReport {
        tiling_exponent: tiling.value.clone(),
        bound_exponent: bound.exponent.clone(),
        enumerated_exponent: enumerated.exponent.clone(),
        witness_subset: bound.witness_subset,
        tight,
    }
}

/// Builds the wire-ready digest of a surface.
pub(crate) fn summarize_surface(s: &ExponentSurface, axes: &[usize]) -> SurfaceSummary {
    SurfaceSummary {
        axes: axes.to_vec(),
        num_regions: s.num_regions(),
        pieces: s.pieces().into_iter().cloned().collect(),
        rendered: s.render_pieces(),
    }
}
