//! Arbitrary-bound tile-size upper bounds and communication lower bounds
//! (Theorem 2, §4 of the paper).
//!
//! For every subset `Q ⊆ [d]` of loop indices treated as "small" and every
//! nonnegative `ŝ` satisfying the HBL constraints with the rows of `Q`
//! removed, the paper derives the tile-size upper bound `M^{k_Q(ŝ)}` with
//!
//! ```text
//! k_Q(ŝ) = Σ_i ŝ_i  +  Σ_{j ∈ Q : Σ_{i ∈ R_j} ŝ_i ≤ 1}  β_j · (1 − Σ_{i ∈ R_j} ŝ_i)
//! ```
//!
//! where `R_j` is the set of arrays whose support contains loop index `j` and
//! `β_j = log_M L_j`. The strongest such bound over all `(Q, ŝ)` is obtained
//! in one shot by the linear program (5.5)/(5.6) of the paper (the dual of the
//! tiling LP) with every index allowed to contribute:
//!
//! ```text
//! minimize  Σ_i ŝ_i + Σ_j β_j ζ_j
//! subject to ζ_j + Σ_{i ∈ R_j} ŝ_i ≥ 1   for every loop index j
//!            ŝ, ζ ≥ 0
//! ```
//!
//! (at the optimum `ζ_j = max(0, 1 − Σ_{R_j} ŝ_i)`, so the objective is
//! exactly `k_Q(ŝ)` for `Q = {j : ζ_j > 0}`). This module computes both the
//! strongest bound (via that LP) and the paper's explicit `2^d`-subset
//! enumeration, which uses the *optimal* row-deleted HBL solution for each `Q`
//! and is therefore an upper bound on the tile size that may be slightly
//! weaker; the test suite checks the expected relationships between the two.
//!
//! The resulting communication lower bound is
//! `(#iterations) · M / M^{k̂} = ∏ L_i · M^{1 − k̂}` words.

use projtile_arith::{log, Rational};
use projtile_loopnest::{IndexSet, LoopNest};
use projtile_lp::{solve, Constraint, LinearProgram, Relation};
use projtile_par::{par_map, par_map_with};
use serde::{Deserialize, Serialize};

use crate::hbl::{solve_hbl, HblFamily};

/// The strongest Theorem-2 bound, with the certificate that witnesses it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LowerBound {
    /// The tile-size exponent `k̂` (tile size is at most `M^{k̂}`).
    pub exponent: Rational,
    /// The witness subset `Q* = {j : ζ_j > 0}` from the dual optimum.
    pub witness_subset: IndexSet,
    /// The witness HBL weights `ŝ` (feasible for the HBL LP with the rows of
    /// `Q*` removed).
    pub s_hat: Vec<Rational>,
    /// The dual multipliers `ζ_j` of the loop-bound constraints.
    pub zeta: Vec<Rational>,
    /// Upper bound on tile size, `M^{k̂}`, as a float.
    pub tile_size_bound: f64,
    /// Communication lower bound `∏ L_i · M^{1 − k̂}` in words, as a float.
    pub words: f64,
}

/// The result of the paper's explicit subset enumeration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnumeratedBound {
    /// The best exponent found by the enumeration.
    pub exponent: Rational,
    /// The subset achieving it (smallest such subset on ties).
    pub best_subset: IndexSet,
    /// Every `(Q, k_Q)` pair, in mask order (useful for reports and plots).
    pub per_subset: Vec<(IndexSet, Rational)>,
}

/// The log-bounds `β_i = log_M L_i` of a nest, as exact rationals where
/// possible (see [`projtile_arith::log::beta`]).
pub fn betas(nest: &LoopNest, cache_size: u64) -> Vec<Rational> {
    nest.bounds()
        .iter()
        .map(|&l| log::beta(l as u128, cache_size as u128))
        .collect()
}

/// Builds the bound LP (5.5)/(5.6): variables `ŝ_1..ŝ_n, ζ_1..ζ_d`.
pub fn bound_lp(nest: &LoopNest, cache_size: u64) -> LinearProgram {
    bound_lp_for_betas(nest, betas(nest, cache_size))
}

/// [`bound_lp`] for explicitly given log-bounds `β_1..β_d`, which need not
/// come from integer loop bounds. The per-region Theorem-3 check of
/// [`crate::tightness::check_tightness_surface`] uses this to validate
/// strong duality at the (rational) witness point of every critical region
/// of an exponent surface.
// lint: allow(L008) assert_eq pins betas.len() == num_loops, established by validate_query
pub fn bound_lp_for_betas(nest: &LoopNest, beta: Vec<Rational>) -> LinearProgram {
    let n = nest.num_arrays();
    let d = nest.num_loops();
    assert_eq!(beta.len(), d, "one beta per loop required");
    let mut costs = vec![Rational::one(); n];
    costs.extend(beta);
    let mut lp = LinearProgram::minimize(costs);
    for j in 0..d {
        let mut coeffs = vec![Rational::zero(); n + d];
        for (i, c) in coeffs.iter_mut().enumerate().take(n) {
            if nest.support(i).contains(j) {
                *c = Rational::one();
            }
        }
        coeffs[n + j] = Rational::one();
        lp.add_constraint(Constraint::new(coeffs, Relation::Ge, Rational::one()));
    }
    lp
}

/// Computes the Theorem-2 exponent `k_Q(ŝ)` for a subset `Q` and an explicit
/// `ŝ` vector (which must satisfy the row-deleted HBL constraints for the
/// bound to be valid; this is the caller's responsibility).
pub fn exponent_from_s_hat(
    nest: &LoopNest,
    cache_size: u64,
    q: IndexSet,
    s_hat: &[Rational],
) -> Rational {
    exponent_from_s_hat_with_betas(nest, &betas(nest, cache_size), q, s_hat)
}

/// [`exponent_from_s_hat`] with the `β_i` precomputed by the caller, so sweeps
/// over many subsets (the `2^d` enumeration) compute the logs exactly once.
// lint: allow(L008) assert_eq pins dimension agreement established by validate_query
pub fn exponent_from_s_hat_with_betas(
    nest: &LoopNest,
    beta: &[Rational],
    q: IndexSet,
    s_hat: &[Rational],
) -> Rational {
    assert_eq!(
        s_hat.len(),
        nest.num_arrays(),
        "one weight per array required"
    );
    assert_eq!(beta.len(), nest.num_loops(), "one beta per loop required");
    let one = Rational::one();
    let mut k: Rational = s_hat.iter().fold(Rational::zero(), |acc, s| &acc + s);
    for j in q.iter() {
        let r_j_sum: Rational = (0..nest.num_arrays())
            .filter(|&a| nest.support(a).contains(j))
            .fold(Rational::zero(), |acc, a| &acc + &s_hat[a]);
        if r_j_sum <= one {
            // k += β_j · (1 − Σ_{R_j} ŝ): fused, one normalization.
            k.add_mul_assign(&beta[j], &(&one - &r_j_sum));
        }
    }
    k
}

/// The Theorem-2 exponent for a single subset `Q`, using the optimal solution
/// of the row-deleted HBL LP as `ŝ` (the paper's stated recipe).
pub fn exponent_for_subset(nest: &LoopNest, cache_size: u64, q: IndexSet) -> Rational {
    let sol = solve_hbl(nest, q);
    exponent_from_s_hat(nest, cache_size, q, &sol.s)
}

/// The paper's explicit `2^d` enumeration: evaluates `k_Q` for every subset
/// and reports the minimum. Because each `k_Q` uses the *optimal* row-deleted
/// HBL solution rather than the best feasible one, this can be marginally
/// weaker than [`arbitrary_bound_exponent`]; it is provided because it is the
/// form stated in the paper and is useful for reports.
///
/// The sweep is batched: subsets are visited in **Gray-code order** (each
/// differs from its neighbour in exactly one index, i.e. one right-hand-side
/// entry of the shared relaxed HBL program) and partitioned into contiguous
/// chunks across worker threads, each owning one warm-started [`HblFamily`]
/// whose basis re-entries compound along the chunk. Results are
/// bitwise-identical to the cold [`enumerated_exponent_cold`] (both paths
/// report the canonical lex-min optimum of each subset's LP, a property of
/// the program rather than of the pivot path), and the cold form is retained
/// as the differential oracle.
///
/// # Panics
/// Panics if the nest has more than 30 loops (like
/// [`IndexSet::all_subsets`]: the sweep is exponential in `d`).
// lint: allow(L008) asserts pin nest/betas dimension agreement checked at the surface
pub fn enumerated_exponent(nest: &LoopNest, cache_size: u64) -> EnumeratedBound {
    assert!(cache_size >= 2, "cache size must be at least 2 words");
    let d = nest.num_loops();
    assert!(
        d <= 30,
        "subset enumeration over more than 30 indices refused"
    );
    // One betas computation shared by all 2^d subset evaluations.
    let beta = betas(nest, cache_size);
    let gray: Vec<u64> = (0..1u64 << d).map(|i| i ^ (i >> 1)).collect();
    let evaluated: Vec<(IndexSet, Rational)> = par_map_with(
        &gray,
        || HblFamily::new(nest),
        |family, _, &mask| {
            let q = IndexSet::from_bits(mask);
            let sol = family.solve(q);
            (q, exponent_from_s_hat_with_betas(nest, &beta, q, &sol.s))
        },
    );
    // Report per-subset results in mask order, like the cold enumeration.
    let mut per_subset: Vec<(IndexSet, Rational)> = evaluated;
    per_subset.sort_unstable_by_key(|(q, _)| q.bits());
    select_best(per_subset)
}

/// The pre-batching form of [`enumerated_exponent`]: one independent cold LP
/// solve per subset. Kept as the differential oracle for the warm-started
/// sweep (the test suite asserts exact equality of the full result).
pub fn enumerated_exponent_cold(nest: &LoopNest, cache_size: u64) -> EnumeratedBound {
    assert!(cache_size >= 2, "cache size must be at least 2 words");
    let d = nest.num_loops();
    let subsets: Vec<IndexSet> = IndexSet::all_subsets(d).collect();
    let beta = betas(nest, cache_size);
    let per_subset: Vec<(IndexSet, Rational)> = par_map(&subsets, |&q| {
        let sol = solve_hbl(nest, q);
        (q, exponent_from_s_hat_with_betas(nest, &beta, q, &sol.s))
    });
    select_best(per_subset)
}

/// Picks the minimum exponent (ties: smallest subset, then mask order) from a
/// mask-ordered per-subset list.
// lint: allow(L008) expect: the candidate list is non-empty by construction (one entry per vertex)
pub(crate) fn select_best(per_subset: Vec<(IndexSet, Rational)>) -> EnumeratedBound {
    let (best_subset, exponent) = per_subset
        .iter()
        .min_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.len().cmp(&b.0.len())))
        .map(|(q, k)| (*q, k.clone()))
        .expect("at least the empty subset is evaluated");
    EnumeratedBound {
        exponent,
        best_subset,
        per_subset,
    }
}

/// Computes the strongest Theorem-2 bound by solving the bound LP, and returns
/// it together with its `(Q, ŝ, ζ)` certificate.
///
/// ```
/// use projtile_arith::{int, ratio};
/// use projtile_core::bounds::arbitrary_bound_exponent;
/// use projtile_loopnest::builders;
///
/// let m = 1u64 << 10;
/// // All bounds large: the classical exponent 3/2.
/// let lb = arbitrary_bound_exponent(&builders::matmul(512, 512, 512), m);
/// assert_eq!(lb.exponent, ratio(3, 2));
/// // Matrix-vector (L3 = 1): Theorem 2 sharpens it to 1, i.e. the bound
/// // becomes the full matrix size L1·L2 — stronger than §3's L1·L2/√M.
/// let lb = arbitrary_bound_exponent(&builders::matvec(512, 512), m);
/// assert_eq!(lb.exponent, int(1));
/// assert_eq!(lb.words, (512.0 * 512.0));
/// ```
// lint: allow(L008) asserts pin validated query dimensions, covered by the enumerated differential oracle
pub fn arbitrary_bound_exponent(nest: &LoopNest, cache_size: u64) -> LowerBound {
    assert!(cache_size >= 2, "cache size must be at least 2 words");
    let n = nest.num_arrays();
    let d = nest.num_loops();
    let lp = bound_lp(nest, cache_size);
    let sol = solve(&lp).expect("the bound LP is always feasible and bounded");
    let s_hat = sol.values[..n].to_vec();
    let zeta = sol.values[n..n + d].to_vec();
    let witness_subset = IndexSet::from_indices((0..d).filter(|&j| zeta[j].is_positive()));
    let exponent = sol.objective_value;
    let m = cache_size as f64;
    let tile_size_bound = m.powf(exponent.to_f64());
    let ops = nest.iteration_space_size() as f64;
    let words = ops * m.powf(1.0 - exponent.to_f64());
    LowerBound {
        exponent,
        witness_subset,
        s_hat,
        zeta,
        tile_size_bound,
        words,
    }
}

/// The communication lower bound in words (Theorem 2 followed by the
/// tiles-to-words argument of §2): `∏ L_i · M^{1 − k̂}`.
pub fn communication_lower_bound(nest: &LoopNest, cache_size: u64) -> LowerBound {
    arbitrary_bound_exponent(nest, cache_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_arith::{int, ratio};
    use projtile_loopnest::builders;

    #[test]
    fn matmul_large_bounds_recovers_classical_exponent() {
        // All bounds >= sqrt(M): k̂ = 3/2 and no loop-bound constraint binds.
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 8, 1 << 8, 1 << 8);
        let lb = arbitrary_bound_exponent(&nest, m);
        assert_eq!(lb.exponent, ratio(3, 2));
        assert_eq!(lb.witness_subset, IndexSet::empty());
        assert!(lb.zeta.iter().all(|z| z.is_zero()));
        let expect_words = (1u128 << 24) as f64 / (m as f64).sqrt();
        assert!((lb.words - expect_words).abs() / expect_words < 1e-9);
        // Enumeration agrees exactly here.
        let en = enumerated_exponent(&nest, m);
        assert_eq!(en.exponent, ratio(3, 2));
        assert_eq!(en.best_subset, IndexSet::empty());
        assert_eq!(en.per_subset.len(), 8);
    }

    #[test]
    fn matvec_lower_bound_is_input_size() {
        // §6.1: with L3 = 1 the bound becomes L1·L2 (A2 must be read entirely).
        let m = 1u64 << 10;
        let l1 = 1u64 << 7;
        let l2 = 1u64 << 9;
        let nest = builders::matvec(l1, l2);
        let lb = arbitrary_bound_exponent(&nest, m);
        assert_eq!(lb.exponent, int(1));
        assert!((lb.words - (l1 * l2) as f64).abs() < 1e-6);
        // The classical bound would have claimed L1·L2 / sqrt(M), which is weaker.
        assert!(lb.words > (l1 * l2) as f64 / (m as f64).sqrt());
        // The witness subset contains the small index x3.
        let k_pos = nest.index_position("k").unwrap();
        assert!(lb.witness_subset.contains(k_pos));
    }

    #[test]
    fn matmul_small_l3_exponent_is_one_plus_beta3() {
        // §6.1: for L3 <= sqrt(M), k̂ = 1 + β3 (tile size M·L3); beyond sqrt(M)
        // the classical 3/2 takes over.
        let m = 1u64 << 10; // sqrt(M) = 32 = 2^5
        for log_l3 in 0..=5u32 {
            let l3 = 1u64 << log_l3;
            let nest = builders::matmul(1 << 8, 1 << 8, l3);
            let lb = arbitrary_bound_exponent(&nest, m);
            let beta3 = ratio(log_l3 as i64, 10);
            assert_eq!(lb.exponent, &int(1) + &beta3, "l3 = {l3}");
            let expect_tile = (m * l3) as f64;
            assert!((lb.tile_size_bound - expect_tile).abs() / expect_tile < 1e-9);
            // Enumeration also achieves the same exponent (via Q = {x3}).
            let en = enumerated_exponent(&nest, m);
            assert_eq!(en.exponent, lb.exponent, "l3 = {l3}");
        }
        for log_l3 in 5..=8u32 {
            let nest = builders::matmul(1 << 8, 1 << 8, 1 << log_l3);
            let lb = arbitrary_bound_exponent(&nest, m);
            assert_eq!(lb.exponent, ratio(3, 2), "l3 = 2^{log_l3}");
        }
    }

    #[test]
    fn full_matmul_bound_is_max_of_four_terms() {
        // §6.1 conclusion: the tight bound is
        // max(L1 L2 L3 / sqrt(M), L1 L2, L2 L3, L1 L3), with the §6.3 caveat
        // that the model always charges at least M words per (single) tile, so
        // the formula additionally saturates at M when everything fits in cache.
        let m = 1u64 << 10;
        for (l1, l2, l3) in [
            (1u64 << 8, 1u64 << 8, 1u64 << 8),
            (1 << 8, 1 << 8, 1),
            (1 << 9, 1 << 4, 2),
            (1 << 3, 1 << 9, 1 << 2),
            (1 << 2, 1 << 2, 1 << 2),
        ] {
            let nest = builders::matmul(l1, l2, l3);
            let lb = arbitrary_bound_exponent(&nest, m);
            let classical = (l1 * l2 * l3) as f64 / (m as f64).sqrt();
            let expect = classical
                .max((l1 * l2) as f64)
                .max((l2 * l3) as f64)
                .max((l1 * l3) as f64)
                .max(m as f64);
            assert!(
                (lb.words - expect).abs() / expect < 1e-9,
                "({l1},{l2},{l3}): got {} expected {}",
                lb.words,
                expect
            );
        }
    }

    #[test]
    fn nbody_exponents_match_section_6_3() {
        let m = 1u64 << 8; // M = 256
                           // Both bounds large: tile size M^2, i.e. exponent 2.
        let lb = arbitrary_bound_exponent(&builders::nbody(1 << 10, 1 << 10), m);
        assert_eq!(lb.exponent, int(2));
        // L1 small: tile size L1 * M -> exponent β1 + 1.
        let lb = arbitrary_bound_exponent(&builders::nbody(1 << 4, 1 << 10), m);
        assert_eq!(lb.exponent, &ratio(4, 8) + &int(1));
        // Both small: tile size L1 * L2 -> exponent β1 + β2.
        let lb = arbitrary_bound_exponent(&builders::nbody(1 << 4, 1 << 6), m);
        assert_eq!(lb.exponent, &ratio(4, 8) + &ratio(6, 8));
    }

    #[test]
    fn strongest_bound_never_weaker_than_classical_or_enumeration() {
        for seed in 0..15u64 {
            let nest = builders::random_projective(seed, 4, 4, (1, 256));
            let m = 1u64 << 6;
            let lb = arbitrary_bound_exponent(&nest, m);
            let classical = crate::hbl::hbl_exponent(&nest);
            let en = enumerated_exponent(&nest, m);
            // k̂ <= k_HBL (Q = ∅ with the optimal HBL weights is feasible for
            // the bound LP with ζ chosen as the shortfalls).
            assert!(lb.exponent <= classical, "seed {seed}");
            // The LP bound is at least as strong as the explicit enumeration.
            assert!(lb.exponent <= en.exponent, "seed {seed}");
            // Every enumerated subset gives a valid (>= k̂) upper bound.
            assert!(
                en.per_subset.iter().all(|(_, k)| *k >= lb.exponent),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn warm_enumeration_is_bitwise_identical_to_cold_oracle() {
        // The batched Gray-code sweep with warm-started per-worker solvers
        // must reproduce the one-cold-solve-per-subset oracle exactly —
        // including every per-subset exponent and the tie-broken best subset.
        for seed in 0..10u64 {
            let nest = builders::random_projective(seed, 5, 4, (1, 256));
            for m in [4u64, 1 << 6, 1 << 10] {
                let warm = enumerated_exponent(&nest, m);
                let cold = enumerated_exponent_cold(&nest, m);
                assert_eq!(warm, cold, "seed {seed}, M={m}");
            }
        }
        // Also on the worked examples used throughout the test suite.
        let m = 1u64 << 10;
        for nest in [
            builders::matmul(1 << 8, 1 << 8, 1 << 8),
            builders::matmul(1 << 8, 1 << 8, 1),
            builders::matvec(1 << 7, 1 << 9),
            builders::nbody(1 << 4, 1 << 6),
        ] {
            assert_eq!(
                enumerated_exponent(&nest, m),
                enumerated_exponent_cold(&nest, m),
                "{nest}"
            );
        }
    }

    #[test]
    fn witness_certificate_is_consistent() {
        // The (Q*, ŝ) certificate must reproduce the exponent through the
        // Theorem-2 formula and satisfy the row-deleted HBL constraints.
        for seed in 0..10u64 {
            let nest = builders::random_projective(seed, 4, 3, (1, 128));
            let m = 1u64 << 8;
            let lb = arbitrary_bound_exponent(&nest, m);
            let k_from_formula = exponent_from_s_hat(&nest, m, lb.witness_subset, &lb.s_hat);
            assert_eq!(k_from_formula, lb.exponent, "seed {seed}");
            let row_deleted = crate::hbl::hbl_lp(&nest, lb.witness_subset);
            assert!(row_deleted.is_feasible(&lb.s_hat), "seed {seed}");
        }
    }

    #[test]
    fn exponent_is_monotone_in_bounds() {
        // Growing a loop bound can only increase (or keep) the tile-size
        // exponent: larger iteration spaces never get *smaller* optimal tiles.
        let m = 1u64 << 10;
        let mut prev = Rational::zero();
        for log_l in 0..=8u32 {
            let nest = builders::matmul(1 << 8, 1 << 8, 1 << log_l);
            let k = arbitrary_bound_exponent(&nest, m).exponent;
            assert!(k >= prev, "exponent decreased at L3 = 2^{log_l}");
            prev = k;
        }
    }

    #[test]
    fn exponent_from_any_feasible_s_hat_dominates_optimum() {
        // Theorem 2 holds for any feasible ŝ; the all-ones vector is always
        // feasible for every row-deleted LP, so its exponent dominates k̂.
        let nest = builders::matmul(1 << 3, 1 << 8, 1 << 2);
        let m = 1u64 << 10;
        let ones = vec![Rational::one(); nest.num_arrays()];
        let best = arbitrary_bound_exponent(&nest, m);
        for q in IndexSet::all_subsets(3) {
            let loose = exponent_from_s_hat(&nest, m, q, &ones);
            assert!(loose >= best.exponent);
        }
    }

    #[test]
    fn betas_are_exact_for_power_of_two_instances() {
        let nest = builders::matmul(1 << 4, 1 << 6, 1 << 2);
        let b = betas(&nest, 1 << 8);
        assert_eq!(b, vec![ratio(1, 2), ratio(3, 4), ratio(1, 4)]);
    }

    #[test]
    fn bound_lp_dimensions() {
        let nest = builders::pointwise_conv(4, 4, 4, 4, 4);
        let lp = bound_lp(&nest, 256);
        assert_eq!(lp.num_vars(), nest.num_arrays() + nest.num_loops());
        assert_eq!(lp.num_constraints(), nest.num_loops());
    }

    #[test]
    fn singleton_cache_guard() {
        let nest = builders::matmul(4, 4, 4);
        let res = std::panic::catch_unwind(|| arbitrary_bound_exponent(&nest, 1));
        assert!(res.is_err());
    }
}
