//! Distributed-memory processor grids (§7, "Discussion and future work").
//!
//! The paper notes that its memory model generalizes to multiprocessor
//! machines, and that the analysis "provides evidence for the intuition that
//! the best way to split projective loop-nest tasks up on a multiprocessor
//! system is to assign each processor a rectangular subset of the iteration
//! space". This module makes that remark executable for power-of-two processor
//! counts: it searches the processor grids `p_1 × ... × p_d = P` (each
//! processor owning an `L_1/p_1 × ... × L_d/p_d` block) and returns the grid
//! minimizing the per-processor data footprint
//! `Σ_j ∏_{i ∈ supp(φ_j)} ⌈L_i / p_i⌉`, which is the volume of remote data a
//! processor must receive to execute its block (the distributed analogue of
//! the per-tile footprint in the sequential model).

use std::cmp::Ordering;

use projtile_loopnest::LoopNest;
use projtile_par::par_reduce;

/// A processor grid and its communication summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessorGrid {
    /// Processors along each loop axis (`∏ dims == P`).
    pub dims: Vec<u64>,
    /// Block of iteration space owned by one processor (ceil division).
    pub block: Vec<u64>,
    /// Words of array data one processor's block touches (its receive volume).
    pub per_processor_footprint: u128,
}

/// Enumerates every way to write `2^log_p` as an ordered product of `d`
/// power-of-two factors.
fn power_of_two_grids(d: usize, log_p: u32) -> Vec<Vec<u32>> {
    fn rec(d: usize, remaining: u32, current: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if d == 1 {
            current.push(remaining);
            out.push(current.clone());
            current.pop();
            return;
        }
        for e in 0..=remaining {
            current.push(e);
            rec(d - 1, remaining - e, current, out);
            current.pop();
        }
    }
    let mut out = Vec::new();
    rec(d, log_p, &mut Vec::new(), &mut out);
    out
}

/// Finds the communication-minimizing processor grid for `nest` over
/// `P = 2^log_num_processors` processors.
///
/// Grid dimensions never exceed the corresponding loop bound (a processor must
/// own at least one iteration along every axis); if `P` is larger than the
/// iteration space allows, the grid saturates at the loop bounds.
///
/// # Panics
/// Panics if `log_num_processors > 30` (the enumeration is over compositions
/// of the exponent; real machines are far below this).
pub fn optimal_processor_grid(nest: &LoopNest, log_num_processors: u32) -> ProcessorGrid {
    assert!(
        log_num_processors <= 30,
        "unreasonably large processor count"
    );
    let d = nest.num_loops();
    let bounds = nest.bounds();
    let candidates = power_of_two_grids(d, log_num_processors);

    // A parallel min-reduction: every worker folds its own chunk of
    // candidates into a single best grid, and only the per-chunk champions
    // are compared on the calling thread, so the full candidate list is
    // never materialized as evaluated grids. Keeping the earlier grid on
    // exact ties reproduces the sequential (mask-order) tie-breaking.
    let better = |a: ProcessorGrid, b: ProcessorGrid| -> ProcessorGrid {
        let ord = a
            .per_processor_footprint
            .cmp(&b.per_processor_footprint)
            .then_with(|| a.dims.cmp(&b.dims));
        if ord == Ordering::Greater {
            b
        } else {
            a
        }
    };
    par_reduce(
        &candidates,
        None,
        |exps| {
            let dims: Vec<u64> = exps
                .iter()
                .zip(&bounds)
                .map(|(&e, &l)| (1u64 << e).min(l))
                .collect();
            let block: Vec<u64> = bounds
                .iter()
                .zip(&dims)
                .map(|(&l, &p)| l.div_ceil(p))
                .collect();
            let per_processor_footprint = nest.tile_footprint(&block);
            Some(ProcessorGrid {
                dims,
                block,
                per_processor_footprint,
            })
        },
        |a, b| match (a, b) {
            (Some(a), Some(b)) => Some(better(a, b)),
            (a, b) => a.or(b),
        },
    )
    .expect("at least one grid candidate exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_loopnest::builders;

    #[test]
    fn grid_enumeration_counts_compositions() {
        // Number of ways to split exponent k over d axes is C(k + d - 1, d - 1).
        assert_eq!(power_of_two_grids(3, 0).len(), 1);
        assert_eq!(power_of_two_grids(3, 2).len(), 6);
        assert_eq!(power_of_two_grids(2, 4).len(), 5);
        for grid in power_of_two_grids(3, 6) {
            assert_eq!(grid.iter().sum::<u32>(), 6);
        }
    }

    #[test]
    fn cubic_matmul_gets_a_cubic_grid() {
        // 512^3 matmul on 64 processors: the balanced 4x4x4 grid minimizes the
        // per-processor footprint (the distributed analogue of the square tile).
        let nest = builders::matmul(1 << 9, 1 << 9, 1 << 9);
        let grid = optimal_processor_grid(&nest, 6);
        assert_eq!(grid.dims, vec![4, 4, 4]);
        assert_eq!(grid.block, vec![128, 128, 128]);
        assert_eq!(grid.per_processor_footprint, 3 * 128 * 128);
    }

    #[test]
    fn small_inner_dimension_is_not_partitioned() {
        // Matmul with L3 = 2 on 64 processors: splitting the tiny dimension
        // would replicate the large matrix; the optimal grid keeps it whole.
        let nest = builders::matmul(1 << 9, 1 << 9, 2);
        let grid = optimal_processor_grid(&nest, 6);
        assert_eq!(grid.dims[2], 1);
        assert_eq!(grid.dims[0] * grid.dims[1], 64);
        // The owned block spans the full (tiny) third dimension.
        assert_eq!(grid.block[2], 2);
    }

    #[test]
    fn nbody_splits_the_large_side() {
        let nest = builders::nbody(1 << 4, 1 << 12);
        let grid = optimal_processor_grid(&nest, 4);
        // Splitting the x2 axis reduces the Other footprint without
        // replicating Acc/Src, so all 16 processors go to axis 1.
        assert_eq!(grid.dims, vec![1, 16]);
    }

    #[test]
    fn single_processor_owns_everything() {
        let nest = builders::matmul(8, 8, 8);
        let grid = optimal_processor_grid(&nest, 0);
        assert_eq!(grid.dims, vec![1, 1, 1]);
        assert_eq!(grid.block, nest.bounds());
        assert_eq!(grid.per_processor_footprint, nest.total_data_size());
    }

    #[test]
    fn grid_never_exceeds_loop_bounds() {
        let nest = builders::matmul(4, 2, 8);
        let grid = optimal_processor_grid(&nest, 10);
        for (p, l) in grid.dims.iter().zip(nest.bounds()) {
            assert!(*p <= l);
        }
    }

    #[test]
    fn more_processors_never_increase_footprint() {
        let nest = builders::pointwise_conv(4, 8, 16, 32, 32);
        let mut prev = u128::MAX;
        for log_p in 0..=8u32 {
            let grid = optimal_processor_grid(&nest, log_p);
            assert!(grid.per_processor_footprint <= prev, "log_p = {log_p}");
            prev = grid.per_processor_footprint;
        }
    }
}
