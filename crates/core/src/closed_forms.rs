//! Closed-form exponents and bounds for the paper's worked examples (§6).
//!
//! These are the hand-derivable formulas the paper states for matrix
//! multiplication (§6.1) and n-body pairwise interactions (§6.3), expressed
//! over exact rationals. They serve two purposes: they are the "expected"
//! column of the experiment harness, and the test suite checks them against
//! the general LP machinery — which is precisely the validation the paper
//! performs by hand in Section 6.
//!
//! The multiparametric §7 analysis closes the loop in the other direction:
//! [`crate::parametric::exponent_surface`] *derives* these case analyses
//! mechanically, as the affine pieces of the exact value surface. The
//! symbolic piece lists below ([`matmul_exponent_pieces`],
//! [`nbody_exponent_pieces`]) state the §6 formulas in that representation,
//! and the test suite checks that the surface recovers every one of them.

use projtile_arith::{int, log, ratio, Rational};

fn beta(l: u64, m: u64) -> Rational {
    log::beta(l as u128, m as u128)
}

/// Optimal tile-size exponent for `L1 × L2 × L3` matrix multiplication with a
/// cache of `M` words (§6.1):
///
/// `min( 3/2,  1 + min(β1, β2, β3),  β1 + β2 + β3 )`.
///
/// The three branches are the classical square tile, the "one small bound"
/// regime (tile `M/L × L × L`), and the "everything fits" regime (the whole
/// iteration space is one tile).
pub fn matmul_exponent(l1: u64, l2: u64, l3: u64, m: u64) -> Rational {
    let b1 = beta(l1, m);
    let b2 = beta(l2, m);
    let b3 = beta(l3, m);
    let three_halves = Rational::from_frac(3.into(), 2.into());
    let bmin = b1.clone().min(b2.clone()).min(b3.clone());
    let one_plus = &Rational::one() + &bmin;
    let total = &(&b1 + &b2) + &b3;
    three_halves.min(one_plus).min(total)
}

/// The tight communication lower bound for matrix multiplication (§6.1):
///
/// `max( L1·L2·L3 / √M,  L1·L2,  L2·L3,  L1·L3,  M )`
///
/// (the final `M` term is the §6.3 caveat: the model charges `M` words even
/// when the whole problem fits in cache).
pub fn matmul_lower_bound_words(l1: u64, l2: u64, l3: u64, m: u64) -> f64 {
    let classical = (l1 as f64) * (l2 as f64) * (l3 as f64) / (m as f64).sqrt();
    classical
        .max((l1 * l2) as f64)
        .max((l2 * l3) as f64)
        .max((l1 * l3) as f64)
        .max(m as f64)
}

/// Matrix-vector multiplication (`L3 = 1`): the lower bound degenerates to
/// `max(L1·L2, M)` — the matrix must be read in its entirety.
pub fn matvec_lower_bound_words(l1: u64, l2: u64, m: u64) -> f64 {
    matmul_lower_bound_words(l1, l2, 1, m)
}

/// The §6.1 matmul exponent as symbolic affine pieces of `(β1, β2, β3)`:
/// the closed form `min(3/2, 1 + min(β1, β2, β3), β1 + β2 + β3)` written as
/// the five affine functions `(gradient, constant)` whose pointwise minimum
/// it is. [`crate::parametric::exponent_surface`] recovers exactly these
/// pieces mechanically (checked by the test suite).
pub fn matmul_exponent_pieces() -> Vec<(Vec<Rational>, Rational)> {
    vec![
        (vec![int(1), int(1), int(1)], int(0)),
        (vec![int(1), int(0), int(0)], int(1)),
        (vec![int(0), int(1), int(0)], int(1)),
        (vec![int(0), int(0), int(1)], int(1)),
        (vec![int(0), int(0), int(0)], ratio(3, 2)),
    ]
}

/// The §6.3 n-body exponent as symbolic affine pieces of `(β1, β2)`:
/// `min(1, β1) + min(1, β2) = min(β1 + β2, 1 + β1, 1 + β2, 2)`.
pub fn nbody_exponent_pieces() -> Vec<(Vec<Rational>, Rational)> {
    vec![
        (vec![int(1), int(1)], int(0)),
        (vec![int(1), int(0)], int(1)),
        (vec![int(0), int(1)], int(1)),
        (vec![int(0), int(0)], int(2)),
    ]
}

/// Optimal tile-size exponent for n-body pairwise interactions (§6.3):
/// `min(1, β1) + min(1, β2)`, i.e. a tile of `min(M, L1) × min(M, L2)` points.
pub fn nbody_exponent(l1: u64, l2: u64, m: u64) -> Rational {
    let one = Rational::one();
    beta(l1, m).min(one.clone()) + beta(l2, m).min(one)
}

/// Maximum tile size for n-body interactions (§6.3):
/// `min(M², L1·M, L2·M, L1·L2)`.
pub fn nbody_tile_size(l1: u64, l2: u64, m: u64) -> u128 {
    let m = m as u128;
    let (l1, l2) = (l1 as u128, l2 as u128);
    (m * m).min(l1 * m).min(l2 * m).min(l1 * l2)
}

/// Communication lower bound for n-body interactions (§6.3), in words:
/// `L1·L2·M / (maximum tile size)`, i.e. `max(L1·L2/M, L2, L1, M)`.
pub fn nbody_lower_bound_words(l1: u64, l2: u64, m: u64) -> f64 {
    let ops = (l1 as f64) * (l2 as f64);
    ops * (m as f64) / nbody_tile_size(l1, l2, m) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::arbitrary_bound_exponent;
    use crate::tiling_lp::solve_tiling_lp;
    use projtile_arith::{int, ratio};
    use projtile_loopnest::builders;

    #[test]
    fn matmul_exponent_special_values() {
        let m = 1u64 << 10;
        // All large: 3/2.
        assert_eq!(matmul_exponent(1 << 8, 1 << 8, 1 << 8, m), ratio(3, 2));
        // L3 = 1: exponent 1.
        assert_eq!(matmul_exponent(1 << 8, 1 << 8, 1, m), int(1));
        // L3 = 2^2: exponent 1 + 1/5.
        assert_eq!(
            matmul_exponent(1 << 8, 1 << 8, 1 << 2, m),
            &int(1) + &ratio(1, 5)
        );
        // Everything tiny: sum of betas.
        assert_eq!(matmul_exponent(2, 4, 8, m), ratio(1 + 2 + 3, 10));
    }

    #[test]
    fn matmul_closed_form_matches_lp_on_a_grid() {
        // The closed form must agree with the general machinery (tiling LP =
        // Theorem-2 bound) across the whole (L1, L2, L3) power-of-two grid.
        let m = 1u64 << 8;
        for e1 in [0u32, 2, 4, 6, 8, 10] {
            for e2 in [0u32, 3, 5, 9] {
                for e3 in [0u32, 1, 4, 8] {
                    let (l1, l2, l3) = (1u64 << e1, 1u64 << e2, 1u64 << e3);
                    let nest = builders::matmul(l1, l2, l3);
                    let lp_value = solve_tiling_lp(&nest, m).value;
                    let closed = matmul_exponent(l1, l2, l3, m);
                    assert_eq!(lp_value, closed, "L = ({l1},{l2},{l3})");
                }
            }
        }
    }

    #[test]
    fn matmul_lower_bound_matches_general_machinery() {
        let m = 1u64 << 8;
        for (l1, l2, l3) in [
            (1u64 << 6, 1u64 << 6, 1u64 << 6),
            (1 << 6, 1 << 6, 1),
            (1 << 2, 1 << 9, 1 << 1),
            (1 << 1, 1 << 1, 1 << 1),
        ] {
            let nest = builders::matmul(l1, l2, l3);
            let general = arbitrary_bound_exponent(&nest, m).words;
            let closed = matmul_lower_bound_words(l1, l2, l3, m);
            assert!(
                (general - closed).abs() / closed < 1e-9,
                "({l1},{l2},{l3}): {general} vs {closed}"
            );
        }
    }

    #[test]
    fn matvec_lower_bound_is_matrix_size() {
        let m = 1u64 << 10;
        assert_eq!(
            matvec_lower_bound_words(1 << 8, 1 << 9, m),
            (1u64 << 17) as f64
        );
        // Tiny matrix: saturates at M.
        assert_eq!(matvec_lower_bound_words(4, 4, m), m as f64);
    }

    #[test]
    fn nbody_closed_forms_match_lp() {
        let m = 1u64 << 8;
        for e1 in [0u32, 2, 4, 8, 10] {
            for e2 in [0u32, 3, 8, 12] {
                let (l1, l2) = (1u64 << e1, 1u64 << e2);
                let nest = builders::nbody(l1, l2);
                let lp_value = solve_tiling_lp(&nest, m).value;
                assert_eq!(lp_value, nbody_exponent(l1, l2, m), "L = ({l1},{l2})");
                let general = arbitrary_bound_exponent(&nest, m).words;
                let closed = nbody_lower_bound_words(l1, l2, m);
                assert!(
                    (general - closed).abs() / closed < 1e-9,
                    "({l1},{l2}): {general} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn surface_recovers_matmul_symbolic_pieces() {
        // The multiparametric analysis re-derives the §6.1 case analysis:
        // every symbolic piece of min(3/2, 1 + min βi, Σ βi) appears in the
        // surface, and the surface evaluates to the closed form everywhere.
        let m = 1u64 << 8;
        let nest = builders::matmul(1 << 6, 1 << 6, 1 << 6);
        let surf =
            crate::parametric::exponent_surface(&nest, m, &[0, 1, 2], &[1, 1, 1], &[m, m, m])
                .unwrap();
        let pieces = surf.pieces();
        for (gradient, constant) in matmul_exponent_pieces() {
            assert!(
                pieces
                    .iter()
                    .any(|p| p.gradient == gradient && p.constant == constant),
                "missing piece {gradient:?} + {constant}"
            );
        }
        for e1 in [0u32, 2, 5, 8] {
            for e2 in [0u32, 3, 8] {
                for e3 in [0u32, 1, 4, 8] {
                    let beta = [
                        ratio(e1 as i64, 8),
                        ratio(e2 as i64, 8),
                        ratio(e3 as i64, 8),
                    ];
                    let closed = matmul_exponent(1 << e1, 1 << e2, 1 << e3, m);
                    assert_eq!(surf.value_at(&beta), closed, "β = {beta:?}");
                }
            }
        }
    }

    #[test]
    fn surface_recovers_nbody_symbolic_pieces() {
        let m = 1u64 << 8;
        let nest = builders::nbody(1 << 6, 1 << 6);
        // Sweep both bounds up to M² so the saturated min(1, βi) = 1 regimes
        // have full-dimensional regions.
        let hi = m * m;
        let surf =
            crate::parametric::exponent_surface(&nest, m, &[0, 1], &[1, 1], &[hi, hi]).unwrap();
        let pieces = surf.pieces();
        for (gradient, constant) in nbody_exponent_pieces() {
            assert!(
                pieces
                    .iter()
                    .any(|p| p.gradient == gradient && p.constant == constant),
                "missing piece {gradient:?} + {constant}"
            );
        }
        for e1 in [0u32, 4, 8, 12, 16] {
            for e2 in [0u32, 6, 8, 14] {
                let beta = [ratio(e1 as i64, 8), ratio(e2 as i64, 8)];
                let closed = nbody_exponent(1 << e1, 1 << e2, m);
                assert_eq!(surf.value_at(&beta), closed, "β = {beta:?}");
            }
        }
    }

    #[test]
    fn nbody_tile_size_examples() {
        let m = 1u64 << 8;
        assert_eq!(nbody_tile_size(1 << 10, 1 << 10, m), (1u128 << 16)); // M^2
        assert_eq!(nbody_tile_size(1 << 4, 1 << 10, m), 1 << 12); // L1*M
        assert_eq!(nbody_tile_size(1 << 10, 1 << 4, m), 1 << 12); // L2*M
        assert_eq!(nbody_tile_size(1 << 3, 1 << 4, m), 1 << 7); // L1*L2
    }

    #[test]
    fn nbody_lower_bound_cases_of_section_6_3() {
        let m = 1u64 << 8;
        // Large/large: L1 L2 / M.
        assert_eq!(
            nbody_lower_bound_words(1 << 10, 1 << 10, m),
            ((1u128 << 20) / (1 << 8)) as f64
        );
        // L1 small: communication L2 (stream the big side once).
        assert_eq!(
            nbody_lower_bound_words(1 << 4, 1 << 12, m),
            (1u64 << 12) as f64
        );
        // Both small: the model's floor of M words.
        assert_eq!(nbody_lower_bound_words(4, 4, m), m as f64);
    }
}
