//! Executable form of Theorem 3: the tiling LP attains the lower bound.
//!
//! Theorem 3 states that the optimal value of the tiling LP (5.1) equals one
//! of the Theorem-2 tile-size exponents, i.e. the rectangular tile the LP
//! produces is as large as any tile fitting in cache can be, so the blocked
//! schedule built from it attains the communication lower bound (up to the
//! constant factors the paper ignores throughout).
//!
//! The check performed here is constructive and exact:
//!
//! 1. solve the tiling LP (5.1) — value `v`;
//! 2. solve the bound LP (5.5)/(5.6) — value `k̂` with certificate `(Q*, ŝ)`;
//! 3. assert `v == k̂` as rationals (this is the strong-duality equality the
//!    paper's proof establishes by induction);
//! 4. assert that plugging `(Q*, ŝ)` into the Theorem-2 formula reproduces
//!    `k̂`, and that `ŝ` is feasible for the HBL LP with the rows of `Q*`
//!    removed — i.e. the expression (5.2) the theorem promises really is
//!    exhibited by an explicit subset and weight vector;
//! 5. additionally report the exponent obtained from the paper's explicit
//!    `2^d` enumeration, which is always `>= k̂` and usually equal.

use projtile_arith::Rational;
use projtile_loopnest::{IndexSet, LoopNest};
use projtile_lp::LpError;
use serde::{Deserialize, Serialize};

use crate::bounds::{
    arbitrary_bound_exponent, betas, bound_lp_for_betas, enumerated_exponent, exponent_from_s_hat,
};
use crate::hbl::hbl_lp;
use crate::parametric::{exponent_surface, ExponentSurface};
use crate::tiling_lp::solve_tiling_lp;

/// Result of checking Theorem 3 on one problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TightnessReport {
    /// Optimal value of the tiling LP (5.1): the achievable tile exponent.
    pub tiling_exponent: Rational,
    /// The Theorem-2 exponent `k̂` from the bound LP.
    pub bound_exponent: Rational,
    /// The exponent from the explicit subset enumeration (always `>= k̂`).
    pub enumerated_exponent: Rational,
    /// The witness subset `Q*`.
    pub witness_subset: IndexSet,
    /// `true` iff the tiling exponent equals the bound exponent exactly and
    /// the certificate checks out — i.e. Theorem 3 holds on this instance.
    pub tight: bool,
}

/// Runs the full Theorem-3 check on `nest` with cache size `cache_size`.
///
/// The dominant cost is the `2^d` subset enumeration of step 5, which runs
/// through the warm-started batched sweep of
/// [`crate::bounds::enumerated_exponent`]; its results are bitwise-identical
/// to the cold per-subset solves (see the differential tests there), so the
/// exactness of this check is unaffected.
///
/// ```
/// use projtile_core::tightness::check_tightness;
/// use projtile_loopnest::builders;
///
/// // Theorem 3 on the §6.1 small-inner-dimension example: the optimal tile
/// // of LP (5.1) attains the Theorem-2 lower bound, exactly.
/// let report = check_tightness(&builders::matmul(512, 512, 8), 1 << 10);
/// assert!(report.tight);
/// assert_eq!(report.tiling_exponent, report.bound_exponent);
/// ```
pub fn check_tightness(nest: &LoopNest, cache_size: u64) -> TightnessReport {
    let tiling = solve_tiling_lp(nest, cache_size);
    let bound = arbitrary_bound_exponent(nest, cache_size);
    let enumerated = enumerated_exponent(nest, cache_size);

    // Certificate validation (step 4 above).
    let formula_value = exponent_from_s_hat(nest, cache_size, bound.witness_subset, &bound.s_hat);
    let row_deleted = hbl_lp(nest, bound.witness_subset);
    let certificate_ok = formula_value == bound.exponent && row_deleted.is_feasible(&bound.s_hat);

    let tight = tiling.value == bound.exponent && certificate_ok;
    TightnessReport {
        tiling_exponent: tiling.value,
        bound_exponent: bound.exponent,
        enumerated_exponent: enumerated.exponent,
        witness_subset: bound.witness_subset,
        tight,
    }
}

/// Theorem 3 checked on one critical region of an exponent surface: the
/// tiling-LP value function (the region's affine piece, evaluated at its
/// witness) against the bound LP (5.5) solved directly at the witness β.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionTightness {
    /// The region's affine piece: gradient over the swept axes.
    pub gradient: Vec<Rational>,
    /// The region's affine piece: constant term.
    pub constant: Rational,
    /// The witness β point (one value per swept axis).
    pub witness: Vec<Rational>,
    /// The tiling exponent at the witness, read off the surface.
    pub tiling_exponent: Rational,
    /// The Theorem-2 bound exponent at the witness, from a direct solve of
    /// the bound LP with the witness β plugged in.
    pub bound_exponent: Rational,
    /// `true` iff the two agree exactly (strong duality / Theorem 3).
    pub tight: bool,
}

/// Per-region Theorem-3 report for a whole exponent surface. Produced by
/// [`check_tightness_surface`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfaceTightnessReport {
    /// The swept loop-index positions.
    pub axes: Vec<usize>,
    /// One entry per critical region of the surface.
    pub regions: Vec<RegionTightness>,
    /// `true` iff every region is tight.
    pub all_tight: bool,
}

/// Runs the Theorem-3 check **per critical region** of the multiparametric
/// §7 surface: sweeps the loop bounds of `axes` over `[lo_bounds, hi_bounds]`
/// (in log space), decomposes the exponent into critical regions with
/// [`exponent_surface`], and at each region's witness point validates strong
/// duality against an independent solve of the bound LP (5.5) with the
/// witness β substituted — i.e. Theorem 3 at *rational* β, not only at β
/// realized by integer loop bounds.
pub fn check_tightness_surface(
    nest: &LoopNest,
    cache_size: u64,
    axes: &[usize],
    lo_bounds: &[u64],
    hi_bounds: &[u64],
) -> Result<SurfaceTightnessReport, LpError> {
    let surface = exponent_surface(nest, cache_size, axes, lo_bounds, hi_bounds)?;
    surface_tightness(nest, cache_size, &surface)
}

/// The report-building half of [`check_tightness_surface`], for callers that
/// already hold the surface.
pub fn surface_tightness(
    nest: &LoopNest,
    cache_size: u64,
    surface: &ExponentSurface,
) -> Result<SurfaceTightnessReport, LpError> {
    let base_betas = betas(nest, cache_size);
    let mut regions = Vec::with_capacity(surface.num_regions());
    for region in surface.surface().regions() {
        let witness = &region.witness;
        let mut full = base_betas.clone();
        for (&axis, b) in surface.axes().iter().zip(witness) {
            full[axis] = b.clone();
        }
        let bound = projtile_lp::solve(&bound_lp_for_betas(nest, full))?;
        let tiling_exponent = surface.value_at(witness);
        let tight = tiling_exponent == bound.objective_value;
        regions.push(RegionTightness {
            gradient: region.piece.gradient.clone(),
            constant: region.piece.constant.clone(),
            witness: witness.clone(),
            tiling_exponent,
            bound_exponent: bound.objective_value,
            tight,
        });
    }
    let all_tight = regions.iter().all(|r| r.tight);
    Ok(SurfaceTightnessReport {
        axes: surface.axes().to_vec(),
        regions,
        all_tight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_arith::ratio;
    use projtile_loopnest::builders;

    #[test]
    fn matmul_is_tight_across_regimes() {
        let m = 1u64 << 10;
        for (l1, l2, l3) in [
            (1u64 << 8, 1u64 << 8, 1u64 << 8), // all large
            (1 << 8, 1 << 8, 1),               // matrix-vector
            (1 << 8, 1 << 8, 1 << 3),          // one small
            (1 << 3, 1 << 8, 1 << 2),          // two small
            (1 << 2, 1 << 2, 1 << 2),          // everything fits in cache
            (1 << 5, 1 << 5, 1 << 5),          // exactly at the crossover
        ] {
            let report = check_tightness(&builders::matmul(l1, l2, l3), m);
            assert!(report.tight, "({l1},{l2},{l3}): {report:?}");
            assert!(report.enumerated_exponent >= report.bound_exponent);
        }
    }

    #[test]
    fn matmul_large_bound_exponent_value() {
        let report = check_tightness(&builders::matmul(1 << 8, 1 << 8, 1 << 8), 1 << 10);
        assert_eq!(report.tiling_exponent, ratio(3, 2));
        assert_eq!(report.bound_exponent, ratio(3, 2));
        assert_eq!(report.enumerated_exponent, ratio(3, 2));
    }

    #[test]
    fn paper_kernels_are_tight() {
        let m = 1u64 << 8;
        let nests = vec![
            builders::matvec(1 << 7, 1 << 6),
            builders::pointwise_conv(4, 2, 32, 16, 16),
            builders::fully_connected(64, 4, 128),
            builders::nbody(1 << 3, 1 << 9),
            builders::tensor_contraction(2, 4, &[4, 8, 2, 16, 32]),
        ];
        for nest in nests {
            let report = check_tightness(&nest, m);
            assert!(report.tight, "{nest}: {report:?}");
        }
    }

    #[test]
    fn random_projective_programs_are_tight() {
        // Theorem 3 is fully general over projective programs; exercise it on
        // random nests with a mix of tiny and large bounds and several cache
        // sizes, checking exact equality every time.
        for seed in 0..25u64 {
            let nest = builders::random_projective(seed, 4, 4, (1, 512));
            for m in [4u64, 64, 1 << 10] {
                let report = check_tightness(&nest, m);
                assert!(report.tight, "seed {seed}, M={m}: {report:?}");
            }
        }
    }

    #[test]
    fn deeper_random_programs_are_tight() {
        for seed in 0..8u64 {
            let nest = builders::random_projective(seed, 6, 5, (1, 128));
            let report = check_tightness(&nest, 256);
            assert!(report.tight, "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn tightness_report_is_oblivious_to_warm_starting() {
        // check_tightness consumes the warm-started enumeration; rebuilding
        // the same report from the cold oracle must give identical fields.
        for seed in 0..6u64 {
            let nest = builders::random_projective(seed, 5, 4, (1, 256));
            let m = 1u64 << 8;
            let report = check_tightness(&nest, m);
            let cold = crate::bounds::enumerated_exponent_cold(&nest, m);
            assert_eq!(report.enumerated_exponent, cold.exponent, "seed {seed}");
        }
    }

    #[test]
    fn matmul_surface_is_tight_in_every_region() {
        // Theorem 3, per critical region of the full (β1, β2, β3) surface:
        // the tiling value function and the bound LP agree at every region's
        // witness, including witnesses at rational β no integer bound hits.
        let m = 1u64 << 8;
        let nest = builders::matmul(1 << 6, 1 << 6, 1 << 6);
        let report = check_tightness_surface(&nest, m, &[0, 1, 2], &[1, 1, 1], &[m, m, m]).unwrap();
        assert!(report.regions.len() >= 5, "{report:?}");
        assert!(report.all_tight, "{report:?}");
        for r in &report.regions {
            assert_eq!(r.tiling_exponent, r.bound_exponent);
        }
    }

    #[test]
    fn random_surfaces_are_tight_in_every_region() {
        for seed in 0..4u64 {
            let nest = builders::random_projective(seed, 4, 4, (1, 256));
            let m = 1u64 << 6;
            let report = check_tightness_surface(&nest, m, &[0, 2], &[1, 1], &[m, m]).unwrap();
            assert!(report.all_tight, "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn enumeration_matches_bound_on_worked_examples() {
        // On the paper's worked examples the explicit enumeration achieves the
        // same exponent as the bound LP (no gap).
        let m = 1u64 << 10;
        for nest in [
            builders::matmul(1 << 8, 1 << 8, 1 << 2),
            builders::matvec(1 << 8, 1 << 8),
            builders::nbody(1 << 4, 1 << 6),
        ] {
            let report = check_tightness(&nest, m);
            assert_eq!(report.enumerated_exponent, report.bound_exponent, "{nest}");
        }
    }
}
