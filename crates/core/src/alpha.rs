//! The α-parameterized family of optimal tilings (§6.1 of the paper).
//!
//! When the tiling LP (5.1) has a degenerate optimum — e.g. matrix
//! multiplication with a small `L_3`, where any `λ` with
//! `λ_1 + λ_2 = 1, λ_3 = β_3` is optimal — the optimal tile shape is not
//! unique: the paper exhibits a family parameterized by `α ∈ [0, 1]`
//! interpolating between the extreme optimal vertices, and notes that a
//! practitioner may pick whichever member behaves best on real hardware
//! (cache-line multiples, vector widths, ...).
//!
//! This module computes that family for an arbitrary projective nest: given a
//! distinguished axis, it finds the optimal solutions minimizing and
//! maximizing that axis's exponent subject to overall optimality, and exposes
//! every convex combination (all of which are optimal and feasible by
//! convexity of the optimal face).

use projtile_arith::Rational;
use projtile_loopnest::LoopNest;
use projtile_lp::{solve, Constraint, Objective, Relation};

use crate::tiling::Tiling;
use crate::tiling_lp::{solve_tiling_lp, tile_dims_from_lambda, tiling_lp};

/// A one-parameter family of optimal tilings along a chosen axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlphaFamily {
    /// The loop axis whose exponent parameterizes the family.
    pub axis: usize,
    /// The common optimal value of the tiling LP.
    pub value: Rational,
    /// Optimal `λ` with the smallest possible exponent on `axis` (`α = 0`).
    pub lambda_lo: Vec<Rational>,
    /// Optimal `λ` with the largest possible exponent on `axis` (`α = 1`).
    pub lambda_hi: Vec<Rational>,
}

impl AlphaFamily {
    /// The `λ` vector at parameter `alpha ∈ [0, 1]`:
    /// `α·λ_hi + (1 − α)·λ_lo`, which is optimal for every `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn lambda_at(&self, alpha: &Rational) -> Vec<Rational> {
        assert!(
            !alpha.is_negative() && *alpha <= Rational::one(),
            "alpha must lie in [0, 1]"
        );
        let one_minus = &Rational::one() - alpha;
        self.lambda_hi
            .iter()
            .zip(&self.lambda_lo)
            .map(|(hi, lo)| &(alpha * hi) + &(&one_minus * lo))
            .collect()
    }

    /// Returns `true` iff the family is degenerate (a single optimal point on
    /// this axis — no freedom to trade block sizes).
    pub fn is_degenerate(&self) -> bool {
        self.lambda_lo == self.lambda_hi
    }

    /// The range of exponents available on the distinguished axis.
    pub fn axis_range(&self) -> (Rational, Rational) {
        (
            self.lambda_lo[self.axis].clone(),
            self.lambda_hi[self.axis].clone(),
        )
    }

    /// Materializes the tiling at parameter `alpha`.
    pub fn tiling_at(&self, nest: &LoopNest, cache_size: u64, alpha: &Rational) -> Tiling {
        let lambda = self.lambda_at(alpha);
        let dims = tile_dims_from_lambda(nest, cache_size, &lambda);
        Tiling::new(nest.clone(), cache_size, dims, Some(lambda))
    }
}

/// Computes the α-family for `nest` along `axis`.
///
/// # Panics
/// Panics if `axis >= d` or `cache_size < 2`.
pub fn optimal_family(nest: &LoopNest, cache_size: u64, axis: usize) -> AlphaFamily {
    assert!(axis < nest.num_loops(), "axis out of range");
    let base = solve_tiling_lp(nest, cache_size);

    // Re-solve twice with the optimal value pinned, extremizing λ_axis.
    let extremize = |maximize: bool| -> Vec<Rational> {
        let mut lp = tiling_lp(nest, cache_size);
        // Pin Σ λ_i to the optimal value.
        lp.add_constraint(Constraint::new(
            vec![Rational::one(); nest.num_loops()],
            Relation::Eq,
            base.value.clone(),
        ));
        let mut costs = vec![Rational::zero(); nest.num_loops()];
        costs[axis] = Rational::one();
        lp.costs = costs;
        lp.objective = if maximize {
            Objective::Maximize
        } else {
            Objective::Minimize
        };
        solve(&lp)
            .expect("the optimal face of the tiling LP is non-empty and bounded")
            .values
    };

    let lambda_lo = extremize(false);
    let lambda_hi = extremize(true);
    AlphaFamily {
        axis,
        value: base.value,
        lambda_lo,
        lambda_hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_arith::{int, ratio};
    use projtile_loopnest::builders;

    #[test]
    fn matmul_small_l3_family_matches_paper_endpoints() {
        // §6.1 with β3 <= 1/2: every point of the optimal face has
        // λ1 + λ2 = 1 and λ3 = β3. The paper's α-family (from (1-β3, β3, β3)
        // to (1/2, 1/2, β3)) lies inside the face computed here, whose extreme
        // λ1 values are β3 and 1-β3.
        let m = 1u64 << 10;
        let l3 = 1u64 << 2; // β3 = 1/5
        let beta3 = ratio(2, 10);
        let nest = builders::matmul(1 << 8, 1 << 8, l3);
        let family = optimal_family(&nest, m, 0);
        assert_eq!(family.value, &int(1) + &beta3);
        assert!(!family.is_degenerate());
        // λ3 is pinned to β3 at both endpoints.
        assert_eq!(family.lambda_lo[2], beta3);
        assert_eq!(family.lambda_hi[2], beta3);
        // The extreme λ1 values are β3 and 1 - β3.
        assert_eq!(family.lambda_lo[0], beta3);
        assert_eq!(family.lambda_hi[0], &int(1) - &beta3);
        assert_eq!(&family.lambda_hi[0] + &family.lambda_hi[1], int(1));
        assert_eq!(&family.lambda_lo[0] + &family.lambda_lo[1], int(1));
        assert!(family.lambda_lo[0] < family.lambda_hi[0]);
    }

    #[test]
    fn every_family_member_is_optimal_and_feasible() {
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 8, 1 << 8, 1 << 2);
        let family = optimal_family(&nest, m, 0);
        let lp = tiling_lp(&nest, m);
        for num in 0..=4i64 {
            let alpha = ratio(num, 4);
            let lambda = family.lambda_at(&alpha);
            assert!(lp.is_feasible(&lambda), "alpha = {alpha}");
            let total: Rational = lambda.iter().fold(Rational::zero(), |acc, l| &acc + l);
            assert_eq!(total, family.value, "alpha = {alpha}");
        }
    }

    #[test]
    fn family_tilings_fit_in_cache_and_cover_space() {
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 8, 1 << 8, 1 << 2);
        let family = optimal_family(&nest, m, 0);
        for num in [0i64, 2, 4] {
            let alpha = ratio(num, 4);
            let tiling = family.tiling_at(&nest, m, &alpha);
            // Footprint within the up-to-constants allowance of 3 arrays.
            assert!(tiling.fits_in_cache(nest.num_arrays() as f64));
            assert!(tiling.num_tiles() >= 1);
        }
    }

    #[test]
    fn large_bound_matmul_family_is_degenerate() {
        // With all bounds large the square tile is the unique optimum.
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 8, 1 << 8, 1 << 8);
        let family = optimal_family(&nest, m, 0);
        assert!(family.is_degenerate());
        assert_eq!(
            family.lambda_lo,
            vec![ratio(1, 2), ratio(1, 2), ratio(1, 2)]
        );
        assert_eq!(family.axis_range(), (ratio(1, 2), ratio(1, 2)));
    }

    #[test]
    fn alpha_outside_unit_interval_rejected() {
        let nest = builders::matmul(1 << 6, 1 << 6, 1 << 2);
        let family = optimal_family(&nest, 1 << 10, 0);
        assert!(std::panic::catch_unwind(|| family.lambda_at(&int(2))).is_err());
        assert!(std::panic::catch_unwind(|| family.lambda_at(&ratio(-1, 2))).is_err());
    }

    #[test]
    fn axis_out_of_range_rejected() {
        let nest = builders::nbody(8, 8);
        assert!(std::panic::catch_unwind(|| optimal_family(&nest, 64, 5)).is_err());
    }
}
