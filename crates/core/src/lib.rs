//! Communication lower bounds and optimal tilings for projective nested loops
//! with arbitrary bounds.
//!
//! This crate is the reproduction of the main contribution of Dinh & Demmel,
//! *"Communication-Optimal Tilings for Projective Nested Loops with Arbitrary
//! Bounds"* (SPAA 2020). Given a projective loop nest (a
//! [`projtile_loopnest::LoopNest`]) and a fast-memory size `M`, it computes:
//!
//! * the classical large-bound HBL exponent `k_HBL` and lower bound
//!   `∏L_i / M^{k_HBL − 1}` (§3 of the paper) — [`hbl`];
//! * the arbitrary-bound tile-size exponent `k̂` of Theorem 2, obtained by
//!   minimizing over all subsets `Q ⊆ [d]` of loop indices treated as "small",
//!   and the corresponding communication lower bound (§4) — [`bounds`];
//! * the optimal rectangular tiling from the linear program (5.1), both in
//!   log-space (exact rational block exponents `λ_i`) and as concrete integer
//!   block sizes (§5) — [`mod@tiling_lp`] and [`tiling`];
//! * an executable check of Theorem 3 — that the tiling LP optimum coincides
//!   exactly with one of the Theorem-2 exponents, i.e. the tiling attains the
//!   lower bound — [`tightness`];
//! * the α-parameterized family of optimal tilings discussed at the end of
//!   §6.1 — [`alpha`];
//! * closed forms for the worked examples of §6 (matrix multiplication,
//!   tensor contractions / pointwise convolutions, n-body interactions) —
//!   [`closed_forms`] and [`contraction`];
//! * the piecewise-linear dependence of the optimal exponent on the
//!   log-bounds `β_i = log_M L_i` (§7), as one-dimensional sweeps
//!   ([`parametric::exponent_vs_beta`]) and as the full multiparametric
//!   value surface with critical regions and symbolic closed-form pieces
//!   ([`parametric::exponent_surface`]) — [`parametric`].
//!
//! All optimization is done with the exact rational simplex solver in
//! [`projtile_lp`], so every "equals" in the theorems is checked as literal
//! equality of rationals, not floating-point closeness.
//!
//! ```
//! use projtile_core::ProblemInstance;
//! use projtile_loopnest::builders;
//!
//! let inst = ProblemInstance::new(builders::matmul(512, 512, 8), 1 << 10);
//! assert!(inst.check_tightness().tight); // Theorem 3, checked exactly
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod bounds;
pub mod closed_forms;
pub mod contraction;
pub mod distributed;
pub mod engine;
pub mod hbl;
pub mod parametric;
pub mod tightness;
pub mod tiling;
pub mod tiling_lp;

pub use bounds::{arbitrary_bound_exponent, communication_lower_bound, LowerBound};
pub use engine::{AnalysisResult, Engine, EngineError, Query, SurfaceSummary, TilingSummary};
pub use hbl::{hbl_exponent, hbl_lp, solve_hbl, HblSolution};
pub use parametric::{exponent_surface, exponent_vs_beta, ExponentSurface};
pub use tightness::{
    check_tightness, check_tightness_surface, SurfaceTightnessReport, TightnessReport,
};
pub use tiling::{CommunicationModel, Tiling};
pub use tiling_lp::{optimal_tiling, solve_tiling_lp, tiling_lp, TilingSolution};

use std::cell::RefCell;

/// A loop nest paired with the fast-memory (cache) size it is analyzed
/// against.
///
/// Since PR 4 the instance routes every method through an internal
/// [`engine::Engine`] session, so repeated calls on the same instance reuse
/// shared artifacts and memoized results instead of recomputing (a second
/// `check_tightness()` is a pure lookup). Answers are bitwise-identical to
/// the stateless free functions in the submodules, which remain available
/// for one-shot use and as the engine's differential oracles.
#[derive(Debug)]
pub struct ProblemInstance {
    /// The projective loop nest under analysis.
    pub nest: projtile_loopnest::LoopNest,
    /// Fast-memory capacity `M`, in words.
    pub cache_size: u64,
    session: RefCell<engine::Engine>,
}

impl Clone for ProblemInstance {
    /// Clones the problem description; the clone starts with a fresh (empty)
    /// session cache.
    fn clone(&self) -> ProblemInstance {
        ProblemInstance {
            nest: self.nest.clone(),
            cache_size: self.cache_size,
            session: RefCell::new(engine::Engine::new()),
        }
    }
}

impl ProblemInstance {
    /// Creates an instance.
    ///
    /// # Panics
    /// Panics if `cache_size < 2` (the log-space analysis needs `M >= 2`).
    pub fn new(nest: projtile_loopnest::LoopNest, cache_size: u64) -> ProblemInstance {
        assert!(cache_size >= 2, "cache size must be at least 2 words");
        ProblemInstance {
            nest,
            cache_size,
            session: RefCell::new(engine::Engine::new()),
        }
    }

    fn query(&self, query: engine::Query) -> engine::AnalysisResult {
        self.session
            .borrow_mut()
            .analyze(&self.nest, &query)
            .expect("instance queries are validated at construction")
    }

    /// The large-bound HBL exponent `k_HBL` (§3).
    pub fn hbl_exponent(&self) -> projtile_arith::Rational {
        hbl::hbl_exponent(&self.nest)
    }

    /// The Theorem-2 arbitrary-bound exponent `k̂` and the subset `Q` that
    /// attains it (§4).
    pub fn tile_size_exponent(&self) -> bounds::LowerBound {
        match self.query(engine::Query::LowerBound {
            cache_size: self.cache_size,
        }) {
            engine::AnalysisResult::LowerBound(lb) => lb,
            other => unreachable!("engine answered {other:?} to a LowerBound query"),
        }
    }

    /// The communication lower bound `∏L_i · M^{1 − k̂}` in words (§4).
    pub fn communication_lower_bound(&self) -> f64 {
        self.tile_size_exponent().words
    }

    /// The optimal rectangular tiling from LP (5.1) (§5).
    pub fn optimal_tiling(&self) -> tiling::Tiling {
        match self.query(engine::Query::OptimalTiling {
            cache_size: self.cache_size,
        }) {
            engine::AnalysisResult::OptimalTiling(summary) => tiling::Tiling::new(
                self.nest.clone(),
                self.cache_size,
                summary.tile_dims,
                Some(summary.lambda),
            ),
            other => unreachable!("engine answered {other:?} to an OptimalTiling query"),
        }
    }

    /// Checks Theorem 3: the tiling LP optimum equals the Theorem-2 exponent.
    pub fn check_tightness(&self) -> tightness::TightnessReport {
        match self.query(engine::Query::Tightness {
            cache_size: self.cache_size,
        }) {
            engine::AnalysisResult::Tightness(report) => report,
            other => unreachable!("engine answered {other:?} to a Tightness query"),
        }
    }

    /// Session counters of the instance's internal engine (hits witness the
    /// cross-call reuse).
    pub fn session_stats(&self) -> engine::EngineStats {
        self.session.borrow().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_arith::ratio;
    use projtile_loopnest::builders;

    #[test]
    fn problem_instance_end_to_end_matmul() {
        let inst = ProblemInstance::new(builders::matmul(1 << 8, 1 << 8, 1 << 8), 1 << 10);
        assert_eq!(inst.hbl_exponent(), ratio(3, 2));
        let report = inst.check_tightness();
        assert!(report.tight);
        let tiling = inst.optimal_tiling();
        assert!(tiling.tile_dims().iter().all(|&b| b >= 1));
        assert!(inst.communication_lower_bound() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 words")]
    fn tiny_cache_rejected() {
        let _ = ProblemInstance::new(builders::matmul(4, 4, 4), 1);
    }
}
