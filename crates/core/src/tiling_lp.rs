//! The tiling linear program (5.1) and its solution (§5 of the paper).
//!
//! In log base `M` space, a rectangular tile with edge lengths `b_i = M^{λ_i}`
//! fits its array footprints in cache iff `Σ_{i ∈ supp(φ_j)} λ_i ≤ 1` for
//! every array `j`, and fits inside the iteration space iff `λ_i ≤ β_i`.
//! Maximizing the tile volume `Σ_i λ_i` subject to those constraints is LP
//! (5.1); Theorem 3 shows its optimum equals the Theorem-2 exponent, so the
//! resulting rectangle attains the communication lower bound.

use projtile_arith::{log, Rational};
use projtile_loopnest::LoopNest;
use projtile_lp::{solve, Constraint, LinearProgram, Relation};
use serde::{Deserialize, Serialize};

use crate::bounds::betas;
use crate::tiling::Tiling;

/// Solution of the tiling LP in log-space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilingSolution {
    /// Optimal block exponents `λ_1, ..., λ_d` (`b_i = M^{λ_i}`).
    pub lambda: Vec<Rational>,
    /// Optimal value `Σ_i λ_i` — the log (base `M`) of the tile cardinality.
    pub value: Rational,
}

/// Builds LP (5.1) for `nest` with fast-memory size `cache_size`.
///
/// Variables are the block exponents `λ_1..λ_d`; constraints are one
/// footprint row per array plus one loop-bound row `λ_i ≤ β_i` per loop index
/// (the paper only adds the latter for the "small" indices, but adding them
/// for every index changes nothing: for large indices they are slack).
pub fn tiling_lp(nest: &LoopNest, cache_size: u64) -> LinearProgram {
    let d = nest.num_loops();
    let beta = betas(nest, cache_size);
    let mut lp = LinearProgram::maximize(vec![Rational::one(); d]);
    for j in 0..nest.num_arrays() {
        let coeffs: Vec<Rational> = (0..d)
            .map(|i| {
                if nest.support(j).contains(i) {
                    Rational::one()
                } else {
                    Rational::zero()
                }
            })
            .collect();
        lp.add_constraint(Constraint::new(coeffs, Relation::Le, Rational::one()));
    }
    for (i, beta_i) in beta.into_iter().enumerate() {
        let mut coeffs = vec![Rational::zero(); d];
        coeffs[i] = Rational::one();
        lp.add_constraint(Constraint::new(coeffs, Relation::Le, beta_i));
    }
    lp
}

/// Solves LP (5.1).
// lint: allow(L008) expect/assert pin LP feasibility: the tiling polytope is non-empty by construction
pub fn solve_tiling_lp(nest: &LoopNest, cache_size: u64) -> TilingSolution {
    assert!(cache_size >= 2, "cache size must be at least 2 words");
    let lp = tiling_lp(nest, cache_size);
    let sol = solve(&lp).expect("the tiling LP is always feasible (λ = 0) and bounded (λ_i ≤ 1)");
    TilingSolution {
        lambda: sol.values,
        value: sol.objective_value,
    }
}

/// Converts a log-space solution to concrete integer tile edge lengths:
/// `b_i = ⌊M^{λ_i}⌋`, clamped to `[1, L_i]`, using exact integer roots when
/// `M^{λ_i}` is an exact integer power.
pub fn tile_dims_from_lambda(nest: &LoopNest, cache_size: u64, lambda: &[Rational]) -> Vec<u64> {
    let bounds = nest.bounds();
    lambda
        .iter()
        .zip(&bounds)
        .map(|(l, &bound)| {
            let b = log::floor_pow(cache_size as u128, l);
            u64::try_from(b.min(bound as u128)).unwrap_or(bound).max(1)
        })
        .collect()
}

/// Solves LP (5.1) and materializes the optimal rectangular [`Tiling`].
pub fn optimal_tiling(nest: &LoopNest, cache_size: u64) -> Tiling {
    let sol = solve_tiling_lp(nest, cache_size);
    let tile = tile_dims_from_lambda(nest, cache_size, &sol.lambda);
    Tiling::new(nest.clone(), cache_size, tile, Some(sol.lambda))
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_arith::{int, ratio};
    use projtile_loopnest::builders;

    #[test]
    fn matmul_large_bounds_square_tile() {
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 8, 1 << 8, 1 << 8);
        let sol = solve_tiling_lp(&nest, m);
        assert_eq!(sol.value, ratio(3, 2));
        assert_eq!(sol.lambda, vec![ratio(1, 2), ratio(1, 2), ratio(1, 2)]);
        let dims = tile_dims_from_lambda(&nest, m, &sol.lambda);
        assert_eq!(dims, vec![32, 32, 32]);
    }

    #[test]
    fn matmul_small_l3_lp_matches_equation_6_3() {
        // §6.1: with β3 <= 1/2 the optimum is 1 + β3.
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 8, 1 << 8, 1 << 2);
        let sol = solve_tiling_lp(&nest, m);
        assert_eq!(sol.value, &int(1) + &ratio(2, 10));
        // λ3 is pinned at β3.
        assert_eq!(sol.lambda[2], ratio(2, 10));
        // The other two exponents sum to 1 (the first footprint constraint is
        // tight at any optimal vertex).
        assert_eq!(&sol.lambda[0] + &sol.lambda[1], int(1));
    }

    #[test]
    fn matvec_tile_is_column_panel() {
        // L3 = 1: the optimal tile is M/1 x 1 x 1 (or any optimal point with
        // λ1 + λ2 = 1); its cardinality is M.
        let m = 1u64 << 10;
        let nest = builders::matvec(1 << 8, 1 << 9);
        let sol = solve_tiling_lp(&nest, m);
        assert_eq!(sol.value, int(1));
        let dims = tile_dims_from_lambda(&nest, m, &sol.lambda);
        assert_eq!(dims[2], 1);
        assert_eq!((dims[0] as u128) * (dims[1] as u128), m as u128);
    }

    #[test]
    fn tile_dims_clamped_to_bounds() {
        // Tiny problem: every dimension clamps to its loop bound.
        let m = 1u64 << 12;
        let nest = builders::matmul(4, 8, 2);
        let tiling = optimal_tiling(&nest, m);
        assert_eq!(tiling.tile_dims(), &[4, 8, 2]);
        assert_eq!(tiling.num_tiles(), 1);
    }

    #[test]
    fn nbody_tile_shape_matches_section_6_3() {
        let m = 1u64 << 8;
        // Both large: M x M tile.
        let t = optimal_tiling(&builders::nbody(1 << 10, 1 << 10), m);
        assert_eq!(t.tile_dims(), &[256, 256]);
        // L1 small: L1 x M tile.
        let t = optimal_tiling(&builders::nbody(1 << 4, 1 << 10), m);
        assert_eq!(t.tile_dims(), &[16, 256]);
        // Both small: the whole space is one tile.
        let t = optimal_tiling(&builders::nbody(1 << 4, 1 << 6), m);
        assert_eq!(t.tile_dims(), &[16, 64]);
        assert_eq!(t.num_tiles(), 1);
    }

    #[test]
    fn lp_value_bounded_by_classical_exponent_and_sum_of_betas() {
        for seed in 0..10u64 {
            let nest = builders::random_projective(seed, 4, 4, (1, 64));
            let m = 1u64 << 6;
            let sol = solve_tiling_lp(&nest, m);
            let khbl = crate::hbl::hbl_exponent(&nest);
            let beta_sum: Rational = betas(&nest, m)
                .into_iter()
                .fold(Rational::zero(), |acc, b| &acc + &b);
            assert!(sol.value <= khbl, "seed {seed}");
            assert!(sol.value <= beta_sum, "seed {seed}");
            assert!(!sol.value.is_negative(), "seed {seed}");
            // The returned λ point is feasible for the LP it solves.
            let lp = tiling_lp(&nest, m);
            assert!(lp.is_feasible(&sol.lambda), "seed {seed}");
        }
    }

    #[test]
    fn lambda_never_exceeds_beta_or_one() {
        let m = 1u64 << 8;
        for seed in 0..10u64 {
            let nest = builders::random_projective(seed, 5, 4, (1, 1024));
            let sol = solve_tiling_lp(&nest, m);
            for (l, b) in sol.lambda.iter().zip(betas(&nest, m)) {
                assert!(*l <= b);
                assert!(*l <= Rational::one());
                assert!(!l.is_negative());
            }
        }
    }

    #[test]
    fn lp_structure() {
        let nest = builders::pointwise_conv(2, 4, 8, 16, 32);
        let lp = tiling_lp(&nest, 256);
        assert_eq!(lp.num_vars(), 5);
        assert_eq!(lp.num_constraints(), 3 + 5);
    }
}
