//! The Hölder–Brascamp–Lieb linear program (§3 of the paper).
//!
//! For projective loop nests, Theorem 6.6 of Christ–Demmel–Knight–Scanlon–
//! Yelick reduces the HBL constraints to one inequality per *loop index*: the
//! weights `s_j` of the arrays whose support contains index `i` must sum to at
//! least one. That is LP (3.1)/(3.2):
//!
//! ```text
//! minimize  Σ_j s_j
//! subject to Σ_{j : i ∈ supp(φ_j)} s_j ≥ 1      for every loop index i
//!            s_j ≥ 0
//! ```
//!
//! Its optimal value `k_HBL` bounds the size of any tile whose array
//! footprints fit in `M` words by `M^{k_HBL}`, giving the classical
//! large-bound communication lower bound `∏ L_i / M^{k_HBL − 1}`.
//!
//! Theorem 2 needs the same LP with some rows (loop indices) deleted — the
//! indices in the small-bound subset `Q` — so the construction takes the set
//! of removed rows as a parameter.

use projtile_arith::Rational;
use projtile_loopnest::{IndexSet, LoopNest};
use projtile_lp::{solve, Constraint, LinearProgram, LpError, Relation};

/// Solution of the (possibly row-deleted) HBL LP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HblSolution {
    /// Optimal array weights `s_1, ..., s_n` (indexed like the nest's arrays).
    pub s: Vec<Rational>,
    /// Optimal value `Σ_j s_j`.
    pub value: Rational,
    /// The loop-index rows that were removed before solving (the paper's `Q`).
    pub removed_rows: IndexSet,
}

/// Builds the HBL LP (3.2) for `nest`, omitting the constraint rows of the
/// loop indices in `removed_rows` (pass [`IndexSet::empty`] for the plain
/// large-bound LP).
pub fn hbl_lp(nest: &LoopNest, removed_rows: IndexSet) -> LinearProgram {
    let n = nest.num_arrays();
    let d = nest.num_loops();
    let mut lp = LinearProgram::minimize(vec![Rational::one(); n]);
    for i in 0..d {
        if removed_rows.contains(i) {
            continue;
        }
        let coeffs: Vec<Rational> = (0..n)
            .map(|j| {
                if nest.support(j).contains(i) {
                    Rational::one()
                } else {
                    Rational::zero()
                }
            })
            .collect();
        lp.add_constraint(Constraint::new(coeffs, Relation::Ge, Rational::one()));
    }
    lp
}

/// Solves the (row-deleted) HBL LP.
///
/// The LP is always feasible (setting every `s_j = 1` satisfies all rows
/// because every retained loop index appears in at least one support) and
/// bounded below by zero, so failure indicates an internal error.
pub fn solve_hbl(nest: &LoopNest, removed_rows: IndexSet) -> HblSolution {
    let lp = hbl_lp(nest, removed_rows);
    match solve(&lp) {
        Ok(sol) => HblSolution {
            s: sol.values,
            value: sol.objective_value,
            removed_rows,
        },
        Err(LpError::Infeasible) | Err(LpError::Unbounded) | Err(LpError::Malformed(_)) => {
            unreachable!("the projective HBL LP is always feasible and bounded")
        }
    }
}

/// The large-bound exponent `k_HBL` (§3): the optimal value of the full HBL LP.
pub fn hbl_exponent(nest: &LoopNest) -> Rational {
    solve_hbl(nest, IndexSet::empty()).value
}

/// The classical large-bound communication lower bound
/// `∏ L_i / M^{k_HBL − 1}`, evaluated as a floating-point word count.
pub fn large_bound_lower_bound(nest: &LoopNest, cache_size: u64) -> f64 {
    let k = hbl_exponent(nest);
    let ops: f64 = nest.iteration_space_size() as f64;
    let m = cache_size as f64;
    ops / m.powf(k.to_f64() - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_arith::{int, ratio};
    use projtile_loopnest::builders;

    #[test]
    fn matmul_khbl_is_three_halves() {
        let nest = builders::matmul(100, 100, 100);
        let sol = solve_hbl(&nest, IndexSet::empty());
        assert_eq!(sol.value, ratio(3, 2));
        assert_eq!(sol.s, vec![ratio(1, 2), ratio(1, 2), ratio(1, 2)]);
        assert_eq!(hbl_exponent(&nest), ratio(3, 2));
    }

    #[test]
    fn matmul_row_deleted_lp_matches_equation_6_2() {
        // Removing the x3 row leaves constraints s1+s2>=1 (row x1) and
        // s2+s3>=1 (row x2); the optimum is 1 (s2 = 1).
        let nest = builders::matmul(100, 100, 100);
        let k_pos = nest.index_position("k").unwrap();
        let sol = solve_hbl(&nest, IndexSet::from_indices([k_pos]));
        assert_eq!(sol.value, int(1));
        // s2 = 1 is an optimal solution; the solver may return any optimum,
        // but the value must be exactly 1 and the point must satisfy (6.2).
        let lp = hbl_lp(&nest, IndexSet::from_indices([k_pos]));
        assert!(lp.is_feasible(&sol.s));
    }

    #[test]
    fn nbody_khbl_is_two() {
        // n-body: Acc(x1), Src(x1), Other(x2). Row x1: s1+s2>=1; row x2: s3>=1.
        // Optimum: s1=1 (or s2=1), s3=1 -> k = 2.
        let nest = builders::nbody(50, 60);
        assert_eq!(hbl_exponent(&nest), int(2));
    }

    #[test]
    fn pointwise_conv_khbl_is_three_halves() {
        // §6.2: contraction-shaped programs share matmul's exponent.
        let nest = builders::pointwise_conv(8, 8, 8, 8, 8);
        assert_eq!(hbl_exponent(&nest), ratio(3, 2));
    }

    #[test]
    fn removing_all_rows_gives_zero() {
        let nest = builders::matmul(10, 10, 10);
        let sol = solve_hbl(&nest, IndexSet::full(3));
        assert_eq!(sol.value, int(0));
        assert!(sol.s.iter().all(|v| v.is_zero()));
    }

    #[test]
    fn row_deletion_never_increases_value() {
        // Removing constraints can only lower (or keep) the optimum of a
        // minimization problem — the monotonicity Theorem 2 builds on.
        for seed in 0..10u64 {
            let nest = builders::random_projective(seed, 4, 4, (2, 64));
            let full = solve_hbl(&nest, IndexSet::empty()).value;
            for q in IndexSet::all_subsets(4) {
                let partial = solve_hbl(&nest, q).value;
                assert!(partial <= full, "seed {seed}, Q={q:?}");
            }
        }
    }

    #[test]
    fn hbl_values_lie_in_valid_range() {
        // 0 <= k_HBL <= n (taking every s_j = 1 is feasible) and k_HBL >= 1
        // whenever at least one row remains.
        for seed in 0..10u64 {
            let nest = builders::random_projective(seed, 5, 3, (2, 32));
            let k = hbl_exponent(&nest);
            assert!(k >= Rational::one());
            assert!(k <= int(nest.num_arrays() as i64));
        }
    }

    #[test]
    fn large_bound_lower_bound_matches_formula() {
        let nest = builders::matmul(1 << 6, 1 << 6, 1 << 6);
        let m = 1u64 << 8;
        let lb = large_bound_lower_bound(&nest, m);
        let expect = (1u128 << 18) as f64 / (m as f64).sqrt();
        assert!((lb - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn lp_structure_matches_nest_dimensions() {
        let nest = builders::pointwise_conv(4, 4, 4, 4, 4);
        let lp = hbl_lp(&nest, IndexSet::empty());
        assert_eq!(lp.num_vars(), nest.num_arrays());
        assert_eq!(lp.num_constraints(), nest.num_loops());
        let lp_del = hbl_lp(&nest, IndexSet::from_indices([0, 2]));
        assert_eq!(lp_del.num_constraints(), nest.num_loops() - 2);
    }
}
