//! The Hölder–Brascamp–Lieb linear program (§3 of the paper).
//!
//! For projective loop nests, Theorem 6.6 of Christ–Demmel–Knight–Scanlon–
//! Yelick reduces the HBL constraints to one inequality per *loop index*: the
//! weights `s_j` of the arrays whose support contains index `i` must sum to at
//! least one. That is LP (3.1)/(3.2):
//!
//! ```text
//! minimize  Σ_j s_j
//! subject to Σ_{j : i ∈ supp(φ_j)} s_j ≥ 1      for every loop index i
//!            s_j ≥ 0
//! ```
//!
//! Its optimal value `k_HBL` bounds the size of any tile whose array
//! footprints fit in `M` words by `M^{k_HBL}`, giving the classical
//! large-bound communication lower bound `∏ L_i / M^{k_HBL − 1}`.
//!
//! Theorem 2 needs the same LP with some rows (loop indices) deleted — the
//! indices in the small-bound subset `Q` — so the construction takes the set
//! of removed rows as a parameter.
//!
//! # Row deletion as right-hand-side relaxation
//!
//! Because every variable is non-negative and every constraint has 0/1
//! coefficients, deleting the row of loop index `i` is equivalent to keeping
//! the row and **relaxing its right-hand side to zero**: `Σ s_j ≥ 0` is
//! implied by `s ≥ 0`, so the feasible region (and hence the optimal value)
//! is identical. This rewrites the entire `2^d` family of row-deleted LPs as
//! one constraint matrix with `2^d` right-hand sides in `{0,1}^d` — exactly
//! the shape [`projtile_lp::SolverContext`] warm-starts across. [`HblFamily`]
//! packages that: one retained basis per family, re-entered per subset via
//! the dual simplex, with results **bitwise-identical** to the cold
//! [`solve_hbl`] (both paths report the canonical lex-min optimal vertex, a
//! property of the program rather than of the pivot path).

use projtile_arith::Rational;
use projtile_loopnest::{IndexSet, LoopNest};
use projtile_lp::{solve_canonical, Constraint, LinearProgram, LpError, Relation, SolverContext};

/// Solution of the (possibly row-deleted) HBL LP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HblSolution {
    /// Optimal array weights `s_1, ..., s_n` (indexed like the nest's arrays).
    pub s: Vec<Rational>,
    /// Optimal value `Σ_j s_j`.
    pub value: Rational,
    /// The loop-index rows that were removed before solving (the paper's `Q`).
    pub removed_rows: IndexSet,
}

/// Builds the HBL LP (3.2) for `nest`, omitting the constraint rows of the
/// loop indices in `removed_rows` (pass [`IndexSet::empty`] for the plain
/// large-bound LP).
pub fn hbl_lp(nest: &LoopNest, removed_rows: IndexSet) -> LinearProgram {
    let n = nest.num_arrays();
    let d = nest.num_loops();
    let mut lp = LinearProgram::minimize(vec![Rational::one(); n]);
    for i in 0..d {
        if removed_rows.contains(i) {
            continue;
        }
        let coeffs: Vec<Rational> = (0..n)
            .map(|j| {
                if nest.support(j).contains(i) {
                    Rational::one()
                } else {
                    Rational::zero()
                }
            })
            .collect();
        lp.add_constraint(Constraint::new(coeffs, Relation::Ge, Rational::one()));
    }
    lp
}

/// Builds the full-matrix HBL LP with the rows of `relaxed_rows` kept but
/// relaxed to a zero right-hand side — the same feasible region and optimal
/// value as [`hbl_lp`] with those rows deleted (see the module docs), but a
/// constraint matrix shared by all `2^d` subsets.
pub fn hbl_lp_relaxed(nest: &LoopNest, relaxed_rows: IndexSet) -> LinearProgram {
    let n = nest.num_arrays();
    let d = nest.num_loops();
    let mut lp = LinearProgram::minimize(vec![Rational::one(); n]);
    for i in 0..d {
        let coeffs: Vec<Rational> = (0..n)
            .map(|j| {
                if nest.support(j).contains(i) {
                    Rational::one()
                } else {
                    Rational::zero()
                }
            })
            .collect();
        let rhs = if relaxed_rows.contains(i) {
            Rational::zero()
        } else {
            Rational::one()
        };
        lp.add_constraint(Constraint::new(coeffs, Relation::Ge, rhs));
    }
    lp
}

// lint: allow(L008) unreachable: the LP solver returns one of the matched statuses by construction
fn to_hbl_solution(
    result: Result<projtile_lp::Solution, LpError>,
    removed_rows: IndexSet,
) -> HblSolution {
    match result {
        Ok(sol) => HblSolution {
            s: sol.values,
            value: sol.objective_value,
            removed_rows,
        },
        Err(LpError::Infeasible) | Err(LpError::Unbounded) | Err(LpError::Malformed(_)) => {
            unreachable!("the projective HBL LP is always feasible and bounded")
        }
    }
}

/// Solves the (row-deleted) HBL LP with a cold solve of the relaxed-rhs
/// formulation, reporting the canonical (lex-min) optimal weights; this is
/// the differential oracle the warm-started [`HblFamily`] is tested against
/// (bitwise-equal results).
///
/// The LP is always feasible (setting every `s_j = 1` satisfies all rows
/// because every retained loop index appears in at least one support) and
/// bounded below by zero, so failure indicates an internal error.
pub fn solve_hbl(nest: &LoopNest, removed_rows: IndexSet) -> HblSolution {
    let lp = hbl_lp_relaxed(nest, removed_rows);
    to_hbl_solution(solve_canonical(&lp), removed_rows)
}

/// A warm-started solver for one nest's family of row-deleted HBL LPs.
///
/// All `2^d` subsets share one constraint matrix under the rhs-relaxation
/// rewrite, so consecutive [`HblFamily::solve`] calls re-enter the dual
/// simplex from the previous optimal basis. Solving subsets in an order where
/// neighbours differ in few indices (Gray-code order) makes most re-entries a
/// single pivot. Results are bitwise-identical to [`solve_hbl`].
pub struct HblFamily {
    lp: LinearProgram,
    ctx: SolverContext,
}

impl HblFamily {
    /// Creates a family for `nest`; no LP is solved yet.
    pub fn new(nest: &LoopNest) -> HblFamily {
        HblFamily {
            lp: hbl_lp_relaxed(nest, IndexSet::empty()),
            ctx: SolverContext::new(),
        }
    }

    /// Solves the HBL LP with the rows of `removed_rows` relaxed, exactly as
    /// [`solve_hbl`] would.
    pub fn solve(&mut self, removed_rows: IndexSet) -> HblSolution {
        for (i, c) in self.lp.constraints.iter_mut().enumerate() {
            c.rhs = if removed_rows.contains(i) {
                Rational::zero()
            } else {
                Rational::one()
            };
        }
        // The family owns its program and only ever rewrites the rhs, so the
        // structure-check-free re-entry applies.
        to_hbl_solution(self.ctx.solve_rhs_update(&self.lp), removed_rows)
    }

    /// Warm-start counters (for tests and perf reports).
    pub fn stats(&self) -> projtile_lp::ContextStats {
        self.ctx.stats()
    }
}

/// The large-bound exponent `k_HBL` (§3): the optimal value of the full HBL LP.
pub fn hbl_exponent(nest: &LoopNest) -> Rational {
    solve_hbl(nest, IndexSet::empty()).value
}

/// The classical large-bound communication lower bound
/// `∏ L_i / M^{k_HBL − 1}`, evaluated as a floating-point word count.
pub fn large_bound_lower_bound(nest: &LoopNest, cache_size: u64) -> f64 {
    let k = hbl_exponent(nest);
    let ops: f64 = nest.iteration_space_size() as f64;
    let m = cache_size as f64;
    ops / m.powf(k.to_f64() - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_arith::{int, ratio};
    use projtile_loopnest::builders;

    #[test]
    fn matmul_khbl_is_three_halves() {
        let nest = builders::matmul(100, 100, 100);
        let sol = solve_hbl(&nest, IndexSet::empty());
        assert_eq!(sol.value, ratio(3, 2));
        assert_eq!(sol.s, vec![ratio(1, 2), ratio(1, 2), ratio(1, 2)]);
        assert_eq!(hbl_exponent(&nest), ratio(3, 2));
    }

    #[test]
    fn matmul_row_deleted_lp_matches_equation_6_2() {
        // Removing the x3 row leaves constraints s1+s2>=1 (row x1) and
        // s2+s3>=1 (row x2); the optimum is 1 (s2 = 1).
        let nest = builders::matmul(100, 100, 100);
        let k_pos = nest.index_position("k").unwrap();
        let sol = solve_hbl(&nest, IndexSet::from_indices([k_pos]));
        assert_eq!(sol.value, int(1));
        // s2 = 1 is an optimal solution; the solver may return any optimum,
        // but the value must be exactly 1 and the point must satisfy (6.2).
        let lp = hbl_lp(&nest, IndexSet::from_indices([k_pos]));
        assert!(lp.is_feasible(&sol.s));
    }

    #[test]
    fn nbody_khbl_is_two() {
        // n-body: Acc(x1), Src(x1), Other(x2). Row x1: s1+s2>=1; row x2: s3>=1.
        // Optimum: s1=1 (or s2=1), s3=1 -> k = 2.
        let nest = builders::nbody(50, 60);
        assert_eq!(hbl_exponent(&nest), int(2));
    }

    #[test]
    fn pointwise_conv_khbl_is_three_halves() {
        // §6.2: contraction-shaped programs share matmul's exponent.
        let nest = builders::pointwise_conv(8, 8, 8, 8, 8);
        assert_eq!(hbl_exponent(&nest), ratio(3, 2));
    }

    #[test]
    fn removing_all_rows_gives_zero() {
        let nest = builders::matmul(10, 10, 10);
        let sol = solve_hbl(&nest, IndexSet::full(3));
        assert_eq!(sol.value, int(0));
        assert!(sol.s.iter().all(|v| v.is_zero()));
    }

    #[test]
    fn row_deletion_never_increases_value() {
        // Removing constraints can only lower (or keep) the optimum of a
        // minimization problem — the monotonicity Theorem 2 builds on.
        for seed in 0..10u64 {
            let nest = builders::random_projective(seed, 4, 4, (2, 64));
            let full = solve_hbl(&nest, IndexSet::empty()).value;
            for q in IndexSet::all_subsets(4) {
                let partial = solve_hbl(&nest, q).value;
                assert!(partial <= full, "seed {seed}, Q={q:?}");
            }
        }
    }

    #[test]
    fn hbl_values_lie_in_valid_range() {
        // 0 <= k_HBL <= n (taking every s_j = 1 is feasible) and k_HBL >= 1
        // whenever at least one row remains.
        for seed in 0..10u64 {
            let nest = builders::random_projective(seed, 5, 3, (2, 32));
            let k = hbl_exponent(&nest);
            assert!(k >= Rational::one());
            assert!(k <= int(nest.num_arrays() as i64));
        }
    }

    #[test]
    fn large_bound_lower_bound_matches_formula() {
        let nest = builders::matmul(1 << 6, 1 << 6, 1 << 6);
        let m = 1u64 << 8;
        let lb = large_bound_lower_bound(&nest, m);
        let expect = (1u128 << 18) as f64 / (m as f64).sqrt();
        assert!((lb - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn relaxed_formulation_matches_row_deleted_values() {
        // Identical feasible regions: the relaxed LP's optimum equals the
        // row-deleted LP's optimum for every subset, and its solution is
        // feasible for the row-deleted program.
        for seed in 0..8u64 {
            let nest = builders::random_projective(seed, 4, 4, (2, 64));
            for q in IndexSet::all_subsets(4) {
                let relaxed = solve_hbl(&nest, q);
                let row_deleted = hbl_lp(&nest, q);
                assert!(row_deleted.is_feasible(&relaxed.s), "seed {seed}, Q={q:?}");
                let deleted_opt = projtile_lp::solve(&row_deleted).expect("row-deleted LP solves");
                assert_eq!(
                    relaxed.value, deleted_opt.objective_value,
                    "seed {seed}, Q={q:?}"
                );
            }
        }
    }

    #[test]
    fn warm_family_is_bitwise_identical_to_cold_solves() {
        // The differential oracle of the warm-start layer at the HBL level:
        // sweep all subsets in Gray-code order (the batched driver's order)
        // and compare every field against a cold solve.
        for seed in [0u64, 3, 11] {
            let nest = builders::random_projective(seed, 6, 4, (1, 128));
            let mut family = HblFamily::new(&nest);
            for g in (0u64..1 << 6).map(|i| i ^ (i >> 1)) {
                let q = IndexSet::from_bits(g);
                let warm = family.solve(q);
                let cold = solve_hbl(&nest, q);
                assert_eq!(warm, cold, "seed {seed}, Q={q:?}");
            }
            let stats = family.stats();
            assert!(
                stats.warm_solves > 0,
                "seed {seed}: warm path never taken: {stats:?}"
            );
        }
    }

    #[test]
    fn lp_structure_matches_nest_dimensions() {
        let nest = builders::pointwise_conv(4, 4, 4, 4, 4);
        let lp = hbl_lp(&nest, IndexSet::empty());
        assert_eq!(lp.num_vars(), nest.num_arrays());
        assert_eq!(lp.num_constraints(), nest.num_loops());
        let lp_del = hbl_lp(&nest, IndexSet::from_indices([0, 2]));
        assert_eq!(lp_del.num_constraints(), nest.num_loops() - 2);
    }
}
