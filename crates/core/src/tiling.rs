//! Concrete rectangular tilings and their analytic communication cost.
//!
//! A [`Tiling`] is a loop nest, a cache size, and integer tile edge lengths
//! `b_1 × ... × b_d`. Executing the nest tile-by-tile loads, for each tile,
//! the subset of every array it touches; summing those footprints over all
//! tiles gives the schedule's analytic communication volume, which the
//! benchmarks compare against the Theorem-2 lower bound and against the
//! traffic measured by the cache simulator.

use projtile_arith::Rational;
use projtile_loopnest::{iteration, LoopNest};

use crate::bounds::arbitrary_bound_exponent;

/// A rectangular tiling of a loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct Tiling {
    nest: LoopNest,
    cache_size: u64,
    tile: Vec<u64>,
    /// Log-space exponents this tiling was derived from, if any.
    lambda: Option<Vec<Rational>>,
}

/// Summary of the analytic communication behaviour of a [`Tiling`].
#[derive(Debug, Clone, PartialEq)]
pub struct CommunicationModel {
    /// Number of tiles covering the iteration space.
    pub num_tiles: u128,
    /// Words touched by one full (interior) tile.
    pub tile_footprint: u128,
    /// Total words loaded over the whole execution, assuming each tile loads
    /// exactly the array elements it touches (boundary tiles counted exactly).
    pub total_words: u128,
    /// The Theorem-2 communication lower bound for the same nest and cache.
    pub lower_bound_words: f64,
    /// `total_words / lower_bound_words` — the constant factor the schedule
    /// pays over the lower bound (≥ 1 up to rounding; the paper ignores such
    /// constants).
    pub ratio_to_lower_bound: f64,
}

impl Tiling {
    /// Creates a tiling from explicit integer tile edge lengths.
    ///
    /// # Panics
    /// Panics if the tile dimension count does not match the nest or any edge
    /// is zero.
    pub fn new(
        nest: LoopNest,
        cache_size: u64,
        tile: Vec<u64>,
        lambda: Option<Vec<Rational>>,
    ) -> Tiling {
        assert_eq!(tile.len(), nest.num_loops(), "tile dimension mismatch");
        assert!(tile.iter().all(|&b| b > 0), "tile edges must be positive");
        assert!(cache_size >= 2, "cache size must be at least 2 words");
        let bounds = nest.bounds();
        let tile = tile
            .into_iter()
            .zip(&bounds)
            .map(|(b, &l)| b.min(l))
            .collect();
        Tiling {
            nest,
            cache_size,
            tile,
            lambda,
        }
    }

    /// The underlying loop nest.
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// The cache size this tiling targets.
    pub fn cache_size(&self) -> u64 {
        self.cache_size
    }

    /// The integer tile edge lengths `b_1, ..., b_d`.
    pub fn tile_dims(&self) -> &[u64] {
        &self.tile
    }

    /// The log-space exponents this tiling was derived from, if it came from
    /// the tiling LP.
    pub fn lambda(&self) -> Option<&[Rational]> {
        self.lambda.as_deref()
    }

    /// Number of points in one full tile.
    pub fn tile_volume(&self) -> u128 {
        self.tile.iter().map(|&b| b as u128).product()
    }

    /// Number of tiles covering the iteration space.
    pub fn num_tiles(&self) -> u128 {
        iteration::tile_count(&self.nest.bounds(), &self.tile)
    }

    /// Words touched by one full (interior) tile, summed over all arrays.
    pub fn tile_footprint(&self) -> u128 {
        self.nest.tile_footprint(&self.tile)
    }

    /// Returns `true` iff the per-tile footprint fits in `slack × M` words.
    ///
    /// The paper ignores constant factors (a tile touching `n` arrays needs up
    /// to `n·M` words if each footprint individually is `M`); `slack` makes
    /// that constant explicit. `slack = nest.num_arrays()` always suffices for
    /// LP-derived tilings.
    pub fn fits_in_cache(&self, slack: f64) -> bool {
        self.tile_footprint() as f64 <= slack * self.cache_size as f64
    }

    /// Shrinks tile edges (largest first) until the footprint fits in
    /// `slack × M` words. Used when a downstream consumer needs the literal
    /// single-`M` guarantee rather than the paper's up-to-constants statement.
    pub fn shrink_to_fit(&mut self, slack: f64) {
        while !self.fits_in_cache(slack) {
            // Halve the largest shrinkable edge; stop if nothing can shrink.
            let Some((axis, _)) = self
                .tile
                .iter()
                .enumerate()
                .filter(|(_, &b)| b > 1)
                .max_by_key(|(_, &b)| b)
            else {
                return;
            };
            self.tile[axis] = (self.tile[axis] / 2).max(1);
        }
    }

    /// Exact total number of words loaded by a tile-by-tile execution in which
    /// every tile loads precisely the array elements it touches.
    ///
    /// For each array `j`, the elements loaded across all tiles are the whole
    /// array once per combination of tile positions along the axes *outside*
    /// `supp(φ_j)`:
    /// `Σ_j  |A_j| · ∏_{i ∉ supp(φ_j)} ⌈L_i / b_i⌉`.
    pub fn analytic_communication(&self) -> u128 {
        let bounds = self.nest.bounds();
        let tiles_per_axis: Vec<u128> = bounds
            .iter()
            .zip(&self.tile)
            .map(|(&l, &b)| l.div_ceil(b) as u128)
            .collect();
        (0..self.nest.num_arrays())
            .map(|j| {
                let reloads: u128 = (0..self.nest.num_loops())
                    .filter(|&i| !self.nest.support(j).contains(i))
                    .map(|i| tiles_per_axis[i])
                    .product();
                self.nest.array_size(j) * reloads
            })
            .sum()
    }

    /// Builds the full communication summary, including the ratio to the
    /// Theorem-2 lower bound.
    pub fn communication_model(&self) -> CommunicationModel {
        let lb = arbitrary_bound_exponent(&self.nest, self.cache_size);
        let total_words = self.analytic_communication();
        let ratio = if lb.words > 0.0 {
            total_words as f64 / lb.words
        } else {
            f64::INFINITY
        };
        CommunicationModel {
            num_tiles: self.num_tiles(),
            tile_footprint: self.tile_footprint(),
            total_words,
            lower_bound_words: lb.words,
            ratio_to_lower_bound: ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling_lp::optimal_tiling;
    use projtile_loopnest::builders;

    #[test]
    fn basic_geometry() {
        let nest = builders::matmul(64, 64, 64);
        let t = Tiling::new(nest, 1 << 10, vec![32, 32, 32], None);
        assert_eq!(t.tile_dims(), &[32, 32, 32]);
        assert_eq!(t.tile_volume(), 32 * 32 * 32);
        assert_eq!(t.num_tiles(), 8);
        assert_eq!(t.tile_footprint(), 3 * 32 * 32);
        assert!(t.fits_in_cache(3.0));
        assert!(!t.fits_in_cache(1.0));
    }

    #[test]
    fn tile_edges_clamped_to_bounds() {
        let nest = builders::matmul(4, 4, 4);
        let t = Tiling::new(nest, 1 << 10, vec![100, 100, 100], None);
        assert_eq!(t.tile_dims(), &[4, 4, 4]);
        assert_eq!(t.num_tiles(), 1);
    }

    #[test]
    fn analytic_communication_matmul_square_tiles() {
        // 64^3 matmul with 32^3 tiles: each array is reloaded once per tile
        // position along its missing axis (2 positions), so total = 3 arrays *
        // 64*64 elements * 2 reloads.
        let nest = builders::matmul(64, 64, 64);
        let t = Tiling::new(nest, 1 << 10, vec![32, 32, 32], None);
        assert_eq!(t.analytic_communication(), 3 * 64 * 64 * 2);
    }

    #[test]
    fn analytic_communication_counts_boundary_tiles_exactly() {
        // Non-dividing tile sizes: formula still exact.
        let nest = builders::matmul(5, 7, 3);
        let t = Tiling::new(nest.clone(), 16, vec![2, 3, 2], None);
        // Manually: tiles per axis = [3, 3, 2].
        // C(i,k): size 15, reloads over j-axis tiles = 3 -> 45
        // A(i,j): size 35, reloads over k-axis tiles = 2 -> 70
        // B(j,k): size 21, reloads over i-axis tiles = 3 -> 63
        assert_eq!(t.analytic_communication(), 45 + 70 + 63);
    }

    #[test]
    fn optimal_tiling_is_near_lower_bound_for_matmul() {
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 7, 1 << 7, 1 << 7);
        let t = optimal_tiling(&nest, m);
        let model = t.communication_model();
        // The analytic communication of the optimal tiling is within a small
        // constant of the lower bound (the constant is ~3 here: three arrays).
        assert!(model.ratio_to_lower_bound >= 0.99);
        assert!(
            model.ratio_to_lower_bound < 4.0,
            "ratio {}",
            model.ratio_to_lower_bound
        );
    }

    #[test]
    fn matvec_optimal_tiling_reads_matrix_once() {
        let m = 1u64 << 10;
        let nest = builders::matvec(1 << 8, 1 << 8);
        let t = optimal_tiling(&nest, m);
        let model = t.communication_model();
        // Lower bound is L1*L2 (the matrix); the tiling's total traffic is
        // within a small constant of it.
        assert!((model.lower_bound_words - (1u64 << 16) as f64).abs() < 1.0);
        assert!(model.ratio_to_lower_bound < 4.0);
    }

    #[test]
    fn untiled_execution_is_far_from_lower_bound() {
        // Tile = a single row of the iteration space (classic untiled inner
        // loop): communication blows up relative to the lower bound.
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 7, 1 << 7, 1 << 7);
        let naive = Tiling::new(nest.clone(), m, vec![1, 1, 1 << 7], None);
        let optimal = optimal_tiling(&nest, m);
        assert!(
            naive.analytic_communication() > 4 * optimal.analytic_communication(),
            "naive {} vs optimal {}",
            naive.analytic_communication(),
            optimal.analytic_communication()
        );
    }

    #[test]
    fn shrink_to_fit_reaches_target() {
        let nest = builders::matmul(1 << 7, 1 << 7, 1 << 7);
        let mut t = Tiling::new(nest, 1 << 8, vec![128, 128, 128], None);
        assert!(!t.fits_in_cache(1.0));
        t.shrink_to_fit(1.0);
        assert!(t.fits_in_cache(1.0));
        assert!(t.tile_dims().iter().all(|&b| b >= 1));
    }

    #[test]
    fn shrink_to_fit_stops_at_unit_tile() {
        // Even a 1x1x1 tile has footprint 3 > 1, so shrinking stops gracefully.
        let nest = builders::matmul(8, 8, 8);
        let mut t = Tiling::new(nest, 2, vec![8, 8, 8], None);
        t.shrink_to_fit(1.0);
        assert_eq!(t.tile_dims(), &[1, 1, 1]);
    }

    #[test]
    fn communication_model_fields_consistent() {
        let nest = builders::nbody(1 << 6, 1 << 9);
        let t = optimal_tiling(&nest, 1 << 8);
        let model = t.communication_model();
        assert_eq!(model.num_tiles, t.num_tiles());
        assert_eq!(model.tile_footprint, t.tile_footprint());
        assert_eq!(model.total_words, t.analytic_communication());
        assert!(model.lower_bound_words > 0.0);
    }

    #[test]
    #[should_panic(expected = "tile edges must be positive")]
    fn zero_tile_edge_rejected() {
        let nest = builders::matmul(4, 4, 4);
        let _ = Tiling::new(nest, 16, vec![0, 1, 1], None);
    }
}
