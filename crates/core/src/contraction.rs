//! Tensor contractions, pointwise convolutions and fully-connected layers
//! (§6.2 of the paper).
//!
//! The contraction `Out(x_1..x_j, x_k..x_d) += Left(x_1..x_{k-1}) ·
//! Right(x_{j+1}..x_d)` partitions the loop indices into three groups
//! (`[1..j]`, `[j+1..k-1]`, `[k..d]`), each array's support being the union of
//! exactly two groups. Summing the block exponents within each group turns the
//! tiling LP into the matrix-multiplication LP with grouped log-bounds
//! `γ_g = Σ_{i ∈ group g} β_i`, so the optimal exponent is
//! `min(3/2, 1 + min(γ_1, γ_2, γ_3), γ_1 + γ_2 + γ_3)` — the same closed form
//! as §6.1 with `β` replaced by `γ`.

use projtile_arith::{log, Rational};
use projtile_loopnest::builders;

use crate::closed_forms;

/// The grouped log-bounds `(γ_1, γ_2, γ_3)` of a contraction: sums of
/// `β_i = log_M L_i` over the groups `[1..j]`, `[j+1..k-1]`, `[k..d]`
/// (1-based, as in the paper).
pub fn group_betas(j: usize, k: usize, bounds: &[u64], cache_size: u64) -> [Rational; 3] {
    let d = bounds.len();
    assert!(j >= 1 && j < k - 1 && k - 1 < d, "require 1 <= j < k-1 < d");
    let beta = |i: usize| log::beta(bounds[i] as u128, cache_size as u128);
    let sum =
        |range: std::ops::Range<usize>| range.fold(Rational::zero(), |acc, i| &acc + &beta(i));
    [sum(0..j), sum(j..k - 1), sum(k - 1..d)]
}

/// Closed-form optimal tile-size exponent for the contraction (§6.2):
/// `min(3/2, 1 + min γ, Σ γ)`.
pub fn contraction_exponent(j: usize, k: usize, bounds: &[u64], cache_size: u64) -> Rational {
    let [g1, g2, g3] = group_betas(j, k, bounds, cache_size);
    let three_halves = Rational::from_frac(3.into(), 2.into());
    let gmin = g1.clone().min(g2.clone()).min(g3.clone());
    let total = &(&g1 + &g2) + &g3;
    three_halves.min(&Rational::one() + &gmin).min(total)
}

/// Closed-form exponent for the pointwise (1×1) convolution of equation (6.5):
/// the three groups are the output channels `{k}`, the input channels `{c}`,
/// and the spatial/batch block `{b, w, h}`.
pub fn pointwise_conv_exponent(
    batch: u64,
    c_in: u64,
    k_out: u64,
    width: u64,
    height: u64,
    cache_size: u64,
) -> Rational {
    let m = cache_size as u128;
    let beta = |l: u64| log::beta(l as u128, m);
    let g_k = beta(k_out);
    let g_c = beta(c_in);
    let g_spatial = &(&beta(batch) + &beta(width)) + &beta(height);
    let three_halves = Rational::from_frac(3.into(), 2.into());
    let gmin = g_k.clone().min(g_c.clone()).min(g_spatial.clone());
    let total = &(&g_k + &g_c) + &g_spatial;
    three_halves.min(&Rational::one() + &gmin).min(total)
}

/// Closed-form exponent for a fully-connected layer
/// (`Out(b,k) += In(b,c) · W(k,c)`) — a plain matrix multiplication.
pub fn fully_connected_exponent(batch: u64, c_in: u64, k_out: u64, cache_size: u64) -> Rational {
    closed_forms::matmul_exponent(batch, c_in, k_out, cache_size)
}

/// Communication lower bound for the contraction, in words:
/// `∏ L_i · M^{1 − k}` with `k` the contraction exponent.
pub fn contraction_lower_bound_words(j: usize, k: usize, bounds: &[u64], cache_size: u64) -> f64 {
    let exponent = contraction_exponent(j, k, bounds, cache_size);
    let ops: f64 = bounds.iter().map(|&b| b as f64).product();
    ops * (cache_size as f64).powf(1.0 - exponent.to_f64())
}

/// Builds the contraction loop nest (re-exported from the builders for
/// convenience so callers of this module need only one import).
pub fn contraction_nest(j: usize, k: usize, bounds: &[u64]) -> projtile_loopnest::LoopNest {
    builders::tensor_contraction(j, k, bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::arbitrary_bound_exponent;
    use crate::tiling_lp::solve_tiling_lp;
    use projtile_arith::ratio;

    #[test]
    fn group_betas_partition_all_indices() {
        let m = 1u64 << 8;
        let bounds = [4u64, 8, 2, 16, 32];
        let [g1, g2, g3] = group_betas(2, 4, &bounds, m);
        let total = &(&g1 + &g2) + &g3;
        let direct: Rational = bounds.iter().fold(Rational::zero(), |acc, &l| {
            &acc + &projtile_arith::log::beta(l as u128, m as u128)
        });
        assert_eq!(total, direct);
        // Group 1 = x1,x2; group 2 = x3; group 3 = x4,x5 (1-based paper indexing).
        assert_eq!(g1, ratio(2 + 3, 8));
        assert_eq!(g2, ratio(1, 8));
        assert_eq!(g3, ratio(4 + 5, 8));
    }

    #[test]
    fn contraction_closed_form_matches_lp() {
        let m = 1u64 << 8;
        let cases: Vec<(usize, usize, Vec<u64>)> = vec![
            (2, 4, vec![4, 8, 2, 16, 32]),
            (1, 3, vec![2, 4, 8]),
            (1, 3, vec![1 << 6, 1 << 6, 1 << 6]),
            (2, 5, vec![2, 2, 1 << 5, 1 << 5, 1 << 4, 2]),
            (1, 4, vec![1, 4, 16, 1]),
        ];
        for (j, k, bounds) in cases {
            let nest = contraction_nest(j, k, &bounds);
            let lp_value = solve_tiling_lp(&nest, m).value;
            let closed = contraction_exponent(j, k, &bounds, m);
            assert_eq!(lp_value, closed, "j={j}, k={k}, bounds={bounds:?}");
        }
    }

    #[test]
    fn pointwise_conv_closed_form_matches_lp() {
        let m = 1u64 << 8;
        // (batch, c_in, k_out, width, height) mixes of small and large dims,
        // including the machine-learning-typical tiny channel counts that
        // motivate the paper.
        for (b, c, k, w, h) in [
            (1u64 << 5, 1u64 << 5, 1u64 << 5, 1u64 << 5, 1u64 << 5),
            (4, 2, 1 << 6, 1 << 5, 1 << 5),
            (1, 1 << 2, 1 << 2, 1 << 7, 1 << 7),
            (2, 1, 1 << 8, 1 << 4, 1 << 4),
            (1, 1, 1, 2, 2),
        ] {
            let nest = projtile_loopnest::builders::pointwise_conv(b, c, k, w, h);
            let lp_value = solve_tiling_lp(&nest, m).value;
            let closed = pointwise_conv_exponent(b, c, k, w, h, m);
            assert_eq!(lp_value, closed, "({b},{c},{k},{w},{h})");
        }
    }

    #[test]
    fn fully_connected_matches_matmul() {
        let m = 1u64 << 10;
        for (b, c, k) in [
            (1u64 << 6, 1u64 << 6, 1u64 << 6),
            (1 << 2, 1 << 9, 1 << 3),
            (1, 4, 1 << 8),
        ] {
            let nest = projtile_loopnest::builders::fully_connected(b, c, k);
            let lp_value = solve_tiling_lp(&nest, m).value;
            assert_eq!(
                lp_value,
                fully_connected_exponent(b, c, k, m),
                "({b},{c},{k})"
            );
        }
    }

    #[test]
    fn contraction_lower_bound_matches_general_machinery() {
        let m = 1u64 << 8;
        let bounds = [4u64, 8, 2, 16, 32];
        let nest = contraction_nest(2, 4, &bounds);
        let general = arbitrary_bound_exponent(&nest, m).words;
        let closed = contraction_lower_bound_words(2, 4, &bounds, m);
        assert!((general - closed).abs() / closed < 1e-9);
    }

    #[test]
    fn large_bound_contraction_recovers_classical_result() {
        // §6.2: for large bounds the lower bound is ∏ L_i / sqrt(M).
        let m = 1u64 << 8;
        let bounds = [1u64 << 5; 5];
        let lb = contraction_lower_bound_words(2, 4, &bounds, m);
        let expect = (1u128 << 25) as f64 / (m as f64).sqrt();
        assert!((lb - expect).abs() / expect < 1e-9);
        assert_eq!(contraction_exponent(2, 4, &bounds, m), ratio(3, 2));
    }

    #[test]
    #[should_panic(expected = "require 1 <= j < k-1 < d")]
    fn invalid_split_rejected() {
        let _ = group_betas(3, 4, &[2, 2, 2, 2], 64);
    }
}
