//! Piecewise-linear dependence of the optimal exponent on the loop bounds
//! (§7 of the paper).
//!
//! Because the optimal tile cardinality is `M^{f(β_1,…,β_d)}` where `f` is the
//! optimal value of the tiling LP (5.1) and the `β_i` only enter that LP
//! through its right-hand side, `f` is a concave piecewise-linear function of
//! the `β_i`. The paper points out that a multiparametric LP solver can
//! recover a closed form for `f`; here we compute exact one-dimensional
//! restrictions of it (vary one loop bound, hold the others fixed), which is
//! what the §6.1 discussion of matrix multiplication does by hand and what the
//! experiment harness plots.

use projtile_arith::{log, Rational};
use projtile_loopnest::LoopNest;
use projtile_lp::parametric::{parametric_rhs, parametric_rhs_cold, ValueFunction};
use projtile_lp::LpError;

use crate::tiling_lp::tiling_lp;

/// The exact piecewise-linear optimal exponent as a function of `β_axis`,
/// with every other loop bound held at its value in `nest`.
///
/// The returned [`ValueFunction`] maps `β_axis ∈ [log_M lo, log_M hi]` to the
/// optimal tile exponent; its breakpoints are the regime changes the paper
/// discusses (e.g. `β_3 = 1/2` for matrix multiplication).
/// Every θ probe along the sweep re-enters the dual simplex from the previous
/// probe's basis ([`projtile_lp::SolverContext`]); the resulting value
/// function is exactly the one from independent cold probes, which
/// [`exponent_vs_beta_cold`] computes and the tests compare against.
pub fn exponent_vs_beta(
    nest: &LoopNest,
    cache_size: u64,
    axis: usize,
    lo_bound: u64,
    hi_bound: u64,
) -> Result<ValueFunction, LpError> {
    let (lp, direction, lo, hi) = beta_sweep_query(nest, cache_size, axis, lo_bound, hi_bound);
    parametric_rhs(&lp, &direction, lo, hi)
}

/// [`exponent_vs_beta`] with one independent cold LP solve per probe — the
/// differential oracle for the warm-started sweep.
pub fn exponent_vs_beta_cold(
    nest: &LoopNest,
    cache_size: u64,
    axis: usize,
    lo_bound: u64,
    hi_bound: u64,
) -> Result<ValueFunction, LpError> {
    let (lp, direction, lo, hi) = beta_sweep_query(nest, cache_size, axis, lo_bound, hi_bound);
    parametric_rhs_cold(&lp, &direction, lo, hi)
}

type SweepQuery = (
    projtile_lp::LinearProgram,
    Vec<Rational>,
    Rational,
    Rational,
);

fn beta_sweep_query(
    nest: &LoopNest,
    cache_size: u64,
    axis: usize,
    lo_bound: u64,
    hi_bound: u64,
) -> SweepQuery {
    assert!(axis < nest.num_loops(), "axis out of range");
    assert!(lo_bound >= 1 && hi_bound >= lo_bound, "invalid bound range");
    assert!(cache_size >= 2, "cache size must be at least 2 words");

    // Build the tiling LP with the axis bound set so its β row starts at 0,
    // then sweep that row's right-hand side by θ = β_axis.
    let mut base_bounds = nest.bounds();
    base_bounds[axis] = 1; // β_axis = 0 in the base program
    let base_nest = nest.with_bounds(&base_bounds);
    let lp = tiling_lp(&base_nest, cache_size);

    // The β rows follow the array rows; the axis row is at offset n + axis.
    let mut direction = vec![Rational::zero(); lp.num_constraints()];
    direction[nest.num_arrays() + axis] = Rational::one();

    let lo = log::beta(lo_bound as u128, cache_size as u128);
    let hi = log::beta(hi_bound as u128, cache_size as u128);
    (lp, direction, lo, hi)
}

/// Convenience wrapper: the optimal exponent at a specific bound value along
/// `axis`, read off the piecewise-linear function (equivalently, a fresh LP
/// solve on the modified nest — the test suite checks both paths agree).
pub fn exponent_at_bound(nest: &LoopNest, cache_size: u64, axis: usize, bound: u64) -> Rational {
    let mut bounds = nest.bounds();
    bounds[axis] = bound;
    crate::tiling_lp::solve_tiling_lp(&nest.with_bounds(&bounds), cache_size).value
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_arith::{int, ratio};
    use projtile_loopnest::builders;

    #[test]
    fn matmul_exponent_vs_l3_has_breakpoint_at_sqrt_m() {
        // §6.1: the exponent is 1 + β3 for β3 <= 1/2 and 3/2 afterwards, so
        // the value function over β3 ∈ [0, 1] has exactly one breakpoint, at 1/2.
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 8, 1 << 8, 1 << 8);
        let k_axis = nest.index_position("k").unwrap();
        let vf = exponent_vs_beta(&nest, m, k_axis, 1, m).unwrap();
        assert_eq!(vf.num_pieces(), 2);
        assert_eq!(vf.slopes(), vec![int(1), int(0)]);
        assert!(vf.breakpoints.iter().any(|(t, _)| *t == ratio(1, 2)));
        assert_eq!(vf.value_at(&Rational::zero()), int(1));
        assert_eq!(vf.value_at(&ratio(1, 4)), ratio(5, 4));
        assert_eq!(vf.value_at(&ratio(1, 2)), ratio(3, 2));
        assert_eq!(vf.value_at(&Rational::one()), ratio(3, 2));
    }

    #[test]
    fn warm_sweep_matches_cold_oracle_exactly() {
        // Warm-started and cold parametric sweeps must produce identical
        // value functions (breakpoints included) on every kernel family.
        let cases: Vec<(projtile_loopnest::LoopNest, usize, u64)> = vec![
            (builders::matmul(1 << 8, 1 << 8, 1 << 8), 2, 1 << 10),
            (builders::nbody(1 << 4, 1 << 12), 0, 1 << 8),
            (
                builders::pointwise_conv(2, 1, 1 << 6, 1 << 5, 1 << 5),
                1,
                256,
            ),
            (builders::random_projective(7, 5, 4, (1, 128)), 0, 64),
        ];
        for (nest, axis, m) in cases {
            let warm = exponent_vs_beta(&nest, m, axis, 1, m).unwrap();
            let cold = exponent_vs_beta_cold(&nest, m, axis, 1, m).unwrap();
            assert_eq!(warm, cold, "{nest}");
        }
    }

    #[test]
    fn value_function_agrees_with_direct_lp_solves() {
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 8, 1 << 8, 1 << 8);
        let k_axis = nest.index_position("k").unwrap();
        let vf = exponent_vs_beta(&nest, m, k_axis, 1, m).unwrap();
        for log_l3 in [0u32, 1, 3, 5, 7, 10] {
            let l3 = 1u64 << log_l3;
            let beta3 = ratio(log_l3 as i64, 10);
            let from_vf = vf.value_at(&beta3);
            let from_lp = exponent_at_bound(&nest, m, k_axis, l3);
            assert_eq!(from_vf, from_lp, "L3 = {l3}");
        }
    }

    #[test]
    fn nbody_value_function_is_linear_then_flat() {
        // n-body over β1 ∈ [0, β_max]: exponent = min(1, β1) + min(1, β2), so
        // slope 1 until β1 = 1, then flat.
        let m = 1u64 << 8;
        let nest = builders::nbody(1 << 4, 1 << 12);
        let vf = exponent_vs_beta(&nest, m, 0, 1, 1 << 12).unwrap();
        assert_eq!(vf.num_pieces(), 2);
        assert_eq!(vf.slopes(), vec![int(1), int(0)]);
        // β2 = 12/8 > 1, so min(1, β2) = 1 and the function starts at 1.
        assert_eq!(vf.value_at(&Rational::zero()), int(1));
        assert_eq!(vf.value_at(&Rational::one()), int(2));
    }

    #[test]
    fn everything_small_regime_has_unit_slope_everywhere() {
        // If the two untouched bounds are tiny, growing the third within the
        // "everything fits" regime adds β3 one-for-one (single piece).
        let m = 1u64 << 10;
        let nest = builders::matmul(2, 4, 2);
        let k_axis = 2;
        let vf = exponent_vs_beta(&nest, m, k_axis, 1, 1 << 7).unwrap();
        assert_eq!(vf.num_pieces(), 1);
        assert_eq!(vf.slopes(), vec![int(1)]);
    }

    #[test]
    fn pointwise_conv_channel_sweep_has_breakpoint() {
        // Sweeping the input-channel count of a pointwise convolution with
        // large spatial dims: exponent = min(3/2, 1 + β_c), breakpoint at 1/2.
        let m = 1u64 << 8;
        let nest = builders::pointwise_conv(2, 1, 1 << 6, 1 << 5, 1 << 5);
        let c_axis = nest.index_position("c").unwrap();
        let vf = exponent_vs_beta(&nest, m, c_axis, 1, m).unwrap();
        assert!(vf.breakpoints.iter().any(|(t, _)| *t == ratio(1, 2)));
        assert_eq!(vf.value_at(&Rational::one()), ratio(3, 2));
    }

    #[test]
    fn invalid_queries_rejected() {
        let nest = builders::nbody(8, 8);
        assert!(std::panic::catch_unwind(|| exponent_vs_beta(&nest, 64, 7, 1, 8)).is_err());
        assert!(std::panic::catch_unwind(|| exponent_vs_beta(&nest, 64, 0, 8, 4)).is_err());
    }
}
