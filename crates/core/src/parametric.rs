//! Piecewise-linear dependence of the optimal exponent on the loop bounds
//! (§7 of the paper).
//!
//! Because the optimal tile cardinality is `M^{f(β_1,…,β_d)}` where `f` is the
//! optimal value of the tiling LP (5.1) and the `β_i` only enter that LP
//! through its right-hand side, `f` is a concave piecewise-linear function of
//! the `β_i`. The paper points out that a multiparametric LP solver can
//! recover a closed form for `f`. This module computes both:
//!
//! * exact one-dimensional restrictions (vary one loop bound, hold the others
//!   fixed) — [`exponent_vs_beta`] — which is what the §6.1 discussion of
//!   matrix multiplication does by hand and what the experiment harness
//!   plots; and
//! * the full multi-axis value function over a box of log-bounds —
//!   [`exponent_surface`] — decomposed into critical regions with symbolic
//!   affine pieces (e.g. `1 + β3` below the matmul crossover `β3 = 1/2` and
//!   `3/2` above it), via the multiparametric solver in
//!   [`projtile_lp::mplp`]. Every 1-D slice of the surface is
//!   bitwise-identical to the corresponding [`exponent_vs_beta`] sweep.

use projtile_arith::{log, Rational};
use projtile_loopnest::LoopNest;
use projtile_lp::mplp::{self, AffinePiece, ParamBox, ValueSurface};
use projtile_lp::parametric::{parametric_rhs, parametric_rhs_cold, ValueFunction};
use projtile_lp::LpError;
use serde::{Deserialize, Serialize};

use crate::tiling_lp::tiling_lp;

/// The exact piecewise-linear optimal exponent as a function of `β_axis`,
/// with every other loop bound held at its value in `nest`.
///
/// The returned [`ValueFunction`] maps `β_axis ∈ [log_M lo, log_M hi]` to the
/// optimal tile exponent; its breakpoints are the regime changes the paper
/// discusses (e.g. `β_3 = 1/2` for matrix multiplication).
/// Every θ probe along the sweep re-enters the dual simplex from the previous
/// probe's basis ([`projtile_lp::SolverContext`]); the resulting value
/// function is exactly the one from independent cold probes, which
/// [`exponent_vs_beta_cold`] computes and the tests compare against.
///
/// ```
/// use projtile_arith::ratio;
/// use projtile_core::parametric::exponent_vs_beta;
/// use projtile_loopnest::builders;
///
/// // §6.1: sweeping the inner matmul bound L3 over [1, M] with M = 1024,
/// // the exponent is 1 + β3 up to the crossover β3 = 1/2, then 3/2.
/// let nest = builders::matmul(512, 512, 512);
/// let vf = exponent_vs_beta(&nest, 1 << 10, 2, 1, 1 << 10).unwrap();
/// assert_eq!(vf.value_at(&ratio(1, 4)), ratio(5, 4));
/// assert!(vf.breakpoints.iter().any(|(beta3, _)| *beta3 == ratio(1, 2)));
/// ```
pub fn exponent_vs_beta(
    nest: &LoopNest,
    cache_size: u64,
    axis: usize,
    lo_bound: u64,
    hi_bound: u64,
) -> Result<ValueFunction, LpError> {
    let (lp, direction, lo, hi) = beta_sweep_query(nest, cache_size, axis, lo_bound, hi_bound);
    parametric_rhs(&lp, &direction, lo, hi)
}

/// [`exponent_vs_beta`] with one independent cold LP solve per probe — the
/// differential oracle for the warm-started sweep.
pub fn exponent_vs_beta_cold(
    nest: &LoopNest,
    cache_size: u64,
    axis: usize,
    lo_bound: u64,
    hi_bound: u64,
) -> Result<ValueFunction, LpError> {
    let (lp, direction, lo, hi) = beta_sweep_query(nest, cache_size, axis, lo_bound, hi_bound);
    parametric_rhs_cold(&lp, &direction, lo, hi)
}

/// [`exponent_vs_beta`] probing through a caller-supplied warm
/// [`projtile_lp::SolverContext`] (e.g. one checked out of a
/// [`projtile_lp::ContextPool`]), so a long-lived session carries its
/// retained simplex basis across sweeps. The result is exactly that of
/// [`exponent_vs_beta`] — the value function is a property of the nest, not
/// of the solver path.
pub fn exponent_vs_beta_with(
    nest: &LoopNest,
    cache_size: u64,
    axis: usize,
    lo_bound: u64,
    hi_bound: u64,
    ctx: &mut projtile_lp::SolverContext,
) -> Result<ValueFunction, LpError> {
    let (lp, direction, lo, hi) = beta_sweep_query(nest, cache_size, axis, lo_bound, hi_bound);
    projtile_lp::parametric::parametric_rhs_with(&lp, &direction, lo, hi, ctx)
}

type SweepQuery = (
    projtile_lp::LinearProgram,
    Vec<Rational>,
    Rational,
    Rational,
);

// lint: allow(L008) asserts pin engine-validated axis and bound preconditions
fn beta_sweep_query(
    nest: &LoopNest,
    cache_size: u64,
    axis: usize,
    lo_bound: u64,
    hi_bound: u64,
) -> SweepQuery {
    assert!(axis < nest.num_loops(), "axis out of range");
    assert!(lo_bound >= 1 && hi_bound >= lo_bound, "invalid bound range");
    assert!(cache_size >= 2, "cache size must be at least 2 words");

    // Build the tiling LP with the axis bound set so its β row starts at 0,
    // then sweep that row's right-hand side by θ = β_axis.
    let mut base_bounds = nest.bounds();
    base_bounds[axis] = 1; // β_axis = 0 in the base program
    let base_nest = nest.with_bounds(&base_bounds);
    let lp = tiling_lp(&base_nest, cache_size);

    // The β rows follow the array rows; the axis row is at offset n + axis.
    let mut direction = vec![Rational::zero(); lp.num_constraints()];
    direction[nest.num_arrays() + axis] = Rational::one();

    let lo = log::beta(lo_bound as u128, cache_size as u128);
    let hi = log::beta(hi_bound as u128, cache_size as u128);
    (lp, direction, lo, hi)
}

/// The full §7 value function: the optimal tile exponent as an exact concave
/// piecewise-linear function of several log loop bounds simultaneously,
/// decomposed into critical regions. Produced by [`exponent_surface`];
/// serde-serializable so an engine session can persist memoized surfaces in
/// its snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExponentSurface {
    /// The swept loop-index positions, in the order the surface's parameter
    /// axes are numbered.
    axes: Vec<usize>,
    /// `β{name}` labels for the swept axes, used by the closed-form renderer.
    axis_names: Vec<String>,
    /// The β values of the *unswept* loop bounds baked into the surface
    /// (taken from the nest the surface was built from), plus, at swept
    /// positions, the β of the nest's own bound — a convenient in-box slice
    /// point when the nest's bounds lie inside the analyzed box.
    nominal: Vec<Rational>,
    surface: ValueSurface,
}

impl ExponentSurface {
    /// The swept loop-index positions.
    pub fn axes(&self) -> &[usize] {
        &self.axes
    }

    /// The underlying critical-region decomposition.
    pub fn surface(&self) -> &ValueSurface {
        &self.surface
    }

    /// Number of critical regions.
    pub fn num_regions(&self) -> usize {
        self.surface.num_regions()
    }

    /// The distinct affine pieces `f(β) = c·β + k` of the exponent, exact
    /// rationals throughout — the machine-checked form of the paper's §6
    /// closed-form case analyses.
    pub fn pieces(&self) -> Vec<&AffinePiece> {
        self.surface.pieces()
    }

    /// The pieces rendered as human-readable closed forms over `β{name}`
    /// labels, e.g. `["1 + βk", "3/2"]` for matrix multiplication swept along
    /// `k`.
    pub fn render_pieces(&self) -> Vec<String> {
        let names: Vec<&str> = self.axis_names.iter().map(String::as_str).collect();
        self.pieces().iter().map(|p| p.render(&names)).collect()
    }

    /// The exponent at the given β values of the swept axes (one per axis, in
    /// [`ExponentSurface::axes`] order).
    ///
    /// # Panics
    /// Panics if `betas` lies outside the analyzed box.
    pub fn value_at(&self, betas: &[Rational]) -> Rational {
        self.surface.value_at(betas)
    }

    /// The exact 1-D restriction along swept axis number `axis_pos` (an index
    /// into [`ExponentSurface::axes`]), holding the other swept axes at `at`:
    /// bitwise-identical to the [`exponent_vs_beta`] sweep of the same line.
    pub fn slice(&self, axis_pos: usize, at: &[Rational]) -> ValueFunction {
        self.surface.slice_axis(axis_pos, at)
    }

    /// [`ExponentSurface::slice`] with the other swept axes held at the β
    /// values of the nest the surface was built from. Panics if those lie
    /// outside the analyzed box.
    pub fn slice_at_nominal(&self, axis_pos: usize) -> ValueFunction {
        self.surface.slice_axis(axis_pos, &self.nominal)
    }

    /// Checks the cross-field shape invariants a deserialized surface may
    /// violate (the derives bypass [`exponent_surface`], which guarantees
    /// them): one axis name and one nominal coordinate per swept axis, and
    /// every coordinate vector of the underlying [`ValueSurface`] matching
    /// the axis count. Snapshot restore runs this on untrusted documents
    /// before any assert-bearing consumer (`render_pieces`, `value_at`,
    /// `with_axis_order`).
    pub(crate) fn validate_shape(&self) -> Result<(), String> {
        let p = self.axes.len();
        if self.axis_names.len() != p {
            return Err("surface axis names do not match its axes".into());
        }
        if self.nominal.len() != p {
            return Err("surface nominal point does not match its axes".into());
        }
        self.surface.check_dims(p)
    }

    /// The same surface presented with its swept axes reordered: new swept
    /// position `k` is old swept position `order[k]`. This is an exact
    /// coordinate permutation of one decomposition — it is what
    /// [`exponent_surface`] itself returns for a permuted-axes request, and
    /// what the engine's surface memo answers permuted requests with.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..self.axes().len()`.
    pub fn with_axis_order(&self, order: &[usize]) -> ExponentSurface {
        ExponentSurface {
            axes: order.iter().map(|&i| self.axes[i]).collect(),
            axis_names: order.iter().map(|&i| self.axis_names[i].clone()).collect(),
            nominal: order.iter().map(|&i| self.nominal[i].clone()).collect(),
            surface: self.surface.permute_parameters(order),
        }
    }
}

/// The full multiparametric §7 analysis: the optimal tile exponent as an
/// exact function of the log-bounds `β_axis = log_M L_axis` of every loop in
/// `axes` *simultaneously*, over the box `β_axis ∈ [log_M lo, log_M hi]` per
/// axis, with every unswept loop bound held at its value in `nest`.
///
/// The surface subsumes [`exponent_vs_beta`]: any 1-D slice equals the
/// corresponding single-axis sweep bitwise (pinned by the differential
/// tests). Probes hop between critical regions through one warm
/// [`projtile_lp::SolverContext`]; [`exponent_surface_cold`] is the
/// independent-cold-solves oracle.
///
/// ```
/// use projtile_arith::{int, ratio};
/// use projtile_core::parametric::exponent_surface;
/// use projtile_loopnest::builders;
///
/// // The matmul exponent over (β1, β2, β3) ∈ [0, 1]³ with M = 1024 is
/// // min(β1 + β2 + β3, 1 + β1, 1 + β2, 1 + β3, 3/2)   (§6.1).
/// let m = 1u64 << 10;
/// let nest = builders::matmul(512, 512, 512);
/// let surface = exponent_surface(&nest, m, &[0, 1, 2], &[1, 1, 1], &[m, m, m]).unwrap();
/// assert_eq!(surface.value_at(&[int(1), int(1), ratio(1, 4)]), ratio(5, 4));
/// assert_eq!(surface.value_at(&[int(1), int(1), int(1)]), ratio(3, 2));
/// ```
pub fn exponent_surface(
    nest: &LoopNest,
    cache_size: u64,
    axes: &[usize],
    lo_bounds: &[u64],
    hi_bounds: &[u64],
) -> Result<ExponentSurface, LpError> {
    exponent_surface_impl(nest, cache_size, axes, lo_bounds, hi_bounds, true)
}

/// [`exponent_surface`] with every probe answered by an independent cold
/// solve — the differential oracle for the warm-started surface (both
/// evaluate identically everywhere on the box; the test suite pins values and
/// slices).
pub fn exponent_surface_cold(
    nest: &LoopNest,
    cache_size: u64,
    axes: &[usize],
    lo_bounds: &[u64],
    hi_bounds: &[u64],
) -> Result<ExponentSurface, LpError> {
    exponent_surface_impl(nest, cache_size, axes, lo_bounds, hi_bounds, false)
}

/// Canonicalizes a surface request's axis order: returns the axes sorted
/// ascending with their bound ranges permuted alongside, plus the remap
/// presenting the sorted-order surface in the caller's order (`order[k]` =
/// position of the caller's `k`-th axis in the sorted request; `None` when
/// the request is already sorted). Shared by [`exponent_surface`] and the
/// engine's surface memo so the two can never disagree on what "canonical
/// order" means.
#[allow(clippy::type_complexity)]
pub(crate) fn sort_surface_request(
    axes: &[usize],
    lo_bounds: &[u64],
    hi_bounds: &[u64],
) -> (Vec<usize>, Vec<u64>, Vec<u64>, Option<Vec<usize>>) {
    let mut by_axis: Vec<usize> = (0..axes.len()).collect();
    by_axis.sort_by_key(|&i| axes[i]);
    let sorted_axes: Vec<usize> = by_axis.iter().map(|&i| axes[i]).collect();
    let sorted_lo: Vec<u64> = by_axis.iter().map(|&i| lo_bounds[i]).collect();
    let sorted_hi: Vec<u64> = by_axis.iter().map(|&i| hi_bounds[i]).collect();
    let order = if by_axis.iter().enumerate().all(|(k, &i)| k == i) {
        None
    } else {
        let mut order = vec![0usize; axes.len()];
        for (p, &caller) in by_axis.iter().enumerate() {
            order[caller] = p;
        }
        Some(order)
    };
    (sorted_axes, sorted_lo, sorted_hi, order)
}

// lint: allow(L008) asserts pin engine-validated dimensions, covered by the warm/cold differential oracle
fn exponent_surface_impl(
    nest: &LoopNest,
    cache_size: u64,
    axes: &[usize],
    lo_bounds: &[u64],
    hi_bounds: &[u64],
    warm: bool,
) -> Result<ExponentSurface, LpError> {
    assert!(cache_size >= 2, "cache size must be at least 2 words");
    assert!(!axes.is_empty(), "at least one swept axis required");
    assert_eq!(axes.len(), lo_bounds.len(), "one lower bound per axis");
    assert_eq!(axes.len(), hi_bounds.len(), "one upper bound per axis");
    for (i, &a) in axes.iter().enumerate() {
        assert!(a < nest.num_loops(), "axis out of range");
        assert!(
            !axes[..i].contains(&a),
            "axis {a} swept twice in the same surface"
        );
        assert!(
            lo_bounds[i] >= 1 && hi_bounds[i] >= lo_bounds[i],
            "invalid bound range on axis {a}"
        );
    }

    // Canonical axis order: the multiparametric traversal always runs with
    // the swept axes sorted ascending; a request in any other order is
    // answered by the exact coordinate permutation of the sorted-order
    // surface ([`ExponentSurface::with_axis_order`]). Axis order therefore
    // never changes *which* decomposition is computed — which is what lets
    // the engine's surface memo share one cached surface across permuted
    // requests while staying bitwise-identical to this free function.
    let (sorted_axes, sorted_lo, sorted_hi, order) =
        sort_surface_request(axes, lo_bounds, hi_bounds);
    if let Some(order) = order {
        let sorted =
            exponent_surface_impl(nest, cache_size, &sorted_axes, &sorted_lo, &sorted_hi, warm)?;
        return Ok(sorted.with_axis_order(&order));
    }

    // Base program: every swept axis' β row starts at 0 (bound 1); each
    // parameter θ_k shifts the rhs of its axis row only.
    let mut base_bounds = nest.bounds();
    for &a in axes {
        base_bounds[a] = 1;
    }
    let base_nest = nest.with_bounds(&base_bounds);
    let lp = tiling_lp(&base_nest, cache_size);
    let directions: Vec<Vec<Rational>> = axes
        .iter()
        .map(|&a| {
            let mut d = vec![Rational::zero(); lp.num_constraints()];
            d[nest.num_arrays() + a] = Rational::one();
            d
        })
        .collect();
    let lo: Vec<Rational> = lo_bounds
        .iter()
        .map(|&b| log::beta(b as u128, cache_size as u128))
        .collect();
    let hi: Vec<Rational> = hi_bounds
        .iter()
        .map(|&b| log::beta(b as u128, cache_size as u128))
        .collect();
    let domain = ParamBox::new(lo, hi)?;
    let surface = if warm {
        mplp::parametric_rhs_box(&lp, &directions, &domain)?
    } else {
        mplp::parametric_rhs_box_cold(&lp, &directions, &domain)?
    };
    let bounds = nest.bounds();
    Ok(ExponentSurface {
        axis_names: axes
            .iter()
            .map(|&a| format!("β{}", nest.indices()[a].name))
            .collect(),
        nominal: axes
            .iter()
            .map(|&a| log::beta(bounds[a] as u128, cache_size as u128))
            .collect(),
        axes: axes.to_vec(),
        surface,
    })
}

/// Convenience wrapper: the optimal exponent at a specific bound value along
/// `axis`. This is the **cold, one-shot** form — a fresh LP solve on the
/// modified nest per call. Repeated-query workloads (a JIT probing many
/// candidate bounds of the same nest) should go through
/// [`crate::engine::Engine::exponent_at_bound`], which answers from a
/// memoized slice of the §7 value function; this function is retained as its
/// differential oracle (the engine's answers are pinned bitwise-equal to it).
pub fn exponent_at_bound(nest: &LoopNest, cache_size: u64, axis: usize, bound: u64) -> Rational {
    exponent_at_bound_cold(nest, cache_size, axis, bound)
}

/// The pre-engine body of [`exponent_at_bound`]: one independent tiling-LP
/// solve on the rebound nest. Kept as the cold differential oracle for the
/// engine's memoized surface/slice path.
pub fn exponent_at_bound_cold(
    nest: &LoopNest,
    cache_size: u64,
    axis: usize,
    bound: u64,
) -> Rational {
    let mut bounds = nest.bounds();
    bounds[axis] = bound;
    crate::tiling_lp::solve_tiling_lp(&nest.with_bounds(&bounds), cache_size).value
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_arith::{int, ratio};
    use projtile_loopnest::builders;

    #[test]
    fn matmul_exponent_vs_l3_has_breakpoint_at_sqrt_m() {
        // §6.1: the exponent is 1 + β3 for β3 <= 1/2 and 3/2 afterwards, so
        // the value function over β3 ∈ [0, 1] has exactly one breakpoint, at 1/2.
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 8, 1 << 8, 1 << 8);
        let k_axis = nest.index_position("k").unwrap();
        let vf = exponent_vs_beta(&nest, m, k_axis, 1, m).unwrap();
        assert_eq!(vf.num_pieces(), 2);
        assert_eq!(vf.slopes(), vec![int(1), int(0)]);
        assert!(vf.breakpoints.iter().any(|(t, _)| *t == ratio(1, 2)));
        assert_eq!(vf.value_at(&Rational::zero()), int(1));
        assert_eq!(vf.value_at(&ratio(1, 4)), ratio(5, 4));
        assert_eq!(vf.value_at(&ratio(1, 2)), ratio(3, 2));
        assert_eq!(vf.value_at(&Rational::one()), ratio(3, 2));
    }

    #[test]
    fn warm_sweep_matches_cold_oracle_exactly() {
        // Warm-started and cold parametric sweeps must produce identical
        // value functions (breakpoints included) on every kernel family.
        let cases: Vec<(projtile_loopnest::LoopNest, usize, u64)> = vec![
            (builders::matmul(1 << 8, 1 << 8, 1 << 8), 2, 1 << 10),
            (builders::nbody(1 << 4, 1 << 12), 0, 1 << 8),
            (
                builders::pointwise_conv(2, 1, 1 << 6, 1 << 5, 1 << 5),
                1,
                256,
            ),
            (builders::random_projective(7, 5, 4, (1, 128)), 0, 64),
        ];
        for (nest, axis, m) in cases {
            let warm = exponent_vs_beta(&nest, m, axis, 1, m).unwrap();
            let cold = exponent_vs_beta_cold(&nest, m, axis, 1, m).unwrap();
            assert_eq!(warm, cold, "{nest}");
        }
    }

    #[test]
    fn value_function_agrees_with_direct_lp_solves() {
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 8, 1 << 8, 1 << 8);
        let k_axis = nest.index_position("k").unwrap();
        let vf = exponent_vs_beta(&nest, m, k_axis, 1, m).unwrap();
        for log_l3 in [0u32, 1, 3, 5, 7, 10] {
            let l3 = 1u64 << log_l3;
            let beta3 = ratio(log_l3 as i64, 10);
            let from_vf = vf.value_at(&beta3);
            let from_lp = exponent_at_bound(&nest, m, k_axis, l3);
            assert_eq!(from_vf, from_lp, "L3 = {l3}");
        }
    }

    #[test]
    fn nbody_value_function_is_linear_then_flat() {
        // n-body over β1 ∈ [0, β_max]: exponent = min(1, β1) + min(1, β2), so
        // slope 1 until β1 = 1, then flat.
        let m = 1u64 << 8;
        let nest = builders::nbody(1 << 4, 1 << 12);
        let vf = exponent_vs_beta(&nest, m, 0, 1, 1 << 12).unwrap();
        assert_eq!(vf.num_pieces(), 2);
        assert_eq!(vf.slopes(), vec![int(1), int(0)]);
        // β2 = 12/8 > 1, so min(1, β2) = 1 and the function starts at 1.
        assert_eq!(vf.value_at(&Rational::zero()), int(1));
        assert_eq!(vf.value_at(&Rational::one()), int(2));
    }

    #[test]
    fn everything_small_regime_has_unit_slope_everywhere() {
        // If the two untouched bounds are tiny, growing the third within the
        // "everything fits" regime adds β3 one-for-one (single piece).
        let m = 1u64 << 10;
        let nest = builders::matmul(2, 4, 2);
        let k_axis = 2;
        let vf = exponent_vs_beta(&nest, m, k_axis, 1, 1 << 7).unwrap();
        assert_eq!(vf.num_pieces(), 1);
        assert_eq!(vf.slopes(), vec![int(1)]);
    }

    #[test]
    fn pointwise_conv_channel_sweep_has_breakpoint() {
        // Sweeping the input-channel count of a pointwise convolution with
        // large spatial dims: exponent = min(3/2, 1 + β_c), breakpoint at 1/2.
        let m = 1u64 << 8;
        let nest = builders::pointwise_conv(2, 1, 1 << 6, 1 << 5, 1 << 5);
        let c_axis = nest.index_position("c").unwrap();
        let vf = exponent_vs_beta(&nest, m, c_axis, 1, m).unwrap();
        assert!(vf.breakpoints.iter().any(|(t, _)| *t == ratio(1, 2)));
        assert_eq!(vf.value_at(&Rational::one()), ratio(3, 2));
    }

    #[test]
    fn invalid_queries_rejected() {
        let nest = builders::nbody(8, 8);
        assert!(std::panic::catch_unwind(|| exponent_vs_beta(&nest, 64, 7, 1, 8)).is_err());
        assert!(std::panic::catch_unwind(|| exponent_vs_beta(&nest, 64, 0, 8, 4)).is_err());
        let nest = builders::nbody(8, 8);
        assert!(std::panic::catch_unwind(|| exponent_surface(
            &nest,
            64,
            &[0, 0],
            &[1, 1],
            &[8, 8]
        ))
        .is_err());
        assert!(
            std::panic::catch_unwind(|| exponent_surface(&nest, 64, &[0], &[8], &[4])).is_err()
        );
    }

    #[test]
    fn permuted_axes_yield_the_exact_permuted_surface() {
        // A surface requested with its axes in a different order is the
        // exact coordinate permutation of the sorted-order surface:
        // values, slices, and the region decomposition itself all agree.
        let m = 1u64 << 8;
        let nest = builders::matmul(1 << 6, 1 << 6, 1 << 6);
        let sorted = exponent_surface(&nest, m, &[0, 2], &[1, 2], &[m, m / 2]).unwrap();
        let swapped = exponent_surface(&nest, m, &[2, 0], &[2, 1], &[m / 2, m]).unwrap();
        assert_eq!(swapped.axes(), &[2, 0]);
        assert_eq!(&swapped, &sorted.with_axis_order(&[1, 0]));
        assert_eq!(&sorted, &swapped.with_axis_order(&[1, 0]));
        for i in 0..=4i64 {
            for k in 1..=4i64 {
                let beta = [ratio(i, 4), ratio(k, 8)];
                let flipped = [beta[1].clone(), beta[0].clone()];
                assert_eq!(sorted.value_at(&beta), swapped.value_at(&flipped));
            }
        }
        // Slices along the same physical axis agree bitwise.
        let at_sorted = vec![Rational::one(), ratio(1, 4)];
        let at_swapped = vec![ratio(1, 4), Rational::one()];
        assert_eq!(sorted.slice(1, &at_sorted), swapped.slice(0, &at_swapped));
        // The piece sets are permutations of each other.
        let sorted_pieces: Vec<_> = sorted.pieces().into_iter().cloned().collect();
        let swapped_back: Vec<_> = swapped
            .with_axis_order(&[1, 0])
            .pieces()
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(sorted_pieces, swapped_back);
        // And the cold oracle canonicalizes identically.
        let cold = exponent_surface_cold(&nest, m, &[2, 0], &[2, 1], &[m / 2, m]).unwrap();
        assert_eq!(cold.axes(), &[2, 0]);
        assert_eq!(cold.num_regions(), swapped.num_regions());
    }

    #[test]
    fn matmul_surface_regime_split_at_beta3_one_half() {
        // The §6.1 regime split, recovered by the multiparametric analysis:
        // along β3 (with β1 = β2 = 1) the exponent is 1 + β3 (gradient 1)
        // below the crossover β3 = 1/2 and 3/2 (gradient 0) above it.
        let m = 1u64 << 10;
        let nest = builders::matmul(1 << 10, 1 << 10, 1 << 10);
        let k_axis = nest.index_position("k").unwrap();
        let surf = exponent_surface(&nest, m, &[k_axis], &[1], &[m]).unwrap();
        let slice = surf.slice_at_nominal(0);
        assert_eq!(slice.num_pieces(), 2);
        assert_eq!(slice.slopes(), vec![int(1), int(0)]);
        assert!(slice.breakpoints.iter().any(|(t, _)| *t == ratio(1, 2)));
        // The two regimes appear as affine pieces with the paper's gradients.
        let pieces = surf.pieces();
        assert!(pieces
            .iter()
            .any(|p| p.gradient == vec![int(1)] && p.constant == int(1)));
        assert!(pieces
            .iter()
            .any(|p| p.gradient == vec![int(0)] && p.constant == ratio(3, 2)));
        let rendered = surf.render_pieces();
        assert!(rendered.iter().any(|s| s == "1 + βk"), "{rendered:?}");
        assert!(rendered.iter().any(|s| s == "3/2"), "{rendered:?}");
    }

    #[test]
    fn single_axis_surface_subsumes_value_function() {
        // The 1-D ValueFunction is a slice of the surface, bitwise.
        let cases: Vec<(projtile_loopnest::LoopNest, usize, u64)> = vec![
            (builders::matmul(1 << 8, 1 << 8, 1 << 8), 2, 1 << 10),
            (builders::nbody(1 << 4, 1 << 12), 0, 1 << 8),
            (builders::random_projective(3, 5, 4, (1, 128)), 2, 64),
        ];
        for (nest, axis, m) in cases {
            let surf = exponent_surface(&nest, m, &[axis], &[1], &[m]).unwrap();
            let vf = exponent_vs_beta(&nest, m, axis, 1, m).unwrap();
            let cold = exponent_vs_beta_cold(&nest, m, axis, 1, m).unwrap();
            assert_eq!(surf.slice_at_nominal(0), vf, "{nest}");
            assert_eq!(surf.slice_at_nominal(0), cold, "{nest}");
        }
    }

    #[test]
    fn two_axis_surface_slices_match_one_dimensional_sweeps() {
        // Fix one swept axis at a concrete bound, slice along the other, and
        // compare against the 1-D sweep of the correspondingly-rebound nest.
        let m = 1u64 << 8;
        let nest = builders::matmul(1 << 6, 1 << 6, 1 << 6);
        let surf = exponent_surface(&nest, m, &[0, 2], &[1, 1], &[m, m]).unwrap();
        for fixed_log in [0u32, 2, 4, 6, 8] {
            let fixed = 1u64 << fixed_log;
            let mut bounds = nest.bounds();
            bounds[0] = fixed;
            let rebound = nest.with_bounds(&bounds);
            let oracle = exponent_vs_beta_cold(&rebound, m, 2, 1, m).unwrap();
            let at = vec![ratio(fixed_log as i64, 8), Rational::zero()];
            assert_eq!(surf.slice(1, &at), oracle, "L1 = {fixed}");
        }
    }

    #[test]
    fn warm_and_cold_surfaces_evaluate_identically() {
        let m = 1u64 << 8;
        let nest = builders::matmul(1 << 6, 1 << 6, 1 << 6);
        let warm = exponent_surface(&nest, m, &[0, 2], &[1, 1], &[m, m]).unwrap();
        let cold = exponent_surface_cold(&nest, m, &[0, 2], &[1, 1], &[m, m]).unwrap();
        for i in 0..=4i64 {
            for k in 0..=4i64 {
                let beta = [ratio(i, 4), ratio(k, 4)];
                assert_eq!(warm.value_at(&beta), cold.value_at(&beta), "{beta:?}");
            }
        }
    }

    #[test]
    fn surface_value_agrees_with_direct_lp_solves() {
        // At β values realized by integer bounds, the surface must equal a
        // fresh tiling-LP solve of the rebound nest.
        let m = 1u64 << 8;
        let nest = builders::pointwise_conv(2, 1, 1 << 6, 1 << 5, 1 << 5);
        let c_axis = nest.index_position("c").unwrap();
        let k_axis = nest.index_position("k").unwrap();
        let axes = [c_axis, k_axis];
        let surf = exponent_surface(&nest, m, &axes, &[1, 1], &[m, m]).unwrap();
        for lc in [0u32, 2, 5, 8] {
            for lk in [0u32, 3, 6] {
                let mut bounds = nest.bounds();
                bounds[axes[0]] = 1 << lc;
                bounds[axes[1]] = 1 << lk;
                let expect = crate::tiling_lp::solve_tiling_lp(&nest.with_bounds(&bounds), m).value;
                let beta = [ratio(lc as i64, 8), ratio(lk as i64, 8)];
                assert_eq!(surf.value_at(&beta), expect, "({lc},{lk})");
            }
        }
    }
}
