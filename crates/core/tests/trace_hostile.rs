//! Hostile-trace regression tests: `TraceDocument::from_json` parses files
//! written by `projtile-lab drain`, so — exactly like the snapshot restore
//! path (`snapshot_hostile.rs`) — every validation site must reject
//! truncated, torn, corrupted or version-skewed input with a typed
//! [`TraceError`] instead of panicking or admitting a document that lies to
//! the replay. Plus a property: the flat-vector event serialization
//! round-trips losslessly for arbitrary well-formed documents.

use projtile_core::engine::{
    outcome, EngineConfig, TraceDocument, TraceError, TraceEvent, TRACE_VERSION,
};
use proptest::prelude::*;
use serde::{json, Value};

/// A genuine document exercising every field: several batches, all outcome
/// codes, empty and five-entry cost vectors.
fn genuine_document() -> TraceDocument {
    let ev = |ordinal: u64, kind: u8, oc: u8, costs: Vec<u64>| TraceEvent {
        ordinal,
        batch: ordinal / 2,
        sig: 0x1111 * (ordinal + 1),
        orient: 0x2222 * (ordinal + 1),
        kind,
        m: 1 << (8 + ordinal % 4),
        lhash: 0x3333 * (ordinal + 1),
        fam: 0x4444 * (ordinal + 1),
        outcome: oc,
        costs,
    };
    TraceDocument {
        version: TRACE_VERSION,
        num_shards: 4,
        shard_config: EngineConfig {
            results_capacity: 175,
            betas_capacity: 50,
            slices_capacity: 225,
            surfaces_capacity: 500,
        },
        queries: 9,
        hits: 2,
        misses: 5,
        dropped: 0,
        warm_entries: 0,
        events: vec![
            ev(0, 0, outcome::MISS, vec![144]),
            ev(1, 3, outcome::MISS, vec![500, 144, 160, 96, 200]),
            ev(2, 4, outcome::HIT, vec![]),
            ev(3, 4, outcome::DUPLICATE, vec![]),
            ev(4, 1, outcome::FAILED, vec![]),
            ev(5, 5, outcome::FAILED_NO_INTERN, vec![]),
        ],
    }
}

fn obj_mut<'a>(v: &'a mut Value, name: &str) -> &'a mut Value {
    match v {
        Value::Object(entries) => entries
            .iter_mut()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field `{name}`")),
        other => panic!("expected an object, found {}", other.kind()),
    }
}

fn arr_mut(v: &mut Value) -> &mut Vec<Value> {
    match v {
        Value::Array(items) => items,
        other => panic!("expected an array, found {}", other.kind()),
    }
}

/// Applies `mutate` to a genuine serialized document and asserts the parser
/// rejects the result with a `Malformed` error mentioning `expect_msg`.
fn assert_rejected(mutate: impl FnOnce(&mut Value), expect_msg: &str) {
    let mut value = genuine_document().to_value();
    mutate(&mut value);
    match TraceDocument::from_json(&json::to_string(&value)) {
        Err(TraceError::Malformed(msg)) => assert!(
            msg.contains(expect_msg),
            "expected error mentioning {expect_msg:?}, got {msg:?}"
        ),
        Err(other) => panic!("expected a Malformed error, got {other}"),
        Ok(_) => panic!("hostile trace parsed (wanted error about {expect_msg:?})"),
    }
}

#[test]
fn genuine_document_round_trips() {
    let doc = genuine_document();
    let parsed = TraceDocument::from_json(&doc.to_json()).expect("genuine trace parses");
    assert_eq!(parsed, doc);
}

/// A torn drain (disk full, killed mid-write) leaves a byte prefix of a
/// valid document; every proper prefix must fail with an error, never a
/// panic, never a silently shorter trace.
#[test]
fn truncated_trace_prefixes_never_parse() {
    let text = genuine_document().to_json();
    for end in 0..text.len() {
        if !text.is_char_boundary(end) {
            continue;
        }
        assert!(
            TraceDocument::from_json(&text[..end]).is_err(),
            "proper prefix of {end} bytes must not parse"
        );
    }
}

#[test]
fn binary_garbage_is_rejected_not_panicked() {
    // A deterministic splatter of non-JSON bytes and JSON-ish near misses.
    let mut state = 0xDEADBEEFu64;
    let mut garbage = String::new();
    for _ in 0..4096 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        garbage.push(char::from((state >> 33) as u8 % 94 + 32));
    }
    for text in [
        garbage.as_str(),
        "",
        "null",
        "[]",
        "{}",
        "{\"version\":1}",
        "{\"version\":\"1\"}",
    ] {
        assert!(TraceDocument::from_json(text).is_err());
    }
}

#[test]
fn version_skew_is_a_typed_error() {
    let mut value = genuine_document().to_value();
    *obj_mut(&mut value, "version") = Value::Int(99);
    match TraceDocument::from_json(&json::to_string(&value)) {
        Err(TraceError::Version(found)) => assert_eq!(found, 99),
        other => panic!("expected a version error, got {other:?}"),
    }
}

#[test]
fn rejects_torn_event_header() {
    assert_rejected(
        |v| {
            let flat = arr_mut(obj_mut(v, "events"));
            flat.truncate(3);
        },
        "torn event header",
    );
    // The second event (a tightness miss) carries 5 costs at offsets
    // 21..26: cutting inside them tears the cost vector specifically.
    assert_rejected(
        |v| {
            let flat = arr_mut(obj_mut(v, "events"));
            flat.truncate(23);
        },
        "torn cost vector",
    );
}

#[test]
fn rejects_negative_event_fields() {
    assert_rejected(
        |v| arr_mut(obj_mut(v, "events"))[2] = Value::Int(-1),
        "must be unsigned",
    );
}

#[test]
fn rejects_type_confused_event_fields() {
    assert_rejected(
        |v| arr_mut(obj_mut(v, "events"))[0] = Value::String("0".to_string()),
        "found a string",
    );
}

#[test]
fn rejects_out_of_range_kind_and_outcome() {
    // Field 4 of the first event is its kind; field 8 its outcome.
    assert_rejected(
        |v| arr_mut(obj_mut(v, "events"))[4] = Value::Int(6),
        "kind 6 out of range",
    );
    assert_rejected(
        |v| arr_mut(obj_mut(v, "events"))[8] = Value::Int(5),
        "outcome 5 out of range",
    );
}

#[test]
fn rejects_implausible_cost_count() {
    // Field 9 of the first event claims its cost count: an absurd claim
    // must be rejected outright, not chased through the flat vector.
    assert_rejected(
        |v| arr_mut(obj_mut(v, "events"))[9] = Value::Int(1 << 40),
        "implausible cost count",
    );
}

#[test]
fn rejects_zero_shards() {
    assert_rejected(
        |v| *obj_mut(&mut *v, "num_shards") = Value::Int(0),
        "shard count 0 out of range",
    );
}

#[test]
fn rejects_mistyped_top_level_fields() {
    assert_rejected(
        |v| *obj_mut(&mut *v, "hits") = Value::Bool(true),
        "must be an unsigned integer",
    );
    assert_rejected(
        |v| *obj_mut(&mut *v, "events") = Value::Int(0),
        "expected an array of event integers",
    );
    assert_rejected(
        |v| *obj_mut(obj_mut(&mut *v, "shard_config"), "results_capacity") = Value::Null,
        "must be an unsigned integer",
    );
}

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    (
        any::<u64>(),
        any::<u64>(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        0u8..6,
        0u8..5,
        proptest::collection::vec(any::<u64>(), 0..=8),
    )
        .prop_map(
            |(ordinal, batch, (sig, orient, m, lhash), kind, oc, costs)| TraceEvent {
                ordinal,
                batch,
                sig,
                orient,
                kind,
                m,
                lhash,
                fam: sig ^ m,
                outcome: oc,
                costs,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The flat-vector event packing is lossless for arbitrary well-formed
    /// documents — every header field, every cost vector length 0..=8,
    /// every outcome code.
    #[test]
    fn flat_format_round_trips(
        events in proptest::collection::vec(event_strategy(), 0..40),
        num_shards in 1u32..64,
        counters in proptest::collection::vec(any::<u64>(), 5),
        caps in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let doc = TraceDocument {
            version: TRACE_VERSION,
            num_shards,
            shard_config: EngineConfig {
                results_capacity: caps[0],
                betas_capacity: caps[1],
                slices_capacity: caps[2],
                surfaces_capacity: caps[3],
            },
            queries: counters[0],
            hits: counters[1],
            misses: counters[2],
            dropped: counters[3],
            warm_entries: counters[4],
            events,
        };
        let parsed = TraceDocument::from_json(&doc.to_json());
        prop_assert_eq!(parsed.as_ref(), Ok(&doc));
    }
}
