//! Differential tests pinning each warm/batched fast path against its
//! retained `_cold` oracle: the pair must agree **exactly** (same rationals,
//! same breakpoints, same per-subset results), because both report
//! path-independent canonical LP optima. These are the joint exercises the
//! workspace lint's L001 (oracle coverage) checks for.

use projtile_core::bounds::{enumerated_exponent, enumerated_exponent_cold};
use projtile_core::parametric::{exponent_vs_beta, exponent_vs_beta_cold};
use projtile_loopnest::builders;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn enumerated_exponent_matches_cold_oracle(
        seed in 0u64..1_000_000,
        d in 1usize..5,
        n in 1usize..5,
        log_m in 1u32..16,
    ) {
        // The warm-started Gray-code subset sweep must report exactly the
        // cold enumeration's result for every subset, not just the optimum.
        let nest = builders::random_projective(seed, d, n, (1, 256));
        let m = 1u64 << log_m;
        let warm = enumerated_exponent(&nest, m);
        let cold = enumerated_exponent_cold(&nest, m);
        prop_assert_eq!(warm, cold);
    }

    #[test]
    fn exponent_vs_beta_matches_cold_oracle(
        seed in 0u64..1_000_000,
        d in 1usize..5,
        n in 1usize..5,
        axis_pick in 0usize..4,
    ) {
        // The warm parametric sweep along one loop axis must produce the
        // identical value function (breakpoints and values) as one cold
        // solve per probe.
        let nest = builders::random_projective(seed, d, n, (1, 256));
        let axis = axis_pick % d;
        let m = 1u64 << 10;
        let warm = exponent_vs_beta(&nest, m, axis, 1, 1 << 10)
            .expect("projective sweeps stay feasible and bounded");
        let cold = exponent_vs_beta_cold(&nest, m, axis, 1, 1 << 10)
            .expect("the cold oracle solves the same programs");
        prop_assert_eq!(warm, cold);
    }
}

#[test]
fn matmul_pairs_agree_at_the_paper_sizes() {
    // The §6.1 running example, at a size where the answers are known:
    // both pairs must agree bitwise on the canonical nest.
    let nest = builders::matmul(512, 512, 512);
    let m = 1 << 10;
    assert_eq!(
        enumerated_exponent(&nest, m),
        enumerated_exponent_cold(&nest, m)
    );
    assert_eq!(
        exponent_vs_beta(&nest, m, 2, 1, 1 << 10).expect("matmul sweep solves"),
        exponent_vs_beta_cold(&nest, m, 2, 1, 1 << 10).expect("matmul cold sweep solves")
    );
}
