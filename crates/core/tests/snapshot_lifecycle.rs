//! Snapshot lifecycle corpus: crash-safe publication, bounded retention,
//! and newest-valid-generation recovery of [`SnapshotStore`].
//!
//! The invariants under test mirror the service's crash model:
//! * a kill mid-snapshot (torn staging write) never clobbers a published
//!   generation;
//! * startup restore walks back to the newest generation that *validates*,
//!   past torn, truncated, and garbage files;
//! * every answer served from a recovered engine is bitwise-equal to the
//!   free-function oracle — corruption can cost freshness, never
//!   correctness.

use projtile_core::engine::{AnalysisResult, Engine, Query, SharedEngine, SnapshotStore};
use projtile_core::tightness::check_tightness;
use projtile_loopnest::builders;

const M: u64 = 1 << 8;

/// A per-test temp directory, removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("projtile-snapstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn warm_front(queries: usize) -> SharedEngine {
    let front = SharedEngine::new();
    let kernels = [
        builders::matmul(64, 64, 64),
        builders::nbody(32, 64),
        builders::matmul(128, 32, 16),
    ];
    for nest in kernels.iter().take(queries) {
        front
            .analyze(nest, &Query::Tightness { cache_size: M })
            .expect("valid query");
    }
    front
}

#[test]
fn publish_numbers_generations_and_restores_newest() {
    let tmp = TempDir::new("publish");
    let store = SnapshotStore::open(&tmp.0, 8).unwrap();
    assert!(store
        .restore_latest(Engine::restore_json)
        .unwrap()
        .is_none());

    for expected in 1..=3u64 {
        let front = warm_front(expected as usize);
        let generation = store.publish(&front.snapshot_json()).unwrap();
        assert_eq!(generation, expected);
    }
    let generations = store.generations().unwrap();
    assert_eq!(
        generations.iter().map(|(g, _)| *g).collect::<Vec<_>>(),
        vec![3, 2, 1],
        "newest first"
    );

    let (generation, restored) = store
        .restore_latest(SharedEngine::restore_json)
        .unwrap()
        .expect("a valid generation exists");
    assert_eq!(generation, 3);
    // The newest generation saw three kernels; all three answer warm and
    // bitwise-equal to the cold oracle.
    let nest = builders::matmul(128, 32, 16);
    let answer = restored
        .analyze(&nest, &Query::Tightness { cache_size: M })
        .expect("restored front answers");
    let AnalysisResult::Tightness(report) = answer else {
        panic!("tightness query answers with a tightness report");
    };
    assert_eq!(report, check_tightness(&nest, M), "bitwise oracle equality");
    assert_eq!(restored.stats().misses, 0, "served from restored cache");
}

#[test]
fn gc_keeps_only_the_newest_k() {
    let tmp = TempDir::new("gc");
    let store = SnapshotStore::open(&tmp.0, 2).unwrap();
    let front = warm_front(1);
    let text = front.snapshot_json();
    for _ in 0..5 {
        store.publish(&text).unwrap();
    }
    let kept: Vec<u64> = store
        .generations()
        .unwrap()
        .iter()
        .map(|(g, _)| *g)
        .collect();
    assert_eq!(kept, vec![5, 4], "retention keeps the newest two");
}

#[test]
fn torn_staging_write_never_clobbers_published_generations() {
    let tmp = TempDir::new("torn");
    let store = SnapshotStore::open(&tmp.0, 8).unwrap();
    let front = warm_front(2);
    let text = front.snapshot_json();
    store.publish(&text).unwrap();
    let before = std::fs::read_to_string(store.generation_path(1)).unwrap();

    // Kill mid-snapshot at several cut points: only snap.tmp is disturbed.
    for cut in [0, 1, text.len() / 2, text.len() - 1] {
        store.torn_publish(&text, cut).unwrap();
        let after = std::fs::read_to_string(store.generation_path(1)).unwrap();
        assert_eq!(before, after, "published generation untouched at cut {cut}");
        let (generation, _) = store
            .restore_latest(SharedEngine::restore_json)
            .unwrap()
            .expect("good generation still restorable");
        assert_eq!(generation, 1);
    }

    // The interrupted publication does not wedge the store: the next full
    // publish succeeds and becomes the newest generation.
    assert_eq!(store.publish(&text).unwrap(), 2);
}

#[test]
fn restore_walks_back_past_corrupt_generations() {
    let tmp = TempDir::new("walkback");
    let store = SnapshotStore::open(&tmp.0, 8).unwrap();
    let front = warm_front(2);
    let good = front.snapshot_json();
    store.publish(&good).unwrap();

    // Generation 2: truncated mid-document. Generation 3: garbage bytes.
    // Generation 4: valid JSON, hostile payload (version mismatch).
    store.publish(&good).unwrap();
    std::fs::write(store.generation_path(2), &good[..good.len() / 3]).unwrap();
    store.publish(&good).unwrap();
    std::fs::write(store.generation_path(3), b"\x00\xffnot json at all").unwrap();
    store.publish(&good).unwrap();
    std::fs::write(store.generation_path(4), r#"{"version":999}"#).unwrap();

    let (generation, restored) = store
        .restore_latest(SharedEngine::restore_json)
        .unwrap()
        .expect("generation 1 is still good");
    assert_eq!(generation, 1, "newest *valid* generation wins");

    // Zero corrupt answers: the recovered front agrees with the oracle.
    let nest = builders::nbody(32, 64);
    let AnalysisResult::Tightness(report) = restored
        .analyze(&nest, &Query::Tightness { cache_size: M })
        .expect("recovered front answers")
    else {
        panic!("tightness query answers with a tightness report");
    };
    assert_eq!(report, check_tightness(&nest, M), "bitwise oracle equality");
}

#[test]
fn foreign_files_are_ignored() {
    let tmp = TempDir::new("foreign");
    let store = SnapshotStore::open(&tmp.0, 8).unwrap();
    std::fs::write(store.dir().join("README.txt"), "not a snapshot").unwrap();
    std::fs::write(store.dir().join("snap-abc.json"), "bad number").unwrap();
    std::fs::write(store.dir().join("snap.tmp"), "stray staging file").unwrap();
    assert!(store.generations().unwrap().is_empty());
    assert!(store
        .restore_latest(Engine::restore_json)
        .unwrap()
        .is_none());
    let front = warm_front(1);
    assert_eq!(store.publish(&front.snapshot_json()).unwrap(), 1);
}
