//! Differential tests for the engine session API: every engine answer must be
//! bitwise-identical to the retained stateless free functions (the cold
//! oracles), including across nest permutations, repeat queries, and batches.

use projtile_core::engine::{AnalysisResult, Engine, EngineError, Query};
use projtile_core::{bounds, parametric, tightness, tiling_lp};
use projtile_loopnest::canon::permute_nest;
use projtile_loopnest::{builders, LoopNest};
use proptest::prelude::*;

/// A deterministic permutation of `0..n` derived from `seed`.
fn permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// All six query kinds for one nest at cache size `m` (axis 0 for the 1-D
/// queries, axes {0, last} for the surface).
fn all_queries(nest: &LoopNest, m: u64) -> Vec<Query> {
    let last = nest.num_loops() - 1;
    let mut axes = vec![0usize];
    if last != 0 {
        axes.push(last);
    }
    vec![
        Query::LowerBound { cache_size: m },
        Query::EnumeratedBound { cache_size: m },
        Query::OptimalTiling { cache_size: m },
        Query::Tightness { cache_size: m },
        Query::Slice {
            cache_size: m,
            axis: 0,
            lo_bound: 1,
            hi_bound: m,
        },
        Query::Surface {
            cache_size: m,
            axes: axes.clone(),
            lo_bounds: vec![1; axes.len()],
            hi_bounds: vec![m; axes.len()],
        },
    ]
}

/// Checks one engine answer against the cold free-function oracle, bitwise.
fn assert_matches_oracle(nest: &LoopNest, query: &Query, result: &AnalysisResult) {
    match (query, result) {
        (Query::LowerBound { cache_size }, AnalysisResult::LowerBound(lb)) => {
            assert_eq!(lb, &bounds::arbitrary_bound_exponent(nest, *cache_size));
        }
        (Query::EnumeratedBound { cache_size }, AnalysisResult::EnumeratedBound(en)) => {
            assert_eq!(en, &bounds::enumerated_exponent_cold(nest, *cache_size));
        }
        (Query::OptimalTiling { cache_size }, AnalysisResult::OptimalTiling(t)) => {
            let sol = tiling_lp::solve_tiling_lp(nest, *cache_size);
            assert_eq!(t.lambda, sol.lambda);
            assert_eq!(t.value, sol.value);
            let oracle = tiling_lp::optimal_tiling(nest, *cache_size);
            assert_eq!(t.tile_dims, oracle.tile_dims());
            assert_eq!(Some(t.lambda.as_slice()), oracle.lambda());
        }
        (Query::Tightness { cache_size }, AnalysisResult::Tightness(report)) => {
            assert_eq!(report, &tightness::check_tightness(nest, *cache_size));
        }
        (
            Query::Slice {
                cache_size,
                axis,
                lo_bound,
                hi_bound,
            },
            AnalysisResult::Slice(vf),
        ) => {
            let oracle =
                parametric::exponent_vs_beta_cold(nest, *cache_size, *axis, *lo_bound, *hi_bound)
                    .expect("oracle sweep solves");
            assert_eq!(vf, &oracle);
        }
        (
            Query::Surface {
                cache_size,
                axes,
                lo_bounds,
                hi_bounds,
            },
            AnalysisResult::Surface(summary),
        ) => {
            // The engine's retained oracle for surfaces is the public
            // `exponent_surface` (the region decomposition is a property of
            // the warm traversal; only *values* are unique across warm/cold —
            // see `warm_and_cold_surfaces_evaluate_identically`).
            let oracle =
                parametric::exponent_surface(nest, *cache_size, axes, lo_bounds, hi_bounds)
                    .expect("oracle surface solves");
            assert_eq!(summary.axes, axes.clone());
            assert_eq!(summary.num_regions, oracle.num_regions());
            let oracle_pieces: Vec<_> = oracle.pieces().into_iter().cloned().collect();
            assert_eq!(summary.pieces, oracle_pieces);
            assert_eq!(summary.rendered, oracle.render_pieces());
            // Value-level agreement with the fully cold decomposition at the
            // box corners.
            let cold =
                parametric::exponent_surface_cold(nest, *cache_size, axes, lo_bounds, hi_bounds)
                    .expect("cold surface solves");
            let corners: Vec<Vec<projtile_arith::Rational>> = (0..(1usize << axes.len()))
                .map(|mask| {
                    (0..axes.len())
                        .map(|k| {
                            let bound = if mask >> k & 1 == 1 {
                                hi_bounds[k]
                            } else {
                                lo_bounds[k]
                            };
                            projtile_arith::log::beta(bound as u128, *cache_size as u128)
                        })
                        .collect()
                })
                .collect();
            for corner in corners {
                assert_eq!(oracle.value_at(&corner), cold.value_at(&corner));
            }
        }
        (q, r) => panic!("result variant {r:?} does not match query {q:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_answers_equal_cold_oracles_bitwise(
        seed in 0u64..1000,
        d in 2usize..5,
        n in 2usize..5,
        log_m in 2u32..9,
    ) {
        let nest = builders::random_projective(seed, d, n, (1, 256));
        let m = 1u64 << log_m;
        let mut engine = Engine::new();
        for query in all_queries(&nest, m) {
            let result = engine.analyze(&nest, &query).expect("valid query");
            assert_matches_oracle(&nest, &query, &result);
            // The repeat is a pure lookup and identical.
            let again = engine.analyze(&nest, &query).expect("valid query");
            prop_assert_eq!(result, again);
        }
    }

    #[test]
    fn permuted_nests_share_one_entry_and_stay_oracle_exact(
        seed in 0u64..1000,
        loop_seed in any::<u64>(),
        array_seed in any::<u64>(),
        d in 2usize..5,
        n in 2usize..5,
    ) {
        let nest = builders::random_projective(seed, d, n, (1, 128));
        let permuted = permute_nest(
            &nest,
            &permutation(loop_seed, d),
            &permutation(array_seed, n),
        );
        let m = 1u64 << 6;
        let mut engine = Engine::new();
        for query in all_queries(&nest, m) {
            let result = engine.analyze(&nest, &query).expect("valid query");
            assert_matches_oracle(&nest, &query, &result);
        }
        // The permuted variant lands in the same cache entry...
        for query in all_queries(&permuted, m) {
            let result = engine.analyze(&permuted, &query).expect("valid query");
            // ...and its answers are still exactly the oracle's answers *for
            // the permuted declaration order*.
            assert_matches_oracle(&permuted, &query, &result);
        }
        prop_assert_eq!(engine.num_interned(), 1);
    }

    #[test]
    fn batch_answers_equal_sequential_answers(
        seed in 0u64..1000,
        d in 2usize..5,
        n in 2usize..5,
    ) {
        let nest = builders::random_projective(seed, d, n, (1, 128));
        let m = 1u64 << 6;
        let mut queries = all_queries(&nest, m);
        // Duplicates and a second cache size in the same batch.
        queries.push(Query::LowerBound { cache_size: m });
        queries.push(Query::Tightness { cache_size: 4 });
        let batch: Vec<_> = Engine::new().analyze_batch(&nest, &queries);
        let mut sequential_engine = Engine::new();
        for (q, b) in queries.iter().zip(&batch) {
            let s = sequential_engine.analyze(&nest, q);
            prop_assert_eq!(b, &s);
        }
    }

    #[test]
    fn exponent_at_bound_matches_cold_oracle(
        seed in 0u64..1000,
        d in 2usize..6,
        n in 2usize..5,
        axis_pick in any::<u64>(),
    ) {
        let nest = builders::random_projective(seed, d, n, (1, 512));
        let m = 1u64 << 6;
        let axis = (axis_pick % d as u64) as usize;
        let mut engine = Engine::new();
        for bound in [1u64, 2, 3, 5, 16, 64, 100, 1000] {
            let fast = engine
                .exponent_at_bound(&nest, m, axis, bound)
                .expect("valid query");
            let cold = parametric::exponent_at_bound_cold(&nest, m, axis, bound);
            prop_assert_eq!(fast, cold, "axis {}, bound {}", axis, bound);
        }
        // Only the first query swept; the rest were read off the memoized
        // slice (the widening sweep covers every probed bound at once).
        prop_assert!(engine.stats().hits >= 5, "stats: {:?}", engine.stats());
    }
}

#[test]
fn tightness_warms_its_component_queries() {
    let nest = builders::matmul(1 << 8, 1 << 8, 1 << 3);
    let m = 1u64 << 10;
    let mut engine = Engine::new();
    engine
        .analyze(&nest, &Query::Tightness { cache_size: m })
        .unwrap();
    let after_tightness = engine.stats();
    // The sub-artifacts were cached as a side effect: these are hits.
    for query in [
        Query::LowerBound { cache_size: m },
        Query::EnumeratedBound { cache_size: m },
        Query::OptimalTiling { cache_size: m },
    ] {
        engine.analyze(&nest, &query).unwrap();
    }
    let stats = engine.stats();
    assert_eq!(stats.hits, after_tightness.hits + 3, "stats: {stats:?}");
    assert_eq!(stats.misses, after_tightness.misses, "stats: {stats:?}");
}

#[test]
fn batched_tightness_also_warms_its_component_queries() {
    // Regression: the batch fan-out must install the tightness check's
    // component artifacts exactly like the sequential path does.
    let nest = builders::matmul(1 << 8, 1 << 8, 1 << 3);
    let m = 1u64 << 10;
    let mut engine = Engine::new();
    let batch = engine.analyze_batch(&nest, &[Query::Tightness { cache_size: m }]);
    assert!(batch[0].is_ok());
    let after_batch = engine.stats();
    for query in [
        Query::LowerBound { cache_size: m },
        Query::EnumeratedBound { cache_size: m },
        Query::OptimalTiling { cache_size: m },
    ] {
        let result = engine.analyze(&nest, &query).unwrap();
        assert_matches_oracle(&nest, &query, &result);
    }
    let stats = engine.stats();
    assert_eq!(stats.hits, after_batch.hits + 3, "stats: {stats:?}");
    assert_eq!(stats.misses, after_batch.misses, "stats: {stats:?}");
}

#[test]
fn exponent_at_bound_survives_extreme_bounds() {
    // Regression: a bound near u64::MAX must not overflow the widening
    // power-of-two rounding; the answer still matches the cold oracle.
    let nest = builders::matmul(1 << 6, 1 << 6, 1 << 6);
    let m = 1u64 << 8;
    let mut engine = Engine::new();
    for bound in [(1u64 << 63) + 1, u64::MAX] {
        let fast = engine.exponent_at_bound(&nest, m, 2, bound).unwrap();
        let cold = parametric::exponent_at_bound_cold(&nest, m, 2, bound);
        assert_eq!(fast, cold, "bound {bound}");
    }
}

#[test]
fn slices_are_shared_across_permuted_variants() {
    // A slice computed for one declaration order answers the permuted
    // variant's equivalent slice from cache (the value function carries no
    // positional data).
    let nest = builders::matmul(1 << 8, 1 << 8, 1 << 8);
    let permuted = permute_nest(&nest, &[2, 0, 1], &[1, 2, 0]);
    let m = 1u64 << 10;
    let k_orig = nest.index_position("k").unwrap();
    let k_perm = permuted.index_position("k").unwrap();
    let mut engine = Engine::new();
    let first = engine
        .analyze(
            &nest,
            &Query::Slice {
                cache_size: m,
                axis: k_orig,
                lo_bound: 1,
                hi_bound: m,
            },
        )
        .unwrap();
    let misses_after_first = engine.stats().misses;
    let second = engine
        .analyze(
            &permuted,
            &Query::Slice {
                cache_size: m,
                axis: k_perm,
                lo_bound: 1,
                hi_bound: m,
            },
        )
        .unwrap();
    assert_eq!(first, second);
    assert_eq!(
        engine.stats().misses,
        misses_after_first,
        "second slice hit"
    );
    // And both equal the cold oracle on the permuted nest.
    if let AnalysisResult::Slice(vf) = &second {
        let oracle = parametric::exponent_vs_beta_cold(&permuted, m, k_perm, 1, m).unwrap();
        assert_eq!(vf, &oracle);
    } else {
        panic!("slice query answered with {second:?}");
    }
}

#[test]
fn surfaces_are_memoized_and_retrievable() {
    let nest = builders::matmul(1 << 6, 1 << 6, 1 << 6);
    let m = 1u64 << 8;
    let mut engine = Engine::new();
    let surface = engine
        .exponent_surface(&nest, m, &[0, 2], &[1, 1], &[m, m])
        .unwrap();
    let again = engine
        .exponent_surface(&nest, m, &[0, 2], &[1, 1], &[m, m])
        .unwrap();
    assert_eq!(surface, again);
    assert_eq!(engine.stats().hits, 1);
    // The Query::Surface form hits the same memo.
    let result = engine
        .analyze(
            &nest,
            &Query::Surface {
                cache_size: m,
                axes: vec![0, 2],
                lo_bounds: vec![1, 1],
                hi_bounds: vec![m, m],
            },
        )
        .unwrap();
    assert_eq!(engine.stats().hits, 2);
    match result {
        AnalysisResult::Surface(summary) => {
            assert_eq!(summary.num_regions, surface.num_regions())
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn invalid_queries_are_rejected_with_errors() {
    let nest = builders::matmul(8, 8, 8);
    let mut engine = Engine::new();
    for query in [
        Query::LowerBound { cache_size: 1 },
        Query::Slice {
            cache_size: 64,
            axis: 7,
            lo_bound: 1,
            hi_bound: 8,
        },
        Query::Slice {
            cache_size: 64,
            axis: 0,
            lo_bound: 8,
            hi_bound: 4,
        },
        Query::Surface {
            cache_size: 64,
            axes: vec![],
            lo_bounds: vec![],
            hi_bounds: vec![],
        },
        Query::Surface {
            cache_size: 64,
            axes: vec![0, 0],
            lo_bounds: vec![1, 1],
            hi_bounds: vec![8, 8],
        },
    ] {
        match engine.analyze(&nest, &query) {
            Err(EngineError::InvalidQuery(_)) => {}
            other => panic!("{query:?} should be rejected, got {other:?}"),
        }
    }
    // Batch keeps per-query errors positional.
    let queries = vec![
        Query::LowerBound { cache_size: 1 },
        Query::LowerBound { cache_size: 64 },
    ];
    let results = engine.analyze_batch(&nest, &queries);
    assert!(matches!(results[0], Err(EngineError::InvalidQuery(_))));
    assert!(results[1].is_ok());
}

#[test]
fn results_round_trip_through_json() {
    let nest = builders::matmul(1 << 8, 1 << 8, 1 << 2);
    let m = 1u64 << 10;
    let mut engine = Engine::new();
    for query in all_queries(&nest, m) {
        // Queries are wire-ready...
        let qtext = serde::json::to_string(&query);
        let qback: Query = serde::json::from_str(&qtext).expect("query parses back");
        assert_eq!(qback, query, "query round trip via {qtext}");
        // ...and so are the results, bit-exactly (rationals as `p/q` strings,
        // floats in shortest-round-trip form).
        let result = engine.analyze(&nest, &query).unwrap();
        let text = serde::json::to_string(&result);
        let back: AnalysisResult = serde::json::from_str(&text).expect("result parses back");
        assert_eq!(back, result, "result round trip via {text}");
    }
}

#[test]
fn problem_instance_reuses_its_session() {
    let inst = projtile_core::ProblemInstance::new(builders::matmul(512, 512, 8), 1 << 10);
    let first = inst.check_tightness();
    let again = inst.check_tightness();
    assert_eq!(first, again);
    // The tightness check warmed the lower-bound artifact too.
    let lb = inst.tile_size_exponent();
    assert_eq!(lb.exponent, first.bound_exponent);
    let stats = inst.session_stats();
    assert!(stats.hits >= 2, "stats: {stats:?}");
}
