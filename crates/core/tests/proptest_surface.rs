//! Differential property tests for the multiparametric §7 surface.
//!
//! The load-bearing exactness claim of `exponent_surface` is that it subsumes
//! the one-dimensional analysis: restricting the d-dimensional value surface
//! to any axis-parallel line must reproduce — **bitwise**, breakpoints and
//! all — the value function that the independent cold 1-D sweep
//! (`exponent_vs_beta_cold`, one fresh LP solve per probe) computes along the
//! same line. These tests pin that over random projective nests, random swept
//! axes, and random slice points, plus the paper's fixed matmul structure.

use projtile_arith::{ratio, Rational};
use projtile_core::parametric::{exponent_surface, exponent_surface_cold, exponent_vs_beta_cold};
use projtile_loopnest::builders;
use proptest::prelude::*;

/// Strategy: a random projective nest with `d` loops, a cache size, and two
/// distinct swept axes with their sweep ranges.
fn surface_case() -> impl Strategy<Value = (u64, usize, usize, u32, u32)> {
    (0u64..200, 0usize..4, 0usize..4, 3u32..8, 4u32..10)
        .prop_filter("distinct axes", |(_, a, b, _, _)| a != b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_single_axis_surfaces_equal_cold_one_dimensional_sweeps(
        (seed, axis, _, log_m, log_hi) in surface_case()
    ) {
        let nest = builders::random_projective(seed, 4, 4, (1, 256));
        let m = 1u64 << log_m;
        let hi = 1u64 << log_hi;
        let surf = exponent_surface(&nest, m, &[axis], &[1], &[hi]).unwrap();
        let oracle = exponent_vs_beta_cold(&nest, m, axis, 1, hi).unwrap();
        prop_assert_eq!(surf.slice_at_nominal(0), oracle);
    }

    #[test]
    fn random_two_axis_surface_slices_equal_cold_sweeps_bitwise(
        (seed, axis_a, axis_b, log_m, log_hi) in surface_case()
    ) {
        let nest = builders::random_projective(seed, 4, 4, (1, 256));
        let m = 1u64 << log_m;
        let hi = 1u64 << log_hi;
        let surf = exponent_surface(&nest, m, &[axis_a, axis_b], &[1, 1], &[hi, hi]).unwrap();
        // Slice along each axis at several fixed integer-bound β values of
        // the other axis, and compare against the cold 1-D sweep of the
        // correspondingly-rebound nest.
        for fixed_log in [0u32, 1, log_hi / 2, log_hi] {
            for (slice_pos, slice_axis, fixed_axis) in [(1, axis_b, axis_a), (0, axis_a, axis_b)] {
                let mut bounds = nest.bounds();
                bounds[fixed_axis] = 1u64 << fixed_log;
                let rebound = nest.with_bounds(&bounds);
                let oracle = exponent_vs_beta_cold(&rebound, m, slice_axis, 1, hi).unwrap();
                let fixed_beta = ratio(i64::from(fixed_log), i64::from(log_m));
                let at = if slice_pos == 1 {
                    vec![fixed_beta, Rational::zero()]
                } else {
                    vec![Rational::zero(), fixed_beta]
                };
                prop_assert_eq!(surf.slice(slice_pos, &at), oracle);
            }
        }
    }

    #[test]
    fn warm_and_cold_surfaces_slice_identically(
        (seed, axis_a, axis_b, log_m, log_hi) in surface_case()
    ) {
        let nest = builders::random_projective(seed, 4, 4, (1, 256));
        let m = 1u64 << log_m;
        let hi = 1u64 << log_hi;
        let warm = exponent_surface(&nest, m, &[axis_a, axis_b], &[1, 1], &[hi, hi]).unwrap();
        let cold = exponent_surface_cold(&nest, m, &[axis_a, axis_b], &[1, 1], &[hi, hi]).unwrap();
        let at = vec![ratio(1, 3), ratio(2, 7)];
        for pos in 0..2 {
            prop_assert_eq!(warm.slice(pos, &at), cold.slice(pos, &at));
        }
        for i in 0..=3i64 {
            for j in 0..=3i64 {
                let hi_beta = ratio(i64::from(log_hi), i64::from(log_m));
                let beta = vec![
                    &ratio(i, 3) * &hi_beta,
                    &ratio(j, 3) * &hi_beta,
                ];
                prop_assert_eq!(warm.value_at(&beta), cold.value_at(&beta));
            }
        }
    }
}

#[test]
fn matmul_region_structure_is_the_papers() {
    // The fixed §6.1 assertion: over β3 with β1 = β2 large, the surface has
    // the breakpoint at β3 = 1/2 with gradient 1 below and 0 above.
    let m = 1u64 << 10;
    let nest = builders::matmul(1 << 10, 1 << 10, 1 << 10);
    let k_axis = nest.index_position("k").unwrap();
    let surf = exponent_surface(&nest, m, &[k_axis], &[1], &[m]).unwrap();
    let slice = surf.slice_at_nominal(0);
    assert_eq!(slice.num_pieces(), 2);
    assert_eq!(
        slice.slopes(),
        vec![Rational::one(), Rational::zero()],
        "gradients on the two sides of the regime split"
    );
    assert!(
        slice.breakpoints.iter().any(|(t, _)| *t == ratio(1, 2)),
        "breakpoint at β3 = 1/2"
    );
    assert_eq!(slice.value_at(&ratio(1, 2)), ratio(3, 2));
    // And the same split shows up as critical regions of the surface proper:
    // a region with gradient [1] and one with gradient [0].
    let pieces = surf.pieces();
    assert!(pieces.iter().any(|p| p.gradient == vec![Rational::one()]));
    assert!(pieces.iter().any(|p| p.gradient == vec![Rational::zero()]));
}
