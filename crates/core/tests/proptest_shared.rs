//! Differential tests for the service layer (PR 5): bounded caches under
//! eviction pressure, the thread-safe `SharedEngine` front under concurrent
//! traffic, and snapshot/restore persistence. Every answer must stay
//! **bitwise-identical** to the cold free-function oracles and to a private
//! single-threaded `Engine`, no matter what the caches evicted, which
//! thread asked, or whether the session was round-tripped through JSON.

use projtile_core::engine::{
    AnalysisResult, Engine, EngineConfig, EngineError, Query, SharedEngine,
};
use projtile_core::{bounds, parametric, tightness, tiling_lp};
use projtile_loopnest::canon::permute_nest;
use projtile_loopnest::{builders, LoopNest};
use proptest::prelude::*;

/// Budgets tiny enough that nearly every insertion evicts something.
fn tiny_config() -> EngineConfig {
    EngineConfig {
        results_capacity: 700,
        betas_capacity: 200,
        slices_capacity: 900,
        surfaces_capacity: 2000,
    }
}

/// A 1-loop filler nest whose tiling result is the cheapest possible cache
/// entry — smaller than a tightness report, so filler traffic evicts the
/// (least recently used, derived-last) report and nothing else.
fn filler_nest() -> LoopNest {
    LoopNest::builder()
        .index("i", 2)
        .array("A", ["i"])
        .build()
        .expect("trivial filler nest is valid")
}

/// A deterministic permutation of `0..n` derived from `seed`.
fn permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// All six query kinds for one nest at cache size `m`.
fn all_queries(nest: &LoopNest, m: u64) -> Vec<Query> {
    let last = nest.num_loops() - 1;
    let mut axes = vec![0usize];
    if last != 0 {
        axes.push(last);
    }
    vec![
        Query::LowerBound { cache_size: m },
        Query::EnumeratedBound { cache_size: m },
        Query::OptimalTiling { cache_size: m },
        Query::Tightness { cache_size: m },
        Query::Slice {
            cache_size: m,
            axis: 0,
            lo_bound: 1,
            hi_bound: m,
        },
        Query::Surface {
            cache_size: m,
            axes: axes.clone(),
            lo_bounds: vec![1; axes.len()],
            hi_bounds: vec![m; axes.len()],
        },
    ]
}

/// Checks one engine answer against the cold free-function oracle, bitwise.
fn assert_matches_oracle(nest: &LoopNest, query: &Query, result: &AnalysisResult) {
    match (query, result) {
        (Query::LowerBound { cache_size }, AnalysisResult::LowerBound(lb)) => {
            assert_eq!(lb, &bounds::arbitrary_bound_exponent(nest, *cache_size));
        }
        (Query::EnumeratedBound { cache_size }, AnalysisResult::EnumeratedBound(en)) => {
            assert_eq!(en, &bounds::enumerated_exponent_cold(nest, *cache_size));
        }
        (Query::OptimalTiling { cache_size }, AnalysisResult::OptimalTiling(t)) => {
            let sol = tiling_lp::solve_tiling_lp(nest, *cache_size);
            assert_eq!(t.lambda, sol.lambda);
            assert_eq!(t.value, sol.value);
        }
        (Query::Tightness { cache_size }, AnalysisResult::Tightness(report)) => {
            assert_eq!(report, &tightness::check_tightness(nest, *cache_size));
        }
        (
            Query::Slice {
                cache_size,
                axis,
                lo_bound,
                hi_bound,
            },
            AnalysisResult::Slice(vf),
        ) => {
            let oracle =
                parametric::exponent_vs_beta_cold(nest, *cache_size, *axis, *lo_bound, *hi_bound)
                    .expect("oracle sweep solves");
            assert_eq!(vf, &oracle);
        }
        (
            Query::Surface {
                cache_size,
                axes,
                lo_bounds,
                hi_bounds,
            },
            AnalysisResult::Surface(summary),
        ) => {
            let oracle =
                parametric::exponent_surface(nest, *cache_size, axes, lo_bounds, hi_bounds)
                    .expect("oracle surface solves");
            assert_eq!(summary.axes, axes.clone());
            assert_eq!(summary.num_regions, oracle.num_regions());
            let oracle_pieces: Vec<_> = oracle.pieces().into_iter().cloned().collect();
            assert_eq!(summary.pieces, oracle_pieces);
            assert_eq!(summary.rendered, oracle.render_pieces());
        }
        (q, r) => panic!("result variant {r:?} does not match query {q:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tiny caps force evictions on nearly every query; answers must stay
    /// oracle-exact anyway (evicted artifacts recompute deterministically),
    /// and the caps must actually be respected.
    #[test]
    fn eviction_pressure_never_changes_answers(
        seed in 0u64..1000,
        d in 2usize..5,
        n in 2usize..5,
    ) {
        let nest = builders::random_projective(seed, d, n, (1, 128));
        let mut engine = Engine::with_config(tiny_config());
        // Two sweeps over several cache sizes: the second sweep re-answers
        // queries whose results were long evicted by the first.
        for _ in 0..2 {
            for m in [4u64, 16, 64] {
                for query in all_queries(&nest, m) {
                    let result = engine.analyze(&nest, &query).expect("valid query");
                    assert_matches_oracle(&nest, &query, &result);
                }
            }
        }
        let metrics = engine.cache_metrics();
        prop_assert!(
            metrics.results.evictions > 0,
            "tiny caps must actually evict: {metrics:?}"
        );
        for cache in [metrics.betas, metrics.results, metrics.slices, metrics.surfaces] {
            prop_assert!(
                cache.cost <= cache.capacity || cache.entries == 1,
                "cap violated: {cache:?}"
            );
        }
    }

    /// Concurrent `SharedEngine` traffic — mixed single queries and batches,
    /// mixed declaration orders, tiny caps — answers bitwise what a private
    /// sequential engine answers, from every thread.
    #[test]
    fn concurrent_shared_engine_matches_sequential_bitwise(
        seed in 0u64..1000,
        loop_seed in any::<u64>(),
        array_seed in any::<u64>(),
        d in 2usize..5,
        n in 2usize..5,
    ) {
        let nest = builders::random_projective(seed, d, n, (1, 128));
        let permuted = permute_nest(
            &nest,
            &permutation(loop_seed, d),
            &permutation(array_seed, n),
        );
        let m = 1u64 << 6;
        let queries = all_queries(&nest, m);
        let queries_perm = all_queries(&permuted, m);

        // Sequential ground truth from a private engine (itself pinned to
        // the cold oracles by the engine test suite and the test above).
        let mut sequential = Engine::new();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| sequential.analyze(&nest, q).expect("valid query"))
            .collect();
        let expected_perm: Vec<_> = queries_perm
            .iter()
            .map(|q| sequential.analyze(&permuted, q).expect("valid query"))
            .collect();

        // Hammer one shared front from several real threads, under forced
        // eviction pressure (tiny caps) and across permuted variants.
        let shared = SharedEngine::with_config(tiny_config(), 4);
        let workers = projtile_par::num_threads().clamp(2, 8);
        projtile_par::fan_out(workers, |w| {
            for round in 0..2 {
                let (target, qs, exp) = if (w + round) % 2 == 0 {
                    (&nest, &queries, &expected)
                } else {
                    (&permuted, &queries_perm, &expected_perm)
                };
                if round % 2 == 0 {
                    let got = shared.analyze_batch(target, qs);
                    for (g, e) in got.iter().zip(exp) {
                        assert_eq!(g.as_ref().expect("valid query"), e, "worker {w}");
                    }
                } else {
                    for (q, e) in qs.iter().zip(exp) {
                        let g = shared.analyze(target, q).expect("valid query");
                        assert_eq!(&g, e, "worker {w}");
                    }
                }
            }
        });
        // Both declaration orders share one interned entry.
        prop_assert_eq!(shared.stats().interned, 1);
        let stats = shared.stats();
        prop_assert_eq!(
            stats.queries,
            (workers * 2 * queries.len()) as u64,
            "stats: {:?}", stats
        );
    }

    /// Snapshot → JSON → restore is a warm start: every persisted query is
    /// answered from cache, bitwise-identically, by both the
    /// single-threaded engine and the sharded front.
    #[test]
    fn snapshot_restore_answers_bitwise_from_cache(
        seed in 0u64..1000,
        d in 2usize..5,
        n in 2usize..5,
    ) {
        let nest = builders::random_projective(seed, d, n, (1, 128));
        let m = 1u64 << 6;
        let queries = all_queries(&nest, m);
        let mut engine = Engine::new();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| engine.analyze(&nest, q).expect("valid query"))
            .collect();
        // A probe slice too (exponent_at_bound state must persist).
        let probe = engine
            .exponent_at_bound(&nest, m, 0, 37)
            .expect("valid probe");

        let text = engine.snapshot_json();

        let mut restored = Engine::restore_json(&text).expect("snapshot restores");
        for (q, e) in queries.iter().zip(&expected) {
            let got = restored.analyze(&nest, q).expect("valid query");
            prop_assert_eq!(&got, e);
        }
        let stats = restored.stats();
        prop_assert_eq!(stats.misses, 0, "restored session must be warm: {:?}", stats);
        prop_assert_eq!(
            restored.exponent_at_bound(&nest, m, 0, 37).expect("probe"),
            probe
        );

        // The same document restores into a sharded front.
        let shared = SharedEngine::restore_json(&text).expect("snapshot restores");
        for (q, e) in queries.iter().zip(&expected) {
            let got = shared.analyze(&nest, q).expect("valid query");
            prop_assert_eq!(&got, e);
        }
        let stats = shared.stats();
        prop_assert_eq!(stats.misses, 0, "restored front must be warm: {:?}", stats);

        // And a sharded snapshot round-trips back into a plain engine.
        let merged = shared.snapshot_json();
        let mut back = Engine::restore_json(&merged).expect("merged snapshot restores");
        for (q, e) in queries.iter().zip(&expected) {
            prop_assert_eq!(&back.analyze(&nest, q).expect("valid query"), e);
        }
    }
}

#[test]
fn permuted_surface_requests_hit_the_cache() {
    // Satellite regression: the same surface requested with permuted axes
    // (and correspondingly permuted box) must be a cache *hit*, and the
    // answer must still be exactly what the free function returns for that
    // permuted request.
    let nest = builders::matmul(1 << 6, 1 << 6, 1 << 6);
    let m = 1u64 << 8;
    let mut engine = Engine::new();
    let sorted_query = Query::Surface {
        cache_size: m,
        axes: vec![0, 2],
        lo_bounds: vec![1, 2],
        hi_bounds: vec![m, m / 2],
    };
    let permuted_query = Query::Surface {
        cache_size: m,
        axes: vec![2, 0],
        lo_bounds: vec![2, 1],
        hi_bounds: vec![m / 2, m],
    };
    engine.analyze(&nest, &sorted_query).unwrap();
    assert_eq!(engine.stats().misses, 1);
    let permuted_result = engine.analyze(&nest, &permuted_query).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.hits, 1, "permuted request must hit: {stats:?}");
    assert_eq!(
        stats.misses, 1,
        "permuted request must not recompute: {stats:?}"
    );
    assert_matches_oracle(&nest, &permuted_query, &permuted_result);
    // The full-surface accessor hits the same entry and equals the free
    // function for the permuted order.
    let full = engine
        .exponent_surface(&nest, m, &[2, 0], &[2, 1], &[m / 2, m])
        .unwrap();
    let oracle = parametric::exponent_surface(&nest, m, &[2, 0], &[2, 1], &[m / 2, m]).unwrap();
    assert_eq!(full, oracle);
    assert_eq!(engine.stats().hits, 2);
}

#[test]
fn permuted_surface_twins_in_one_batch_compute_once() {
    // Two permuted-axes requests for the same surface in one batch share one
    // canonical cache key, so the batch computes the surface once and both
    // positions answer bitwise what the free function returns for each order.
    let nest = builders::matmul(1 << 6, 1 << 6, 1 << 6);
    let m = 1u64 << 8;
    let sorted_query = Query::Surface {
        cache_size: m,
        axes: vec![0, 2],
        lo_bounds: vec![1, 2],
        hi_bounds: vec![m, m / 2],
    };
    let permuted_query = Query::Surface {
        cache_size: m,
        axes: vec![2, 0],
        lo_bounds: vec![2, 1],
        hi_bounds: vec![m / 2, m],
    };
    let queries = vec![sorted_query.clone(), permuted_query.clone()];

    let mut engine = Engine::new();
    let batch = engine.analyze_batch(&nest, &queries);
    let stats = engine.stats();
    assert_eq!(stats.misses, 1, "canonical twins compute once: {stats:?}");
    assert_eq!(stats.hits, 1, "the twin occurrence is a hit: {stats:?}");
    for (q, r) in queries.iter().zip(&batch) {
        assert_matches_oracle(&nest, q, r.as_ref().expect("valid query"));
    }

    let shared = SharedEngine::with_config(EngineConfig::default(), 2);
    let shared_batch = shared.analyze_batch(&nest, &queries);
    let stats = shared.stats();
    assert_eq!(stats.misses, 1, "shared twins compute once: {stats:?}");
    assert_eq!(stats.hits, 1, "shared twin occurrence is a hit: {stats:?}");
    for ((q, r), seq) in queries.iter().zip(&shared_batch).zip(&batch) {
        let r = r.as_ref().expect("valid query");
        assert_matches_oracle(&nest, q, r);
        assert_eq!(Ok(r), seq.as_ref(), "shared == sequential bitwise");
    }
}

#[test]
fn shared_tightness_recomposes_under_the_read_lock() {
    // After the report is evicted but its components survive, the shared
    // front answers tightness as a read-path *hit* (recomposition is pure
    // arithmetic), still bitwise the free function's report.
    let (seed, m) = (0u64, 1u64 << 8);
    let nest = builders::random_projective(seed, 5, 4, (1, 512));
    let q = Query::Tightness { cache_size: m };
    let mut sizing = Engine::new();
    sizing.analyze(&nest, &q).unwrap();
    let budget = sizing.cache_metrics().results.cost;

    let shared = SharedEngine::with_config(
        EngineConfig {
            results_capacity: budget,
            ..EngineConfig::default()
        },
        1,
    );
    let first = shared.analyze(&nest, &q).unwrap();
    // Filler traffic evicts the (derived-last) report and nothing else.
    let filler = filler_nest();
    shared
        .analyze(&filler, &Query::OptimalTiling { cache_size: m })
        .unwrap();
    assert!(shared.cache_metrics().results.evictions > 0);
    let hits_before = shared.stats().hits;
    let again = shared.analyze(&nest, &q).unwrap();
    assert_eq!(first, again);
    assert_eq!(
        shared.stats().hits,
        hits_before + 1,
        "recomposition is served under the read lock"
    );
    assert_eq!(
        again,
        AnalysisResult::Tightness(tightness::check_tightness(&nest, m))
    );
}

#[test]
fn shared_engine_read_path_hits_do_not_lose_recency() {
    // Repeated concurrent hits must keep an entry alive under eviction
    // pressure: the peeked-at result survives while a never-re-read one is
    // evicted first.
    let nest_a = builders::matmul(1 << 6, 1 << 6, 1 << 6);
    let m = 1u64 << 8;
    let shared = SharedEngine::with_config(
        EngineConfig {
            results_capacity: 1 << 20,
            ..EngineConfig::default()
        },
        1,
    );
    let q = Query::Tightness { cache_size: m };
    shared.analyze(&nest_a, &q).unwrap();
    for _ in 0..8 {
        shared.analyze(&nest_a, &q).unwrap();
    }
    let stats = shared.stats();
    assert_eq!(stats.hits, 8, "repeats are read-path hits: {stats:?}");
    assert_eq!(stats.misses, 1, "stats: {stats:?}");
}

#[test]
fn evicted_tightness_recomposes_from_surviving_components() {
    // The results cache keeps the tightness report's components (bound,
    // enumeration, tiling, certificate) as separate entries; when the
    // report itself is evicted, re-answering composes from the survivors —
    // and the composed report is bitwise the free function's.
    let (seed, m) = (0u64, 1u64 << 8);
    let nest = builders::random_projective(seed, 5, 4, (1, 512));
    let q = Query::Tightness { cache_size: m };

    // Budget sized to exactly the five-entry tightness set of this nest.
    let mut sizing = Engine::new();
    sizing.analyze(&nest, &q).unwrap();
    let budget = sizing.cache_metrics().results.cost;

    let mut engine = Engine::with_config(EngineConfig {
        results_capacity: budget,
        ..EngineConfig::default()
    });
    let first = engine.analyze(&nest, &q).unwrap();
    assert_eq!(engine.cache_metrics().results.evictions, 0);
    // Re-read the components so the report (and its certificate) sink to
    // the least recently used end...
    for probe in [
        Query::OptimalTiling { cache_size: m },
        Query::LowerBound { cache_size: m },
        Query::EnumeratedBound { cache_size: m },
    ] {
        engine.analyze(&nest, &probe).unwrap();
    }
    // ...then overflow the budget with unrelated traffic: the report is
    // evicted, the components survive.
    let filler = filler_nest();
    engine
        .analyze(&filler, &Query::OptimalTiling { cache_size: m })
        .unwrap();
    assert!(engine.cache_metrics().results.evictions > 0);

    let misses_before = engine.stats().misses;
    let again = engine.analyze(&nest, &q).unwrap();
    assert_eq!(first, again);
    assert_eq!(
        engine.stats().misses,
        misses_before + 1,
        "the evicted report must recompose (a miss), not answer stale"
    );
    assert_eq!(
        again,
        AnalysisResult::Tightness(tightness::check_tightness(&nest, m))
    );
}

#[test]
fn corrupt_snapshots_are_rejected_not_panicked() {
    let nest = builders::matmul(1 << 6, 1 << 6, 8);
    let mut engine = Engine::new();
    engine
        .analyze(&nest, &Query::Tightness { cache_size: 1 << 8 })
        .unwrap();
    let good = engine.snapshot_json();

    // Unknown version.
    let versioned = good.replacen("\"version\":1", "\"version\":999", 1);
    assert!(matches!(
        Engine::restore_json(&versioned),
        Err(EngineError::Snapshot(_))
    ));
    // Truncated document.
    assert!(matches!(
        Engine::restore_json(&good[..good.len() / 2]),
        Err(EngineError::Snapshot(_))
    ));
    // Out-of-range entry index.
    let skewed = good.replace("\"entry\":0", "\"entry\":9999");
    assert!(matches!(
        Engine::restore_json(&skewed),
        Err(EngineError::Snapshot(_))
    ));
    // Hostile nesting depth cannot overflow the parser stack.
    let bomb = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
    assert!(matches!(
        Engine::restore_json(&bomb),
        Err(EngineError::Snapshot(_))
    ));
    // The pristine document still restores.
    assert!(Engine::restore_json(&good).is_ok());
}

#[test]
fn restore_respects_smaller_budgets() {
    // Restoring a rich session into tiny budgets evicts immediately instead
    // of overshooting the caps, and the session still answers correctly.
    let nest = builders::random_projective(3, 4, 4, (1, 128));
    let mut engine = Engine::new();
    for m in [4u64, 16, 64] {
        for query in all_queries(&nest, m) {
            engine.analyze(&nest, &query).unwrap();
        }
    }
    let text = engine.snapshot_json();
    let mut small =
        Engine::restore_json_with_config(&text, tiny_config()).expect("snapshot restores");
    let metrics = small.cache_metrics();
    for cache in [
        metrics.betas,
        metrics.results,
        metrics.slices,
        metrics.surfaces,
    ] {
        assert!(
            cache.cost <= cache.capacity || cache.entries == 1,
            "cap violated after restore: {cache:?}"
        );
    }
    for query in all_queries(&nest, 64) {
        let result = small.analyze(&nest, &query).expect("valid query");
        assert_matches_oracle(&nest, &query, &result);
    }
}
