//! Hostile-snapshot regression tests: every payload-validation site added
//! to `Engine::restore` must reject a corrupted document with
//! [`EngineError::Snapshot`] instead of admitting a value that panics the
//! first time a worker consumes it. Each test takes a *genuine* snapshot of
//! a warmed engine, applies one surgical mutation, and asserts restore
//! errors (the process never aborts — these run in-process, so a panic
//! fails the test loudly).

use projtile_core::engine::{Engine, EngineError, Query};
use projtile_loopnest::builders;
use serde::Value;

const M: u64 = 1 << 8;

/// A warmed engine whose snapshot contains every artifact class: a β
/// vector, all five result kinds, a span slice, a probe slice, and a
/// surface.
fn warmed_engine() -> Engine {
    let nest = builders::matmul(64, 64, 64);
    let mut engine = Engine::new();
    engine
        .analyze(&nest, &Query::Tightness { cache_size: M })
        .expect("tightness warms bound/enumerated/tiling/certificate");
    engine
        .analyze(
            &nest,
            &Query::Slice {
                cache_size: M,
                axis: 2,
                lo_bound: 1,
                hi_bound: 64,
            },
        )
        .expect("span slice warms");
    engine
        .analyze(
            &nest,
            &Query::Surface {
                cache_size: M,
                axes: vec![2],
                lo_bounds: vec![1],
                hi_bounds: vec![64],
            },
        )
        .expect("surface warms");
    engine
        .exponent_at_bound(&nest, M, 2, 32)
        .expect("probe slice warms");
    engine
}

fn obj_mut<'a>(v: &'a mut Value, name: &str) -> &'a mut Value {
    match v {
        Value::Object(entries) => entries
            .iter_mut()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field `{name}`")),
        other => panic!("expected an object, found {}", other.kind()),
    }
}

fn arr_mut(v: &mut Value) -> &mut Vec<Value> {
    match v {
        Value::Array(items) => items,
        other => panic!("expected an array, found {}", other.kind()),
    }
}

/// The first element of the snapshot's `list` whose `kind` field equals
/// `kind` (slices and results are keyed lists of tagged objects).
fn find_kind<'a>(list: &'a mut [Value], kind: &str) -> &'a mut Value {
    list.iter_mut()
        .find(|v| matches!(v.field("kind"), Ok(Value::String(k)) if k.as_str() == kind))
        .unwrap_or_else(|| panic!("no `{kind}` artifact in snapshot"))
}

/// Applies `mutate` to a fresh genuine snapshot and asserts restore rejects
/// the result with a `Snapshot` error mentioning `expect_msg`.
fn assert_rejected(mutate: impl FnOnce(&mut Value), expect_msg: &str) {
    let mut snapshot = warmed_engine().snapshot();
    mutate(&mut snapshot);
    match Engine::restore(&snapshot) {
        Err(EngineError::Snapshot(msg)) => assert!(
            msg.contains(expect_msg),
            "expected error mentioning {expect_msg:?}, got {msg:?}"
        ),
        Err(other) => panic!("expected a Snapshot error, got {other}"),
        Ok(_) => panic!("hostile snapshot restored (wanted error about {expect_msg:?})"),
    }
}

/// Prefix-truncation fuzz over the real snapshot corpus: a torn snapshot
/// file is some byte prefix of a valid document, and the restore path must
/// reject every such prefix with an error — never a panic, never a
/// partially-restored engine presented as whole.
#[test]
fn truncated_snapshot_prefixes_never_restore_partially() {
    let text = warmed_engine().snapshot_json();
    assert!(
        Engine::restore_json(&text).is_ok(),
        "full document restores"
    );
    // Step through prefixes densely near token boundaries but coarsely in
    // long runs (the document is tens of KiB; every boundary is still hit
    // across the corpus of stride offsets).
    let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
    for (step, &end) in boundaries.iter().enumerate() {
        if end > 256 && step % 7 != 0 {
            continue;
        }
        let prefix = &text[..end];
        let restored = Engine::restore_json(prefix);
        assert!(
            restored.is_err(),
            "proper prefix of {end} bytes must not restore"
        );
    }
}

#[test]
fn genuine_snapshot_restores() {
    let snapshot = warmed_engine().snapshot();
    Engine::restore(&snapshot).expect("unmutated snapshot restores");
}

#[test]
fn rejects_undersized_cache_size() {
    assert_rejected(
        |s| *obj_mut(&mut arr_mut(obj_mut(s, "betas"))[0], "m") = Value::Int(1),
        "must be at least 2 words",
    );
}

#[test]
fn rejects_truncated_s_hat() {
    assert_rejected(
        |s| {
            let bound = find_kind(arr_mut(obj_mut(s, "results")), "bound");
            arr_mut(obj_mut(obj_mut(bound, "value"), "s_hat")).pop();
        },
        "lower-bound certificate vectors",
    );
}

#[test]
fn rejects_out_of_range_witness_subset() {
    assert_rejected(
        |s| {
            let bound = find_kind(arr_mut(obj_mut(s, "results")), "bound");
            // Bit 40 names a loop a 3-deep nest does not have; the genuine
            // consumer would index β[40] and abort the worker.
            *obj_mut(obj_mut(bound, "value"), "witness_subset") = Value::Int(1 << 40);
        },
        "witness subset references loops",
    );
}

#[test]
fn rejects_out_of_range_enumerated_subset() {
    assert_rejected(
        |s| {
            let en = find_kind(arr_mut(obj_mut(s, "results")), "enumerated");
            *obj_mut(obj_mut(en, "value"), "best_subset") = Value::Int(1 << 40);
        },
        "enumerated-bound subsets",
    );
}

#[test]
fn rejects_truncated_tiling_lambda() {
    assert_rejected(
        |s| {
            let t = find_kind(arr_mut(obj_mut(s, "results")), "tiling");
            arr_mut(obj_mut(obj_mut(t, "value"), "lambda")).pop();
        },
        "tiling summary dimensions",
    );
}

#[test]
fn rejects_out_of_range_tightness_witness() {
    assert_rejected(
        |s| {
            let t = find_kind(arr_mut(obj_mut(s, "results")), "tightness");
            *obj_mut(obj_mut(t, "value"), "witness_subset") = Value::Int(1 << 40);
        },
        "tightness witness subset",
    );
}

#[test]
fn rejects_unsorted_slice_breakpoints() {
    assert_rejected(
        |s| {
            let span = find_kind(arr_mut(obj_mut(s, "slices")), "span");
            let bps = arr_mut(obj_mut(obj_mut(span, "value"), "breakpoints"));
            assert!(bps.len() >= 2, "span slice has multiple breakpoints");
            bps.reverse();
        },
        "breakpoints are not sorted",
    );
}

#[test]
fn rejects_zero_span_lo_bound() {
    assert_rejected(
        |s| {
            let span = find_kind(arr_mut(obj_mut(s, "slices")), "span");
            *obj_mut(span, "lo") = Value::Int(0);
        },
        "slice bound range is invalid",
    );
}

#[test]
fn rejects_zero_probe_bound() {
    assert_rejected(
        |s| {
            let probe = find_kind(arr_mut(obj_mut(s, "slices")), "probe");
            *obj_mut(probe, "hi") = Value::Int(0);
        },
        "probe bound must be at least 1",
    );
}

#[test]
fn rejects_undercovered_probe() {
    assert_rejected(
        |s| {
            // Claim coverage far past what the value function spans: the
            // engine would treat any bound up to 2^60 as covered and panic
            // inside `value_at`.
            let probe = find_kind(arr_mut(obj_mut(s, "slices")), "probe");
            *obj_mut(probe, "hi") = Value::Int(1 << 60);
        },
        "does not cover its declared bound range",
    );
}

#[test]
fn rejects_truncated_surface_gradient() {
    assert_rejected(
        |s| {
            let surf = &mut arr_mut(obj_mut(s, "surfaces"))[0];
            let regions = arr_mut(obj_mut(
                obj_mut(obj_mut(surf, "surface"), "surface"),
                "regions",
            ));
            arr_mut(obj_mut(obj_mut(&mut regions[0], "piece"), "gradient")).pop();
        },
        "gradient",
    );
}

#[test]
fn rejects_mismatched_surface_axis_names() {
    assert_rejected(
        |s| {
            let surf = &mut arr_mut(obj_mut(s, "surfaces"))[0];
            arr_mut(obj_mut(obj_mut(surf, "surface"), "axis_names")).pop();
        },
        "axis names",
    );
}
