//! Side-by-side comparison of schedules against the lower bound.
//!
//! This is the data behind experiment E8 (DESIGN.md): for one problem
//! instance, measure the untiled order, the clamped classical tiling, and the
//! arbitrary-bound optimal tiling on the same simulated cache, and report each
//! against the Theorem-2 lower bound.

use projtile_core::communication_lower_bound;
use projtile_loopnest::LoopNest;

use crate::baseline::{classical_square_tiling, optimal_tiling_schedule, untiled_schedule};
use crate::schedule::Schedule;
use crate::simulate::{measure, CachePolicy};

/// Measured result for one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Human-readable schedule label.
    pub label: String,
    /// Words moved between slow and fast memory.
    pub words: u64,
    /// Ratio to the Theorem-2 lower bound.
    pub ratio_to_lower_bound: f64,
}

/// The full comparison for one problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleComparison {
    /// The Theorem-2 communication lower bound, in words.
    pub lower_bound_words: f64,
    /// Results for each schedule, in the order untiled / classical / optimal.
    pub results: Vec<ScheduleResult>,
}

impl ScheduleComparison {
    /// The untiled result.
    pub fn untiled(&self) -> &ScheduleResult {
        &self.results[0]
    }

    /// The clamped classical square tiling result.
    pub fn classical(&self) -> &ScheduleResult {
        &self.results[1]
    }

    /// The arbitrary-bound optimal tiling result.
    pub fn optimal(&self) -> &ScheduleResult {
        &self.results[2]
    }
}

/// Measures the three standard schedules for `nest` on a cache of
/// `cache_size` words under the given replacement policy.
pub fn compare_schedules(
    nest: &LoopNest,
    cache_size: u64,
    policy: CachePolicy,
) -> ScheduleComparison {
    let lb = communication_lower_bound(nest, cache_size).words;
    compare_schedules_with_bound(nest, cache_size, policy, lb)
}

/// [`compare_schedules`] with the Theorem-2 lower bound supplied by the
/// caller — for engine-session workflows
/// (`projtile_core::engine::Engine`) that already hold the bound from a
/// `LowerBound` query and should not pay for a recomputation.
pub fn compare_schedules_with_bound(
    nest: &LoopNest,
    cache_size: u64,
    policy: CachePolicy,
    lower_bound_words: f64,
) -> ScheduleComparison {
    let lb = lower_bound_words;

    let untiled = untiled_schedule(nest);
    let mut classical = classical_square_tiling(nest, cache_size);
    classical.shrink_to_fit(1.0);
    let classical_schedule = Schedule::from_tiling(&classical);
    let (_, optimal_schedule) = optimal_tiling_schedule(nest, cache_size);

    let run = |label: &str, schedule: &Schedule| {
        let m = measure(nest, schedule, cache_size, policy);
        ScheduleResult {
            label: label.to_string(),
            words: m.words_transferred(),
            ratio_to_lower_bound: if lb > 0.0 {
                m.words_transferred() as f64 / lb
            } else {
                f64::INFINITY
            },
        }
    };

    ScheduleComparison {
        lower_bound_words: lb,
        results: vec![
            run("untiled", &untiled),
            run("classical-square", &classical_schedule),
            run("optimal-arbitrary-bound", &optimal_schedule),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_loopnest::builders;

    #[test]
    fn comparison_has_three_results_in_order() {
        let nest = builders::matmul(16, 16, 16);
        let cmp = compare_schedules(&nest, 128, CachePolicy::Lru);
        assert_eq!(cmp.results.len(), 3);
        assert_eq!(cmp.untiled().label, "untiled");
        assert_eq!(cmp.classical().label, "classical-square");
        assert_eq!(cmp.optimal().label, "optimal-arbitrary-bound");
        assert!(cmp.lower_bound_words > 0.0);
    }

    #[test]
    fn supplied_bound_comparison_matches_recomputed_bound() {
        let nest = builders::matmul(16, 16, 16);
        let full = compare_schedules(&nest, 128, CachePolicy::Lru);
        let with_bound =
            compare_schedules_with_bound(&nest, 128, CachePolicy::Lru, full.lower_bound_words);
        assert_eq!(full, with_bound);
    }

    #[test]
    fn optimal_tiling_is_close_to_lower_bound_and_untiled_is_not() {
        // Matmul with data much larger than the cache: the optimal tiling
        // stays within a small constant of the lower bound while the untiled
        // order exceeds it by a large factor.
        let nest = builders::matmul(32, 32, 32);
        let cmp = compare_schedules(&nest, 128, CachePolicy::Lru);
        assert!(
            cmp.optimal().ratio_to_lower_bound < 6.0,
            "optimal ratio {}",
            cmp.optimal().ratio_to_lower_bound
        );
        assert!(
            cmp.untiled().ratio_to_lower_bound > 2.0 * cmp.optimal().ratio_to_lower_bound,
            "untiled ratio {} vs optimal {}",
            cmp.untiled().ratio_to_lower_bound,
            cmp.optimal().ratio_to_lower_bound
        );
    }

    #[test]
    fn matvec_all_schedules_bounded_below_by_matrix_size() {
        // For matrix-vector multiplication every schedule must read the matrix
        // at least once; the lower bound equals that size.
        let nest = builders::matvec(64, 64);
        let cmp = compare_schedules(&nest, 256, CachePolicy::Lru);
        assert!((cmp.lower_bound_words - 4096.0).abs() < 1e-6);
        for r in &cmp.results {
            assert!(r.words >= 4096, "{}: {}", r.label, r.words);
        }
    }

    #[test]
    fn ideal_policy_comparison_is_consistent() {
        let nest = builders::matmul(12, 12, 12);
        let lru = compare_schedules(&nest, 64, CachePolicy::Lru);
        let opt = compare_schedules(&nest, 64, CachePolicy::Ideal);
        for (l, o) in lru.results.iter().zip(&opt.results) {
            assert!(
                o.words <= l.words,
                "{}: ideal {} > lru {}",
                l.label,
                o.words,
                l.words
            );
        }
    }
}
