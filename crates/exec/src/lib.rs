//! Execution schedules and measured communication.
//!
//! The theory in `projtile-core` predicts how many words a blocked execution
//! of a projective loop nest must move between a cache of `M` words and slow
//! memory. This crate closes the loop by *running* schedules against the
//! simulators in `projtile-cachesim`:
//!
//! * [`schedule`] — execution orders: plain (untiled) loop nests with a chosen
//!   loop order, and tile-by-tile orders derived from a
//!   [`projtile_core::Tiling`];
//! * [`simulate`] — turns a schedule into its word-address stream (via
//!   [`projtile_loopnest::layout::AddressMap`]) and feeds it to an LRU,
//!   set-associative, or ideal cache, returning the measured traffic;
//! * [`baseline`] — the comparison schedules used by the experiments: the
//!   untiled loop nest, the classical large-bound square tiling (which is
//!   infeasible/suboptimal when bounds are small — the situation the paper
//!   fixes), and the paper's arbitrary-bound optimal tiling;
//! * [`comparison`] — a summary struct tying measured traffic to the analytic
//!   model and the Theorem-2 lower bound for reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod comparison;
pub mod schedule;
pub mod simulate;

pub use baseline::{classical_square_tiling, optimal_tiling_schedule, untiled_schedule};
pub use comparison::{
    compare_schedules, compare_schedules_with_bound, ScheduleComparison, ScheduleResult,
};
pub use schedule::Schedule;
pub use simulate::{measure, CachePolicy, Measurement};
