//! Measuring the communication of a schedule on the cache simulators.

use projtile_cachesim::{ideal, simulate, CacheStats, LruCache, SetAssociativeCache};
use projtile_loopnest::layout::AddressMap;
use projtile_loopnest::LoopNest;

use crate::schedule::Schedule;

/// Replacement policy to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Fully associative least-recently-used.
    Lru,
    /// Belady's offline optimal policy (materializes the trace first; use only
    /// for small instances).
    Ideal,
    /// Set-associative LRU with the given number of ways.
    SetAssociative {
        /// Ways per set.
        ways: usize,
    },
}

/// Result of measuring one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// Which policy produced the numbers.
    pub policy: CachePolicy,
    /// Cache capacity in words.
    pub cache_size: u64,
    /// Raw simulator counters.
    pub stats: CacheStats,
}

impl Measurement {
    /// Words moved between slow and fast memory.
    pub fn words_transferred(&self) -> u64 {
        self.stats.words_transferred()
    }
}

/// Runs `schedule` over `nest` against a cache of `cache_size` words with the
/// given replacement policy, and returns the measured traffic.
///
/// Every iteration point touches one element of each array (read or update —
/// the model does not distinguish them), so the address stream has
/// `n · ∏ L_i` entries. The stream is generated lazily for the online
/// policies; the ideal policy materializes it, so keep instances small there.
pub fn measure(
    nest: &LoopNest,
    schedule: &Schedule,
    cache_size: u64,
    policy: CachePolicy,
) -> Measurement {
    assert!(cache_size >= 1, "cache must hold at least one word");
    let map = AddressMap::new(nest);
    let map_ref = &map;
    let addresses = schedule.points(nest).flat_map(move |point| {
        (0..map_ref.num_arrays())
            .map(|j| map_ref.address(j, &point))
            .collect::<Vec<_>>()
    });

    let stats = match policy {
        CachePolicy::Lru => {
            let mut cache = LruCache::new(cache_size as usize);
            simulate(&mut cache, addresses)
        }
        CachePolicy::SetAssociative { ways } => {
            let mut cache = SetAssociativeCache::with_capacity(cache_size as usize, ways);
            simulate(&mut cache, addresses)
        }
        CachePolicy::Ideal => {
            let trace: Vec<u64> = addresses.collect();
            ideal::simulate_ideal(&trace, cache_size as usize)
        }
    };
    Measurement {
        policy,
        cache_size,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use projtile_core::optimal_tiling;
    use projtile_loopnest::builders;

    #[test]
    fn access_count_is_points_times_arrays() {
        let nest = builders::matmul(4, 5, 6);
        let m = measure(&nest, &Schedule::untiled(&nest), 16, CachePolicy::Lru);
        assert_eq!(m.stats.accesses, 3 * 4 * 5 * 6);
    }

    #[test]
    fn misses_at_least_compulsory_and_at_most_accesses() {
        let nest = builders::matmul(8, 8, 8);
        for policy in [
            CachePolicy::Lru,
            CachePolicy::Ideal,
            CachePolicy::SetAssociative { ways: 4 },
        ] {
            let m = measure(&nest, &Schedule::untiled(&nest), 64, policy);
            let distinct_words = nest.total_data_size() as u64;
            assert!(m.words_transferred() >= distinct_words, "{policy:?}");
            assert!(m.words_transferred() <= m.stats.accesses, "{policy:?}");
        }
    }

    #[test]
    fn huge_cache_only_pays_compulsory_misses() {
        let nest = builders::matmul(8, 8, 8);
        let m = measure(&nest, &Schedule::untiled(&nest), 10_000, CachePolicy::Lru);
        assert_eq!(m.words_transferred(), nest.total_data_size() as u64);
    }

    #[test]
    fn tiled_schedule_beats_untiled_on_lru() {
        // Matmul large enough that the untiled order thrashes but an optimal
        // tile reuses well.
        let nest = builders::matmul(32, 32, 32);
        let cache = 256u64;
        let mut tiling = optimal_tiling(&nest, cache);
        // The LP sizes each array footprint to M; for a real cache of exactly
        // M words shrink until the *total* footprint fits (constant factor).
        tiling.shrink_to_fit(1.0);
        let tiled = measure(
            &nest,
            &Schedule::from_tiling(&tiling),
            cache,
            CachePolicy::Lru,
        );
        let untiled = measure(&nest, &Schedule::untiled(&nest), cache, CachePolicy::Lru);
        assert!(
            tiled.words_transferred() < untiled.words_transferred(),
            "tiled {} vs untiled {}",
            tiled.words_transferred(),
            untiled.words_transferred()
        );
    }

    #[test]
    fn ideal_never_worse_than_lru_on_same_schedule() {
        let nest = builders::matmul(12, 12, 12);
        let sched = Schedule::untiled(&nest);
        let lru = measure(&nest, &sched, 64, CachePolicy::Lru);
        let opt = measure(&nest, &sched, 64, CachePolicy::Ideal);
        assert!(opt.words_transferred() <= lru.words_transferred());
    }

    #[test]
    fn measured_traffic_respects_theorem_2_lower_bound() {
        // No schedule and no replacement policy can beat the lower bound
        // (up to the paper's convention of counting the first load of each
        // word, which the bound also counts).
        let cache = 64u64;
        for nest in [
            builders::matmul(16, 16, 16),
            builders::matmul(16, 16, 2),
            builders::nbody(32, 64),
        ] {
            let lb = projtile_core::communication_lower_bound(&nest, cache).words;
            let tiling = optimal_tiling(&nest, cache);
            let measured = measure(
                &nest,
                &Schedule::from_tiling(&tiling),
                cache,
                CachePolicy::Ideal,
            );
            // The ideal-cache measured traffic of the optimal schedule is at
            // least (a constant fraction of) the lower bound; because the
            // bound ignores constant factors we only check the weak direction
            // needed for soundness: measured >= lb / #arrays.
            let floor = lb / nest.num_arrays() as f64;
            assert!(
                measured.words_transferred() as f64 >= floor * 0.99,
                "{nest}: measured {} < floor {floor}",
                measured.words_transferred()
            );
        }
    }
}
