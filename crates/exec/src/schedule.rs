//! Execution schedules: orders in which the iteration points of a loop nest
//! are visited.

use projtile_core::Tiling;
use projtile_loopnest::iteration::{tile_domain, tile_origins, Domain};
use projtile_loopnest::LoopNest;

/// An execution order for a loop nest.
#[derive(Debug, Clone)]
pub enum Schedule {
    /// The written-out loop nest with an explicit loop order
    /// (outermost-to-innermost permutation of the loop axes).
    Untiled {
        /// Loop order; `order[0]` is the outermost loop.
        order: Vec<usize>,
    },
    /// Tile-by-tile execution: visit tiles in row-major order of their
    /// origins, and the points of each tile in row-major order.
    Tiled {
        /// Tile edge lengths `b_1, ..., b_d`.
        tile: Vec<u64>,
    },
}

impl Schedule {
    /// The natural untiled schedule (loops in declaration order).
    pub fn untiled(nest: &LoopNest) -> Schedule {
        Schedule::Untiled {
            order: (0..nest.num_loops()).collect(),
        }
    }

    /// An untiled schedule with an explicit loop order.
    pub fn untiled_with_order(order: Vec<usize>) -> Schedule {
        Schedule::Untiled { order }
    }

    /// A tiled schedule from explicit tile edge lengths.
    pub fn tiled(tile: Vec<u64>) -> Schedule {
        Schedule::Tiled { tile }
    }

    /// A tiled schedule from a [`Tiling`] produced by `projtile-core`.
    pub fn from_tiling(tiling: &Tiling) -> Schedule {
        Schedule::Tiled {
            tile: tiling.tile_dims().to_vec(),
        }
    }

    /// A short human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            Schedule::Untiled { order } => format!("untiled(order={order:?})"),
            Schedule::Tiled { tile } => format!("tiled({tile:?})"),
        }
    }

    /// Total number of iteration points the schedule visits (always the full
    /// iteration space — schedules reorder, they never skip).
    pub fn num_points(&self, nest: &LoopNest) -> u128 {
        nest.iteration_space_size()
    }

    /// Iterates the iteration points of `nest` in this schedule's order.
    pub fn points<'a>(&'a self, nest: &'a LoopNest) -> Box<dyn Iterator<Item = Vec<u64>> + 'a> {
        let bounds = nest.bounds();
        match self {
            Schedule::Untiled { order } => Box::new(Domain::full(&bounds).points_with_order(order)),
            Schedule::Tiled { tile } => {
                let tile = tile.clone();
                Box::new(
                    tile_origins(&bounds, &tile)
                        .flat_map(move |origin| tile_domain(&bounds, &tile, &origin).points()),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_loopnest::builders;
    use std::collections::HashSet;

    #[test]
    fn untiled_visits_every_point_once() {
        let nest = builders::matmul(3, 4, 5);
        let sched = Schedule::untiled(&nest);
        let pts: Vec<_> = sched.points(&nest).collect();
        assert_eq!(pts.len() as u128, nest.iteration_space_size());
        let distinct: HashSet<_> = pts.iter().cloned().collect();
        assert_eq!(distinct.len(), pts.len());
    }

    #[test]
    fn tiled_visits_every_point_once() {
        let nest = builders::matmul(5, 7, 3);
        let sched = Schedule::tiled(vec![2, 3, 2]);
        let pts: Vec<_> = sched.points(&nest).collect();
        assert_eq!(pts.len() as u128, nest.iteration_space_size());
        let distinct: HashSet<_> = pts.iter().cloned().collect();
        assert_eq!(distinct.len(), pts.len());
    }

    #[test]
    fn untiled_order_changes_sequence_not_coverage() {
        let nest = builders::nbody(3, 4);
        let a: Vec<_> = Schedule::untiled(&nest).points(&nest).collect();
        let b: Vec<_> = Schedule::untiled_with_order(vec![1, 0])
            .points(&nest)
            .collect();
        assert_ne!(a, b);
        let sa: HashSet<_> = a.into_iter().collect();
        let sb: HashSet<_> = b.into_iter().collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn tiled_schedule_groups_points_by_tile() {
        // With a 2x2 tile over a 4x4 space, the first 4 points all lie in the
        // first tile.
        let nest = builders::nbody(4, 4);
        let sched = Schedule::tiled(vec![2, 2]);
        let pts: Vec<_> = sched.points(&nest).take(4).collect();
        assert!(pts.iter().all(|p| p[0] < 2 && p[1] < 2));
    }

    #[test]
    fn from_tiling_uses_tile_dims() {
        let nest = builders::matmul(1 << 5, 1 << 5, 1 << 5);
        let tiling = projtile_core::optimal_tiling(&nest, 1 << 8);
        let sched = Schedule::from_tiling(&tiling);
        match &sched {
            Schedule::Tiled { tile } => assert_eq!(tile.as_slice(), tiling.tile_dims()),
            _ => panic!("expected tiled schedule"),
        }
        assert!(sched.label().starts_with("tiled"));
        assert_eq!(sched.num_points(&nest), nest.iteration_space_size());
    }
}
