//! Baseline and optimal schedules used by the experiments.
//!
//! The paper's motivation (§1) is that (a) untiled loop nests communicate far
//! more than necessary, and (b) the *classical* large-bound tiling — a
//! `√(M/n) × ... × √(M/n)` cube — is infeasible or suboptimal when some loop
//! bound is small (the matrix-vector case). The experiment harness therefore
//! compares three schedules:
//!
//! 1. [`untiled_schedule`] — the loop nest as written;
//! 2. [`classical_square_tiling`] — the large-bound tile with every edge set
//!    to `⌊(M/n)^{1/k_HBL}⌋`-style equal sizing (clamped to the loop bounds,
//!    which is exactly the ad-hoc fix the paper improves upon);
//! 3. [`optimal_tiling_schedule`] — the arbitrary-bound optimal tiling of
//!    LP (5.1), shrunk so its *total* footprint fits the simulated cache.

use projtile_core::{optimal_tiling, Tiling};
use projtile_loopnest::LoopNest;

use crate::schedule::Schedule;

/// The loop nest in its written order (no tiling at all).
pub fn untiled_schedule(nest: &LoopNest) -> Schedule {
    Schedule::untiled(nest)
}

/// The classical large-bound square tiling: every tile edge equal, sized so
/// that each array footprint is about `M` words — ignoring the loop bounds,
/// then clamping. This is the §3 construction that stops being optimal when
/// bounds are small.
pub fn classical_square_tiling(nest: &LoopNest, cache_size: u64) -> Tiling {
    // Edge length b with b^w <= M where w is the largest support size, so the
    // biggest array footprint fits in M.
    let widest = (0..nest.num_arrays())
        .map(|j| nest.support(j).len())
        .max()
        .unwrap_or(1)
        .max(1);
    let edge = (cache_size as f64)
        .powf(1.0 / widest as f64)
        .floor()
        .max(1.0) as u64;
    let tile = vec![edge; nest.num_loops()];
    Tiling::new(nest.clone(), cache_size, tile, None)
}

/// The paper's optimal tiling, shrunk so the *total* per-tile footprint fits
/// in the simulated cache (the LP guarantees each array footprint is at most
/// `M`; a real cache of exactly `M` words needs the sum to fit).
pub fn optimal_tiling_schedule(nest: &LoopNest, cache_size: u64) -> (Tiling, Schedule) {
    let mut tiling = optimal_tiling(nest, cache_size);
    tiling.shrink_to_fit(1.0);
    let schedule = Schedule::from_tiling(&tiling);
    (tiling, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{measure, CachePolicy};
    use projtile_loopnest::builders;

    #[test]
    fn classical_tile_is_square_and_clamped() {
        let nest = builders::matmul(1 << 8, 1 << 8, 1 << 8);
        let t = classical_square_tiling(&nest, 1 << 10);
        assert_eq!(t.tile_dims(), &[32, 32, 32]);
        // Small L3: the classical tile no longer fits in that dimension and
        // gets clamped — exactly the situation described in §1.
        let small = builders::matmul(1 << 8, 1 << 8, 4);
        let t = classical_square_tiling(&small, 1 << 10);
        assert_eq!(t.tile_dims(), &[32, 32, 4]);
    }

    #[test]
    fn optimal_schedule_fits_cache_and_covers_space() {
        for nest in [
            builders::matmul(1 << 5, 1 << 5, 1 << 2),
            builders::matvec(1 << 6, 1 << 6),
            builders::nbody(1 << 4, 1 << 7),
        ] {
            let (tiling, schedule) = optimal_tiling_schedule(&nest, 256);
            assert!(tiling.fits_in_cache(1.0), "{nest}");
            assert_eq!(schedule.num_points(&nest), nest.iteration_space_size());
        }
    }

    #[test]
    fn classical_tile_is_infeasible_when_a_bound_is_small() {
        // The headline motivation of §1: the classical √M-cube does not fit
        // inside the iteration space when L3 < √M (it must be clamped by
        // hand), while the arbitrary-bound optimal tile is feasible by
        // construction and stays within a small constant of the lower bound.
        let nest = builders::matmul(1 << 6, 1 << 6, 2);
        let cache = 1u64 << 10;
        let classical_edge = ((cache as f64).sqrt()) as u64;
        assert!(
            classical_edge > nest.bounds()[2],
            "classical tile exceeds L3"
        );

        let (tiling, _) = optimal_tiling_schedule(&nest, cache);
        assert!(tiling
            .tile_dims()
            .iter()
            .zip(nest.bounds())
            .all(|(&b, l)| b <= l));
        let model = tiling.communication_model();
        assert!(
            model.ratio_to_lower_bound < 4.0,
            "optimal tiling ratio {}",
            model.ratio_to_lower_bound
        );
    }

    #[test]
    fn optimal_not_worse_than_classical_measured() {
        // Measured on an LRU cache the optimal tiling never does meaningfully
        // worse than the clamped classical square tile (it usually ties or
        // wins; the large wins are against the untiled order, tested in
        // `simulate`).
        let nest = builders::matmul(1 << 5, 1 << 5, 2);
        let cache = 256u64;
        let (_, opt_sched) = optimal_tiling_schedule(&nest, cache);
        let mut classical = classical_square_tiling(&nest, cache);
        classical.shrink_to_fit(1.0);
        let opt = measure(&nest, &opt_sched, cache, CachePolicy::Lru);
        let cls = measure(
            &nest,
            &Schedule::from_tiling(&classical),
            cache,
            CachePolicy::Lru,
        );
        assert!(
            (opt.words_transferred() as f64) <= 1.1 * cls.words_transferred() as f64,
            "optimal {} vs classical {}",
            opt.words_transferred(),
            cls.words_transferred()
        );
    }

    #[test]
    fn untiled_schedule_is_the_identity_order() {
        let nest = builders::matmul(2, 2, 2);
        match untiled_schedule(&nest) {
            Schedule::Untiled { order } => assert_eq!(order, vec![0, 1, 2]),
            _ => panic!("expected untiled"),
        }
    }
}
