//! The lab's keystone differential: replaying a recorded trace through the
//! exact-LRU simulator at the live budgets must reproduce the live
//! `SharedEngine` hit/miss accounting **event for event** — under eviction
//! pressure, across every generated traffic pattern, and through the
//! awkward cases (duplicate literals, permuted-axes surface twins, invalid
//! queries, failed computations). Also pins the refusal paths: traces a
//! cold simulation cannot possibly reproduce (warm fronts, overflowed
//! recorders) must be rejected, not silently mis-replayed.

use projtile_core::engine::{
    outcome, EngineConfig, Query, SharedEngine, TraceDocument, TraceEvent, TRACE_VERSION,
};
use projtile_lab::replay::{check_live, replay_document, Budgets, ReplayError};
use projtile_lab::{GeneratorConfig, LabReport, Pattern, PolicyKind, Workload};
use projtile_loopnest::builders;

/// Budgets tiny enough that nearly every insertion evicts something, so the
/// differential exercises the eviction order, not just residency.
fn tiny_config() -> EngineConfig {
    EngineConfig {
        results_capacity: 700,
        betas_capacity: 200,
        slices_capacity: 900,
        surfaces_capacity: 2000,
    }
}

/// A cold 4-shard front with a recorder attached from the start.
fn traced_front(trace_capacity: usize) -> SharedEngine {
    let mut front = SharedEngine::with_config(tiny_config(), 4);
    front.set_trace_capacity(trace_capacity);
    front
}

/// Drives `workload` into a cold traced front and checks the recorded
/// trace replays exactly — as drained, and after a JSON round trip.
fn assert_replays_exactly(workload: &Workload, what: &str) {
    let front = traced_front(1 << 16);
    workload.drive_shared(&front);
    let doc = front.trace_document();
    let stats = front.stats();
    assert_eq!(doc.hits, stats.hits, "{what}: trace window covers all hits");
    assert_eq!(doc.misses, stats.misses, "{what}: and all misses");

    let report = match check_live(&doc) {
        Ok(report) => report,
        Err(e) => panic!("{what}: {e}"),
    };
    assert!(report.matches_live);
    assert_eq!(report.sim_hits, stats.hits, "{what}: simulated hits");
    assert_eq!(report.sim_misses, stats.misses, "{what}: simulated misses");
    assert_eq!(report.mismatch_count, 0, "{what}: no event diverged");

    let parsed = TraceDocument::from_json(&doc.to_json()).expect("trace JSON round-trips");
    assert_eq!(parsed, doc, "{what}: serialization is lossless");
    check_live(&parsed).unwrap_or_else(|e| panic!("{what} (after round trip): {e}"));
}

#[test]
fn generated_workloads_replay_exactly() {
    for pattern in [Pattern::Zipf, Pattern::Hotspot, Pattern::Mixed] {
        for seed in [1, 5, 42] {
            let config = GeneratorConfig {
                seed,
                pattern,
                batches: 40,
                batch_size: 6,
            };
            let workload = Workload::generate(&config);
            assert_replays_exactly(
                &workload,
                &format!("pattern {} seed {seed}", pattern.name()),
            );
        }
    }
}

/// Handcrafted batches hitting every subtle path at once: duplicate
/// literals of a pending miss, a permuted-axes surface twin answered as a
/// hit in the same batch it was computed, an invalid query rejected before
/// any cache, and a tightness query recomposed from component artifacts.
#[test]
fn handcrafted_awkward_batches_replay_exactly() {
    let m = 1 << 9;
    let nest = builders::matmul(64, 64, 64);
    let surface = Query::Surface {
        cache_size: m,
        axes: vec![0, 2],
        lo_bounds: vec![1, 1],
        hi_bounds: vec![4, 3],
    };
    let twin = Query::Surface {
        cache_size: m,
        axes: vec![2, 0],
        lo_bounds: vec![1, 1],
        hi_bounds: vec![3, 4],
    };
    let front = traced_front(1 << 16);
    // Batch 1: a miss, its duplicate literal, and its canonical twin.
    let answers = front.analyze_batch(&nest, &[surface.clone(), surface.clone(), twin.clone()]);
    assert!(answers.iter().all(Result::is_ok));
    // Batch 2: the twin again — now a plain hit; plus an invalid query
    // (cache budget below the minimum), rejected before any cache.
    let answers = front.analyze_batch(&nest, &[twin, Query::LowerBound { cache_size: 1 }]);
    assert!(answers[0].is_ok() && answers[1].is_err());
    // Batch 3: tightness computes all five artifacts...
    front
        .analyze_batch(&nest, &[Query::Tightness { cache_size: m }])
        .pop()
        .expect("one answer")
        .expect("tightness computes");
    // ...then its components hit, and tightness itself hits via its report.
    let answers = front.analyze_batch(
        &nest,
        &[
            Query::LowerBound { cache_size: m },
            Query::OptimalTiling { cache_size: m },
            Query::Tightness { cache_size: m },
        ],
    );
    assert!(answers.iter().all(Result::is_ok));

    let doc = front.trace_document();
    let stats = front.stats();
    let report = check_live(&doc).unwrap_or_else(|e| panic!("awkward batches: {e}"));
    assert_eq!(report.sim_hits, stats.hits);
    assert_eq!(report.sim_misses, stats.misses);
    assert!(report.sim_duplicates > 0, "duplicate literal was recorded");
    assert_eq!(doc.queries, stats.queries, "invalid queries still counted");
    assert!(
        doc.events.len() < stats.queries as usize,
        "invalid queries never become events"
    );
}

/// Failed computations can't be provoked through the public API (validation
/// catches everything expressible), so their replay semantics are pinned
/// against a synthetic document: a failure is a miss that installs nothing,
/// and a single-query failure doesn't even intern the orientation.
#[test]
fn failed_computations_replay_as_non_installing_misses() {
    let fam = 0xFEED_u64;
    let ev = |ordinal: u64, batch: u64, kind: u8, oc: u8, costs: Vec<u64>| TraceEvent {
        ordinal,
        batch,
        sig: 7,
        orient: 21,
        kind,
        m: 1 << 10,
        lhash: 1000 + ordinal,
        fam,
        outcome: oc,
        costs,
    };
    let doc = TraceDocument {
        version: TRACE_VERSION,
        num_shards: 1,
        shard_config: EngineConfig::default(),
        queries: 5,
        hits: 1,
        misses: 4,
        dropped: 0,
        warm_entries: 0,
        events: vec![
            // A single-query failure: miss, no install, no intern — so the
            // next batch still starts from a never-seen orientation.
            ev(0, 0, 0, outcome::FAILED_NO_INTERN, vec![]),
            // The real computation: a miss that installs.
            ev(1, 1, 0, outcome::MISS, vec![200]),
            // Now resident: a hit.
            ev(2, 2, 0, outcome::HIT, vec![]),
            // A batch-member failure on another kind: miss, no install...
            ev(3, 3, 1, outcome::FAILED, vec![]),
            // ...so the retry misses again rather than hitting.
            ev(4, 4, 1, outcome::MISS, vec![150]),
        ],
    };
    let report = check_live(&doc).expect("synthetic failure trace replays exactly");
    assert_eq!((report.sim_hits, report.sim_misses), (1, 4));
}

#[test]
fn eviction_pressure_stays_exact() {
    // Two seeds of sustained mixed traffic against the tiny budgets: the
    // differential only stays exact if the simulated eviction order matches
    // the live `BoundedLru` decision for every install.
    for seed in [9, 77] {
        let workload = Workload::generate(&GeneratorConfig {
            seed,
            pattern: Pattern::Mixed,
            batches: 120,
            batch_size: 5,
        });
        let front = traced_front(1 << 16);
        workload.drive_shared(&front);
        let doc = front.trace_document();
        let report = check_live(&doc).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            report.evictions() > 0,
            "seed {seed}: tiny budgets must evict for this test to mean anything"
        );
    }
}

#[test]
fn warm_front_traces_are_refused() {
    let workload = Workload::generate(&GeneratorConfig {
        seed: 3,
        pattern: Pattern::Zipf,
        batches: 10,
        batch_size: 4,
    });
    let mut front = traced_front(1 << 16);
    workload.drive_shared(&front);
    // Re-attaching the recorder now observes a warm front.
    front.set_trace_capacity(1 << 16);
    workload.drive_shared(&front);
    let doc = front.trace_document();
    assert!(doc.warm_entries > 0);
    match check_live(&doc) {
        Err(ReplayError::WarmTrace(n)) => assert_eq!(n, doc.warm_entries),
        other => panic!("expected a warm-trace refusal, got {other:?}"),
    }
}

#[test]
fn overflowed_recorders_are_refused() {
    let workload = Workload::generate(&GeneratorConfig {
        seed: 4,
        pattern: Pattern::Zipf,
        batches: 20,
        batch_size: 4,
    });
    let front = traced_front(4);
    workload.drive_shared(&front);
    let doc = front.trace_document();
    assert!(doc.dropped > 0);
    match check_live(&doc) {
        Err(ReplayError::DroppedEvents(n)) => assert_eq!(n, doc.dropped),
        other => panic!("expected a dropped-events refusal, got {other:?}"),
    }
}

/// Counterfactual replays must stay internally consistent even when they
/// legitimately diverge from the recording: every event is classified, and
/// shrinking the budget can only lose hits.
#[test]
fn counterfactual_policies_are_consistent() {
    let workload = Workload::generate(&GeneratorConfig {
        seed: 42,
        pattern: Pattern::Mixed,
        batches: 60,
        batch_size: 6,
    });
    let front = traced_front(1 << 16);
    workload.drive_shared(&front);
    let doc = front.trace_document();
    let budgets = Budgets::from_document(&doc);

    for policy in PolicyKind::CANDIDATES {
        let report = replay_document(&doc, policy, budgets);
        assert_eq!(
            report.sim_hits + report.sim_misses + report.sim_duplicates,
            doc.events.len() as u64,
            "{}: every event classified",
            report.policy
        );
        assert_eq!(
            report.unpriced_installs, 0,
            "{}: cost book is complete",
            report.policy
        );
    }

    let quarter = replay_document(&doc, PolicyKind::Lru, budgets.scaled(1, 4));
    let full = replay_document(&doc, PolicyKind::Lru, budgets);
    let quadruple = replay_document(&doc, PolicyKind::Lru, budgets.scaled(4, 1));
    assert!(
        quarter.sim_hits <= full.sim_hits,
        "smaller budget, fewer hits"
    );
    assert!(
        full.sim_hits <= quadruple.sim_hits,
        "larger budget, more hits"
    );
    assert!(full.matches_live, "recorded budget reproduces live");

    // The study over this trace names a policy and a budget.
    let study = LabReport::build(&doc);
    assert_eq!(study.policies.len(), PolicyKind::CANDIDATES.len());
    let rendered = projtile_lab::render_report(&study);
    assert!(rendered.contains("policy comparison"));
    assert!(rendered.contains("budget sweep"));
    assert!(rendered.contains("recommend"));
}
