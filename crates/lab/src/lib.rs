//! Trace-driven cache policy lab for the projtile analysis service.
//!
//! The service's memo caches (`projtile_cachesim::BoundedLru` behind the
//! sharded `SharedEngine` front) retain whatever a cost budget allows under
//! exact LRU. Whether those budgets — and that policy — are *right* for real
//! traffic is an empirical question. This crate answers it with the classic
//! systems workflow:
//!
//! 1. **Record** ([`projtile_core::engine::TraceRecorder`], wired by
//!    `projtile-serve --trace-capacity`): the live front appends one compact
//!    hashed event per query — shard routing key, cache-canonical identity,
//!    install costs, and how the front resolved it.
//! 2. **Replay** ([`replay`]): the drained
//!    [`projtile_core::engine::TraceDocument`] is pushed through simulated
//!    cache hierarchies. The [`policy::LruPolicy`] simulator mirrors the live
//!    `BoundedLru` exactly — replaying a cold-start trace at the recorded
//!    budgets reproduces the live hit/miss accounting **event for event**
//!    ([`replay::check_live`], the keystone differential pinned by this
//!    crate's tests and the repository's CI smoke stage). Candidate policies
//!    (TTL, cost-aware admission, segmented 2Q) then answer "what would the
//!    hit rate have been?" counterfactually.
//! 3. **Generate** ([`generate`]): a deterministic seeded workload generator
//!    (zipf / hotspot / mixed patterns over the paper's nest corpus) drives
//!    either an in-process front or a live server through the service
//!    client, so policy experiments and service benchmarks never depend on
//!    production traffic being available.
//! 4. **Report** ([`report`]): policy comparison and LRU budget-sweep tables
//!    with a concrete policy/budget recommendation.
//!
//! The `projtile-lab` binary packages the workflow as `drive` / `drain` /
//! `replay` / `generate` subcommands; see `docs/tracing.md` for the
//! end-to-end operational recipe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod policy;
pub mod replay;
pub mod report;

pub use generate::{DriveStats, GeneratorConfig, Pattern, Workload};
pub use policy::{PolicyCache, PolicyKind, SimCacheStats};
pub use replay::{check_live, replay_document, Budgets, EventClass, ReplayError, ReplayReport};
pub use report::{budget_sweep, compare_policies, render_report, LabReport};
