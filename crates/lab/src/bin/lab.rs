//! `projtile-lab` — the trace-driven cache policy lab CLI.
//!
//! ```text
//! projtile-lab drive ADDR [--seed N] [--pattern zipf|hotspot|mixed]
//!                         [--batches N] [--batch-size N]
//! projtile-lab drain ADDR [--out FILE]
//! projtile-lab replay FILE [--check-live]
//! projtile-lab generate [--seed N] [--pattern P] [--batches N]
//!                       [--batch-size N] [--trace-capacity N]
//! ```
//!
//! `drive` pushes a deterministic generated workload at a live server
//! through the retrying client; `drain` fetches the server's recorded trace
//! (`GET /trace`) to a file; `replay` runs the policy/budget study over a
//! drained trace, and with `--check-live` first insists the exact-LRU
//! replay reproduces the live hit/miss accounting event for event (exit 1
//! on divergence). `generate` is the self-contained demo: it records,
//! drains, differentials and reports entirely in process against small
//! budgets, no server needed.

use std::process::ExitCode;

use projtile_core::engine::{EngineConfig, SharedEngine, TraceDocument};
use projtile_lab::{check_live, GeneratorConfig, LabReport, Pattern, Workload};
use projtile_service::{Client, RetryConfig};

const USAGE: &str = "usage: projtile-lab drive ADDR [--seed N] [--pattern zipf|hotspot|mixed] [--batches N] [--batch-size N]
       projtile-lab drain ADDR [--out FILE]
       projtile-lab replay FILE [--check-live]
       projtile-lab generate [--seed N] [--pattern P] [--batches N] [--batch-size N] [--trace-capacity N]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("projtile-lab: {message}");
    ExitCode::FAILURE
}

fn parse_u64(flag: &str, value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects an unsigned integer, got {value:?}"))
}

/// Folds `--seed/--pattern/--batches/--batch-size` flags into a generator
/// config; unrecognized flags are returned as an error.
fn generator_flags(args: &[String], config: &mut GeneratorConfig) -> Result<Vec<String>, String> {
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match flag.as_str() {
            "--seed" => config.seed = parse_u64(flag, &value(flag)?)?,
            "--pattern" => {
                let name = value(flag)?;
                config.pattern = Pattern::parse(&name)
                    .ok_or_else(|| format!("unknown pattern {name:?} (zipf|hotspot|mixed)"))?;
            }
            "--batches" => config.batches = parse_u64(flag, &value(flag)?)? as usize,
            "--batch-size" => config.batch_size = parse_u64(flag, &value(flag)?)?.max(1) as usize,
            _ => rest.push(flag.clone()),
        }
    }
    Ok(rest)
}

fn drive(addr: &str, args: &[String]) -> Result<ExitCode, String> {
    let mut config = GeneratorConfig::default();
    let rest = generator_flags(args, &mut config)?;
    if !rest.is_empty() {
        return Err(format!("unknown flag {:?}", rest[0]));
    }
    let workload = Workload::generate(&config);
    let retry = RetryConfig {
        jitter_seed: config.seed.max(1),
        ..RetryConfig::default()
    };
    let client = Client::with_retry(addr, retry);
    let stats = workload
        .drive_client(&client)
        .map_err(|e| format!("driving {addr}: {e}"))?;
    println!(
        "drove {} batches / {} queries (pattern {}, seed {}): {} answered, {} errors",
        stats.batches,
        stats.queries,
        config.pattern.name(),
        config.seed,
        stats.answered,
        stats.errors
    );
    Ok(ExitCode::SUCCESS)
}

fn drain(addr: &str, args: &[String]) -> Result<ExitCode, String> {
    let out = match args {
        [] => None,
        [flag, path] if flag == "--out" => Some(path.clone()),
        _ => return Err(format!("unknown flags {args:?}")),
    };
    let client = Client::new(addr);
    let doc = client
        .trace()
        .map_err(|e| format!("draining {addr}: {e}"))?;
    let text = serde::json::to_string(&doc);
    match out {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            let parsed = TraceDocument::from_json(&text)
                .map_err(|e| format!("drained trace is not replayable: {e}"))?;
            println!(
                "drained {} events ({} dropped) to {path}",
                parsed.events.len(),
                parsed.dropped
            );
        }
        None => println!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn replay(path: &str, args: &[String]) -> Result<ExitCode, String> {
    let live_check = match args {
        [] => false,
        [flag] if flag == "--check-live" => true,
        _ => return Err(format!("unknown flags {args:?}")),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = TraceDocument::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    if live_check {
        let report = check_live(&doc).map_err(|e| format!("live differential: {e}"))?;
        println!(
            "live differential: OK ({} events, {} hits / {} misses reproduced exactly)",
            report.events, report.sim_hits, report.sim_misses
        );
    }
    let study = LabReport::build(&doc);
    print!("{}", projtile_lab::render_report(&study));
    Ok(ExitCode::SUCCESS)
}

fn generate(args: &[String]) -> Result<ExitCode, String> {
    let mut config = GeneratorConfig::default();
    let mut trace_capacity: usize = 1 << 16;
    let rest = generator_flags(args, &mut config)?;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace-capacity" => {
                let value = it.next().ok_or_else(|| format!("{flag} expects a value"))?;
                trace_capacity = parse_u64(flag, value)?.max(1) as usize;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    // Small budgets on purpose: the demo is only interesting when the
    // policies actually have to evict.
    let budgets = EngineConfig {
        results_capacity: 4096,
        betas_capacity: 1024,
        slices_capacity: 8192,
        surfaces_capacity: 16384,
    };
    let mut shared = SharedEngine::with_config(budgets, 4);
    shared.set_trace_capacity(trace_capacity);
    let workload = Workload::generate(&config);
    let stats = workload.drive_shared(&shared);
    println!(
        "generated {} batches / {} queries (pattern {}, seed {}): {} answered, {} errors",
        stats.batches,
        stats.queries,
        config.pattern.name(),
        config.seed,
        stats.answered,
        stats.errors
    );
    let doc = shared.trace_document();
    let report = check_live(&doc).map_err(|e| format!("live differential: {e}"))?;
    println!(
        "live differential: OK ({} events, {} hits / {} misses reproduced exactly)\n",
        report.events, report.sim_hits, report.sim_misses
    );
    let study = LabReport::build(&doc);
    print!("{}", projtile_lab::render_report(&study));
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.split_first() {
        Some((cmd, rest)) => match (cmd.as_str(), rest.split_first()) {
            ("drive", Some((addr, flags))) => drive(addr, flags),
            ("drain", Some((addr, flags))) => drain(addr, flags),
            ("replay", Some((path, flags))) => replay(path, flags),
            ("generate", _) => generate(rest),
            _ => return usage(),
        },
        None => return usage(),
    };
    match outcome {
        Ok(code) => code,
        Err(message) => fail(message),
    }
}
