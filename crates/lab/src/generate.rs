//! Deterministic seeded query-load generation.
//!
//! A [`Workload`] is a reproducible sequence of `(nest, queries)` batches
//! over a small corpus of the paper's loop nests — the same shapes the
//! benchmark suite exercises — with reference-stream structure chosen by a
//! [`Pattern`]. The generator is a plain xorshift64* stream: the same seed
//! always produces the same workload, on any platform, so recorded traces,
//! replay differentials and service benchmarks are all replayable bit for
//! bit.
//!
//! Workloads drive either an in-process front ([`Workload::drive_shared`])
//! or a live server through the retrying client
//! ([`Workload::drive_client`]); the CI smoke stage uses the latter to
//! record a trace over real HTTP traffic before replaying it.

use projtile_core::engine::{Query, SharedEngine};
use projtile_loopnest::{builders, LoopNest};
use projtile_service::{Client, ClientError};

/// The deterministic xorshift64* stream behind every sampling decision.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// A stream seeded by `seed` (0 is mapped to a fixed nonzero seed).
    pub fn new(seed: u64) -> XorShift {
        XorShift {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A draw uniform in `0..n` (`n` clamped to at least 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// A zipf-ish rank in `0..n`: rank `r` is drawn proportionally to
    /// `1 / (r + 1)` — a few hot items, a long cold tail.
    pub fn zipf(&mut self, n: usize) -> usize {
        let n = n.max(1);
        let weights: f64 = (0..n).map(|r| 1.0 / (r as f64 + 1.0)).sum();
        let mut target = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * weights;
        for r in 0..n {
            target -= 1.0 / (r as f64 + 1.0);
            if target <= 0.0 {
                return r;
            }
        }
        n - 1
    }
}

/// Reference-stream structure of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Zipf-ranked nests, kinds and cache sizes: a few hot queries repeat
    /// heavily over a long tail — the shape memo caches are built for.
    Zipf,
    /// 90% of traffic hammers one `(nest, M)` pair; the rest is uniform.
    Hotspot,
    /// Zipf base traffic plus the awkward cases: intra-batch duplicate
    /// literals, permuted-axes surface twins, and occasional invalid
    /// queries (rejected before any cache).
    Mixed,
}

impl Pattern {
    /// Parses a CLI pattern name.
    pub fn parse(name: &str) -> Option<Pattern> {
        match name {
            "zipf" => Some(Pattern::Zipf),
            "hotspot" => Some(Pattern::Hotspot),
            "mixed" => Some(Pattern::Mixed),
            _ => None,
        }
    }

    /// The stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Zipf => "zipf",
            Pattern::Hotspot => "hotspot",
            Pattern::Mixed => "mixed",
        }
    }
}

/// Generator tuning knobs.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Seed of the deterministic sampling stream.
    pub seed: u64,
    /// Reference-stream structure.
    pub pattern: Pattern,
    /// Number of batches to generate.
    pub batches: usize,
    /// Queries per batch (size-1 batches exercise the single-query path).
    pub batch_size: usize,
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            seed: 42,
            pattern: Pattern::Mixed,
            batches: 64,
            batch_size: 6,
        }
    }
}

/// The nest corpus workloads draw from: the paper's named kernels at
/// benchmark-scale bounds, plus one seeded random projective nest.
pub fn corpus() -> Vec<LoopNest> {
    vec![
        builders::matmul(64, 64, 64),
        builders::matmul(256, 32, 8),
        builders::matvec(512, 64),
        builders::fully_connected(32, 64, 16),
        builders::nbody(64, 128),
        builders::random_projective(11, 4, 4, (2, 64)),
    ]
}

/// Cache sizes the generator queries at.
const CACHE_SIZES: [u64; 3] = [1 << 10, 1 << 8, 1 << 12];

/// Outcome counters of driving a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriveStats {
    /// Batches submitted.
    pub batches: u64,
    /// Individual queries submitted.
    pub queries: u64,
    /// Queries answered with a result.
    pub answered: u64,
    /// Queries answered with a (typed or transported) error.
    pub errors: u64,
}

/// A reproducible batched query workload over the [`corpus`] nests.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The generated batches, in submission order.
    pub batches: Vec<(LoopNest, Vec<Query>)>,
}

impl Workload {
    /// Generates the workload determined by `config` (same config, same
    /// workload — always).
    pub fn generate(config: &GeneratorConfig) -> Workload {
        let corpus = corpus();
        let mut rng = XorShift::new(config.seed);
        let mut batches = Vec::with_capacity(config.batches);
        for _ in 0..config.batches {
            let nest_idx = match config.pattern {
                Pattern::Zipf | Pattern::Mixed => rng.zipf(corpus.len()),
                Pattern::Hotspot => {
                    if rng.below(10) < 9 {
                        0
                    } else {
                        rng.below(corpus.len() as u64) as usize
                    }
                }
            };
            let nest = corpus[nest_idx].clone();
            // Size-1 batches (1 in 4) go through the single-query path.
            let size = if rng.below(4) == 0 {
                1
            } else {
                config.batch_size.max(1)
            };
            let mut queries: Vec<Query> = Vec::with_capacity(size);
            while queries.len() < size {
                let q = sample_query(&mut rng, &nest, config.pattern);
                match config.pattern {
                    Pattern::Mixed => {
                        // Awkward-case sprinkling: duplicate literals and
                        // permuted-axes surface twins within one batch.
                        let roll = rng.below(8);
                        if roll == 0 && !queries.is_empty() {
                            let prev = queries[queries.len() - 1].clone();
                            queries.push(prev);
                            continue;
                        }
                        if roll == 1 {
                            if let Some(twin) = permuted_twin(&q) {
                                queries.push(q);
                                if queries.len() < size {
                                    queries.push(twin);
                                }
                                continue;
                            }
                        }
                        queries.push(q);
                    }
                    _ => queries.push(q),
                }
            }
            batches.push((nest, queries));
        }
        Workload { batches }
    }

    /// Drives an in-process front, batch by batch (size-1 batches through
    /// [`SharedEngine::analyze`], the rest through
    /// [`SharedEngine::analyze_batch`]).
    pub fn drive_shared(&self, shared: &SharedEngine) -> DriveStats {
        let mut stats = DriveStats::default();
        for (nest, queries) in &self.batches {
            stats.batches += 1;
            stats.queries += queries.len() as u64;
            if let [query] = queries.as_slice() {
                match shared.analyze(nest, query) {
                    Ok(_) => stats.answered += 1,
                    Err(_) => stats.errors += 1,
                }
                continue;
            }
            for outcome in shared.analyze_batch(nest, queries) {
                match outcome {
                    Ok(_) => stats.answered += 1,
                    Err(_) => stats.errors += 1,
                }
            }
        }
        stats
    }

    /// Drives a live server through the retrying [`Client`], batch by
    /// batch. Transport failures abort; per-query engine errors count.
    pub fn drive_client(&self, client: &Client) -> Result<DriveStats, ClientError> {
        let mut stats = DriveStats::default();
        for (nest, queries) in &self.batches {
            stats.batches += 1;
            stats.queries += queries.len() as u64;
            for outcome in client.analyze(nest, queries)? {
                match outcome {
                    Ok(_) => stats.answered += 1,
                    Err(_) => stats.errors += 1,
                }
            }
        }
        Ok(stats)
    }
}

/// Samples one query against `nest` under `pattern`.
fn sample_query(rng: &mut XorShift, nest: &LoopNest, pattern: Pattern) -> Query {
    let d = nest.num_loops();
    let m = match pattern {
        Pattern::Hotspot => {
            if rng.below(10) < 9 {
                CACHE_SIZES[0]
            } else {
                CACHE_SIZES[rng.below(CACHE_SIZES.len() as u64) as usize]
            }
        }
        _ => CACHE_SIZES[rng.zipf(CACHE_SIZES.len())],
    };
    // Invalid queries (1 in 16, mixed pattern only): rejected by
    // validation before touching any cache, so the recorded trace sees
    // query counts above its event count — like real hostile traffic.
    if pattern == Pattern::Mixed && rng.below(16) == 0 {
        return Query::LowerBound { cache_size: 1 };
    }
    match rng.zipf(6) {
        0 => Query::LowerBound { cache_size: m },
        1 => Query::OptimalTiling { cache_size: m },
        2 => Query::EnumeratedBound { cache_size: m },
        3 => Query::Tightness { cache_size: m },
        4 => {
            let axis = rng.below(d as u64) as usize;
            let hi = nest.bounds().get(axis).copied().unwrap_or(1).clamp(1, 16);
            Query::Slice {
                cache_size: m,
                axis,
                lo_bound: 1,
                hi_bound: hi,
            }
        }
        _ => surface_query(rng, nest, m),
    }
}

/// A small two-axis (one-axis for depth-1 nests) surface query with a
/// modest bound box, kept cheap enough for smoke-test latencies.
fn surface_query(rng: &mut XorShift, nest: &LoopNest, m: u64) -> Query {
    let d = nest.num_loops();
    if d < 2 {
        return Query::Surface {
            cache_size: m,
            axes: vec![0],
            lo_bounds: vec![1],
            hi_bounds: vec![3],
        };
    }
    let a = rng.below(d as u64) as usize;
    let mut b = rng.below(d as u64) as usize;
    if b == a {
        b = (a + 1) % d;
    }
    let hi = |axis: usize| nest.bounds().get(axis).copied().unwrap_or(1).clamp(1, 4);
    Query::Surface {
        cache_size: m,
        axes: vec![a, b],
        lo_bounds: vec![1, 1],
        hi_bounds: vec![hi(a), hi(b)],
    }
}

/// The permuted-axes twin of a multi-axis surface query (same canonical
/// cache identity, different literal), `None` for anything else.
fn permuted_twin(query: &Query) -> Option<Query> {
    match query {
        Query::Surface {
            cache_size,
            axes,
            lo_bounds,
            hi_bounds,
        } if axes.len() >= 2 => {
            let mut axes = axes.clone();
            let mut lo = lo_bounds.clone();
            let mut hi = hi_bounds.clone();
            axes.swap(0, 1);
            lo.swap(0, 1);
            hi.swap(0, 1);
            Some(Query::Surface {
                cache_size: *cache_size,
                axes,
                lo_bounds: lo,
                hi_bounds: hi,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_workload() {
        let config = GeneratorConfig::default();
        let a = Workload::generate(&config);
        let b = Workload::generate(&config);
        assert_eq!(a.batches.len(), b.batches.len());
        for ((na, qa), (nb, qb)) in a.batches.iter().zip(&b.batches) {
            assert_eq!(na.bounds(), nb.bounds());
            assert_eq!(qa, qb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Workload::generate(&GeneratorConfig {
            seed: 1,
            ..GeneratorConfig::default()
        });
        let b = Workload::generate(&GeneratorConfig {
            seed: 2,
            ..GeneratorConfig::default()
        });
        let flat = |w: &Workload| {
            w.batches
                .iter()
                .flat_map(|(_, qs)| qs.clone())
                .collect::<Vec<_>>()
        };
        assert_ne!(flat(&a), flat(&b));
    }

    #[test]
    fn mixed_pattern_contains_twins_and_duplicates() {
        let w = Workload::generate(&GeneratorConfig {
            seed: 7,
            pattern: Pattern::Mixed,
            batches: 128,
            batch_size: 6,
        });
        let mut has_dup = false;
        let mut has_twin = false;
        for (_, qs) in &w.batches {
            for pair in qs.windows(2) {
                if pair[0] == pair[1] {
                    has_dup = true;
                }
                if let Some(twin) = permuted_twin(&pair[0]) {
                    if twin == pair[1] {
                        has_twin = true;
                    }
                }
            }
        }
        assert!(has_dup, "mixed workload should contain duplicate literals");
        assert!(has_twin, "mixed workload should contain surface twins");
    }
}
