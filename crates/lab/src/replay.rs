//! Deterministic trace replay: push a recorded
//! [`TraceDocument`] through simulated
//! per-shard cache families under a candidate [`PolicyKind`].
//!
//! The replay reproduces the live `SharedEngine` resolution pipeline from
//! events alone — no nests, no solver:
//!
//! * events are regrouped by their `batch` id (one group per live
//!   `analyze`/`analyze_batch` call, contiguous in append order);
//! * each group runs the live phases in order: a **probe pass** (peeks in
//!   input order, skipping literals already found cached, with the tightness
//!   recompose path touching component artifacts as it short-circuits), a
//!   **classification** (first uncached occurrence per cache-canonical
//!   family is the computing miss; repeated literals of it are duplicates;
//!   distinct literals of it are canonical twins answered as hits), an
//!   **orientation intern**, an **install pass** in pending order charging
//!   the recorded per-entry costs, and the **twin answer pass** touching the
//!   shared entry per twin occurrence;
//! * the simulated shard is the recorded routing key modulo the shard
//!   count, so cross-shard isolation is reproduced too.
//!
//! With the exact-LRU policy at the recorded budgets, a cold-start trace
//! recorded under serialized traffic replays to the **same class for every
//! event** and the same hit/miss totals as the live front — the keystone
//! differential ([`check_live`]). Candidate policies reuse the same driver
//! and report what the hit rate would have been; entry costs for misses the
//! live front didn't take are recovered from a cost book learned from the
//! trace's own miss events (from a cold start, every installable entry's
//! first live resolution is a recorded miss).

use std::collections::{HashMap, HashSet};
use std::fmt;

use projtile_core::engine::{outcome, TraceDocument, TraceEvent};

use crate::policy::{PolicyCache, PolicyKind, SimCacheStats, SimKey};

/// Component tags distinguishing co-familial entries in the simulated
/// results family (mirrors the live `ResultKind`).
mod tag {
    pub const BOUND: u8 = 1;
    pub const ENUMERATED: u8 = 2;
    pub const TILING: u8 = 3;
    pub const CERTIFICATE: u8 = 4;
    pub const REPORT: u8 = 5;
}

/// Install order of a tightness miss's component artifacts (before the
/// report), matching the live install pass and its recorded cost order.
const TIGHTNESS_COMPONENTS: [u8; 4] = [tag::TILING, tag::BOUND, tag::ENUMERATED, tag::CERTIFICATE];

fn key(fam: u64, t: u8) -> SimKey {
    ((fam as u128) << 8) | t as u128
}

/// Per-shard cost budgets for the three cache families `SharedEngine`
/// traffic exercises (the betas cache is only populated by single-session
/// engines and never appears in a front's trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budgets {
    /// Typed-results family budget (bounds, enumerations, tilings,
    /// tightness reports and certificates).
    pub results: u64,
    /// Slice value-function family budget.
    pub slices: u64,
    /// Surface family budget.
    pub surfaces: u64,
}

impl Budgets {
    /// The recorded per-shard budgets of the front that produced `doc`.
    pub fn from_document(doc: &TraceDocument) -> Budgets {
        Budgets {
            results: doc.shard_config.results_capacity,
            slices: doc.shard_config.slices_capacity,
            surfaces: doc.shard_config.surfaces_capacity,
        }
    }

    /// These budgets scaled by `num / den` (saturating, `den` clamped ≥ 1).
    pub fn scaled(&self, num: u64, den: u64) -> Budgets {
        let den = den.max(1);
        let s = |v: u64| v.saturating_mul(num) / den;
        Budgets {
            results: s(self.results),
            slices: s(self.slices),
            surfaces: s(self.surfaces),
        }
    }
}

/// How the replay resolved one event (recorded outcomes fold to the same
/// three classes for comparison: failed computations count as misses, and
/// canonical twins count as hits, exactly like the live counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Answered from a simulated resident entry (or as a canonical twin of
    /// a query computed in the same batch).
    Hit,
    /// Would compute: first uncached occurrence of its family in the batch.
    Miss,
    /// Repeated literal of a computing query within one batch — neither hit
    /// nor miss, matching the live accounting.
    Duplicate,
}

impl fmt::Display for EventClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EventClass::Hit => "hit",
            EventClass::Miss => "miss",
            EventClass::Duplicate => "duplicate",
        })
    }
}

fn recorded_class(oc: u8) -> EventClass {
    match oc {
        outcome::HIT => EventClass::Hit,
        outcome::DUPLICATE => EventClass::Duplicate,
        _ => EventClass::Miss,
    }
}

/// One replay/recording divergence (only the exact-LRU replay of a
/// cold-start serialized trace is expected to have none).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mismatch {
    /// The diverging event's global ordinal.
    pub ordinal: u64,
    /// What the simulation resolved.
    pub predicted: EventClass,
    /// What the live front recorded.
    pub recorded: EventClass,
}

/// The outcome of replaying one document under one policy.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Display name of the replayed policy.
    pub policy: String,
    /// The per-shard budgets the simulation ran at.
    pub budgets: Budgets,
    /// Events replayed.
    pub events: usize,
    /// Events the simulation answered from cache (twins included).
    pub sim_hits: u64,
    /// Events the simulation computed.
    pub sim_misses: u64,
    /// Intra-batch duplicate literals (neither hit nor miss).
    pub sim_duplicates: u64,
    /// The live front's hit counter over the recorded window.
    pub live_hits: u64,
    /// The live front's miss counter over the recorded window.
    pub live_misses: u64,
    /// Cost units served from simulated cache (entry cost per hit).
    pub byte_hits: u64,
    /// Cost units requested overall (entry cost per hit or miss).
    pub byte_total: u64,
    /// Simulated misses that could not charge an install because the live
    /// trace never priced the entry (only failed computations qualify).
    pub unpriced_installs: u64,
    /// Results-family occupancy/evictions summed across shards.
    pub results: SimCacheStats,
    /// Slice-family occupancy/evictions summed across shards.
    pub slices: SimCacheStats,
    /// Surface-family occupancy/evictions summed across shards.
    pub surfaces: SimCacheStats,
    /// Event-level divergences from the recording (first 8).
    pub mismatches: Vec<Mismatch>,
    /// Total number of diverging events.
    pub mismatch_count: u64,
    /// `true` iff every event matched its recorded class and the totals
    /// equal the live counters.
    pub matches_live: bool,
}

impl ReplayReport {
    /// Simulated hit rate in percent (0 when no hits or misses).
    pub fn hit_rate(&self) -> f64 {
        rate(self.sim_hits, self.sim_hits + self.sim_misses)
    }

    /// Simulated byte-hit rate in percent (cost-weighted hit rate).
    pub fn byte_hit_rate(&self) -> f64 {
        rate(self.byte_hits, self.byte_total)
    }

    /// Evictions summed across the three families.
    pub fn evictions(&self) -> u64 {
        self.results.evictions + self.slices.evictions + self.surfaces.evictions
    }
}

fn rate(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Why a differential replay refused or failed; see [`check_live`].
#[derive(Debug)]
pub enum ReplayError {
    /// The recorder was attached to a warm front (`warm_entries > 0`): a
    /// cold-start simulation cannot reproduce its hits.
    WarmTrace(u64),
    /// The recorder overflowed (`dropped > 0`): the event stream is
    /// truncated, so totals cannot be reconciled.
    DroppedEvents(u64),
    /// The exact-LRU replay diverged from the recording (carries the full
    /// report; its `mismatches` lists the first diverging events).
    Diverged(Box<ReplayReport>),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::WarmTrace(n) => write!(
                f,
                "trace was recorded on a warm front ({n} resident entries); \
                 differential replay needs a cold start"
            ),
            ReplayError::DroppedEvents(n) => {
                write!(f, "trace dropped {n} events past its capacity")
            }
            ReplayError::Diverged(report) => write!(
                f,
                "exact-LRU replay diverged from the recording on {} of {} events \
                 (sim {}/{} vs live {}/{} hits/misses); first: {:?}",
                report.mismatch_count,
                report.events,
                report.sim_hits,
                report.sim_misses,
                report.live_hits,
                report.live_misses,
                report.mismatches.first()
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

struct Shard {
    interned: HashSet<u64>,
    results: Box<dyn PolicyCache>,
    slices: Box<dyn PolicyCache>,
    surfaces: Box<dyn PolicyCache>,
}

impl Shard {
    fn family(&mut self, kind: u8) -> &mut dyn PolicyCache {
        match kind {
            4 => self.surfaces.as_mut(),
            5 => self.slices.as_mut(),
            _ => self.results.as_mut(),
        }
    }
}

/// The primary lookup key of an event (the entry its kind's peek answers
/// from — for tightness, the report).
fn primary_key(ev: &TraceEvent) -> SimKey {
    match ev.kind {
        0 => key(ev.fam, tag::BOUND),
        1 => key(ev.fam, tag::ENUMERATED),
        2 => key(ev.fam, tag::TILING),
        3 => key(ev.fam, tag::REPORT),
        _ => key(ev.fam, 0),
    }
}

/// The live peek path for one event: touch on success; the tightness
/// recompose path touches each component it finds, short-circuiting at the
/// first absence (an overall miss can still refresh some components).
fn probe(shard: &mut Shard, ev: &TraceEvent) -> bool {
    match ev.kind {
        3 => {
            if shard.results.touch(key(ev.fam, tag::REPORT)) {
                return true;
            }
            for t in TIGHTNESS_COMPONENTS {
                if !shard.results.touch(key(ev.fam, t)) {
                    return false;
                }
            }
            true
        }
        k => shard.family(k).touch(primary_key(ev)),
    }
}

/// The live install path for one computing miss, charging the recorded
/// per-entry costs: typed results overwrite; tightness installs its
/// components where absent, the report last, then re-touches the components
/// (the derived-last recency policy); surfaces and slices install only
/// where absent.
fn install(shard: &mut Shard, ev: &TraceEvent, costs: &[u64]) {
    let at = |i: usize| costs.get(i).copied().unwrap_or(0);
    match ev.kind {
        3 => {
            for (i, t) in TIGHTNESS_COMPONENTS.into_iter().enumerate() {
                shard.results.insert_if_absent(key(ev.fam, t), at(i));
            }
            shard.results.insert(key(ev.fam, tag::REPORT), at(4));
            for t in TIGHTNESS_COMPONENTS {
                shard.results.touch(key(ev.fam, t));
            }
        }
        4 | 5 => {
            shard
                .family(ev.kind)
                .insert_if_absent(primary_key(ev), at(0));
        }
        k => {
            shard.family(k).insert(primary_key(ev), at(0));
        }
    }
}

/// Replays `doc` under `policy` at the given per-shard budgets. Processes
/// events in append order, so the replay is exact for serialized recordings
/// (concurrent recordings replay in commit order, which may legitimately
/// diverge from per-shard lock order).
pub fn replay_document(doc: &TraceDocument, policy: PolicyKind, budgets: Budgets) -> ReplayReport {
    let num_shards = (doc.num_shards as u64).max(1);
    let mut shards: Vec<Shard> = (0..num_shards)
        .map(|_| Shard {
            interned: HashSet::new(),
            results: policy.build(budgets.results),
            slices: policy.build(budgets.slices),
            surfaces: policy.build(budgets.surfaces),
        })
        .collect();

    // Cost book: every installable entry's first live resolution from a
    // cold start is a recorded miss, so recorded costs price the entries
    // for counterfactual policies too.
    let mut book: HashMap<(u8, u64), Vec<u64>> = HashMap::new();
    for ev in &doc.events {
        if ev.outcome == outcome::MISS && !ev.costs.is_empty() {
            book.entry((ev.kind, ev.fam))
                .or_insert_with(|| ev.costs.clone());
        }
    }
    // The cost an event's answer represents, for byte-rate accounting (the
    // report entry for tightness, the sole entry otherwise).
    let serve_cost = |ev: &TraceEvent| -> u64 {
        book.get(&(ev.kind, ev.fam))
            .map(|costs| {
                if ev.kind == 3 {
                    costs.get(4).copied().unwrap_or(0)
                } else {
                    costs.first().copied().unwrap_or(0)
                }
            })
            .unwrap_or(0)
    };

    let mut report = ReplayReport {
        policy: policy.name(),
        budgets,
        events: doc.events.len(),
        sim_hits: 0,
        sim_misses: 0,
        sim_duplicates: 0,
        live_hits: doc.hits,
        live_misses: doc.misses,
        byte_hits: 0,
        byte_total: 0,
        unpriced_installs: 0,
        results: SimCacheStats::default(),
        slices: SimCacheStats::default(),
        surfaces: SimCacheStats::default(),
        mismatches: Vec::new(),
        mismatch_count: 0,
        matches_live: false,
    };

    let mut at = 0usize;
    while at < doc.events.len() {
        let batch_id = doc.events[at].batch;
        let mut end = at + 1;
        while end < doc.events.len() && doc.events[end].batch == batch_id {
            end += 1;
        }
        let batch = &doc.events[at..end];
        at = end;

        let shard = &mut shards[(batch[0].sig % num_shards) as usize];

        // Probe pass: peeks in input order; literals already found cached
        // this batch are not re-peeked, while occurrences of missing
        // queries re-probe every time (partial tightness touches included).
        let mut hit_lhash: HashSet<u64> = HashSet::new();
        let mut found = Vec::with_capacity(batch.len());
        for ev in batch {
            if hit_lhash.contains(&ev.lhash) {
                found.push(true);
                continue;
            }
            let f = shard.interned.contains(&ev.orient) && probe(shard, ev);
            if f {
                hit_lhash.insert(ev.lhash);
            }
            found.push(f);
        }

        // Classification: first uncached occurrence per cache-canonical
        // family computes; its literal repeats are duplicates; its distinct
        // literals (permuted-axes surface twins) are hits answered by remap.
        let mut first: HashMap<(u8, u64), u64> = HashMap::new();
        let mut classes = Vec::with_capacity(batch.len());
        let mut twins: Vec<usize> = Vec::new();
        for (i, ev) in batch.iter().enumerate() {
            let class = if found[i] {
                EventClass::Hit
            } else {
                match first.get(&(ev.kind, ev.fam)) {
                    None => {
                        first.insert((ev.kind, ev.fam), ev.lhash);
                        EventClass::Miss
                    }
                    Some(&rep) if rep == ev.lhash => EventClass::Duplicate,
                    Some(_) => {
                        twins.push(i);
                        EventClass::Hit
                    }
                }
            };
            classes.push(class);
        }

        // Orientation intern: every live call that reached its write-lock
        // pass interned (idempotently); only a single-query computation
        // failure returns before interning.
        if batch
            .iter()
            .any(|ev| ev.outcome != outcome::FAILED_NO_INTERN)
        {
            shard.interned.insert(batch[0].orient);
        }

        // Install pass in pending order. Recorded misses charge their own
        // costs; policy-divergent misses (the live front hit) charge the
        // book; failed computations install nothing, exactly like live.
        for (i, ev) in batch.iter().enumerate() {
            if classes[i] != EventClass::Miss {
                continue;
            }
            match ev.outcome {
                outcome::MISS => install(shard, ev, &ev.costs),
                outcome::FAILED | outcome::FAILED_NO_INTERN => {}
                _ => match book.get(&(ev.kind, ev.fam)) {
                    Some(costs) => {
                        let costs = costs.clone();
                        install(shard, ev, &costs);
                    }
                    None => report.unpriced_installs += 1,
                },
            }
        }

        // Twin answer pass: each twin occurrence re-reads the shared entry
        // under the write lock (a recency touch), in input order.
        for &i in &twins {
            let ev = &batch[i];
            shard.family(ev.kind).touch(primary_key(ev));
        }

        // Accounting and recording comparison.
        for (ev, class) in batch.iter().zip(&classes) {
            match class {
                EventClass::Hit => {
                    report.sim_hits += 1;
                    report.byte_hits += serve_cost(ev);
                    report.byte_total += serve_cost(ev);
                }
                EventClass::Miss => {
                    report.sim_misses += 1;
                    report.byte_total += serve_cost(ev);
                }
                EventClass::Duplicate => report.sim_duplicates += 1,
            }
            let recorded = recorded_class(ev.outcome);
            if *class != recorded {
                report.mismatch_count += 1;
                if report.mismatches.len() < 8 {
                    report.mismatches.push(Mismatch {
                        ordinal: ev.ordinal,
                        predicted: *class,
                        recorded,
                    });
                }
            }
        }
    }

    for shard in &shards {
        for (acc, part) in [
            (&mut report.results, shard.results.stats()),
            (&mut report.slices, shard.slices.stats()),
            (&mut report.surfaces, shard.surfaces.stats()),
        ] {
            acc.entries += part.entries;
            acc.cost += part.cost;
            acc.capacity += part.capacity;
            acc.evictions += part.evictions;
        }
    }
    report.matches_live = report.mismatch_count == 0
        && report.sim_hits == doc.hits
        && report.sim_misses == doc.misses;
    report
}

/// The keystone differential: replays `doc` through the exact-LRU simulator
/// at the recorded budgets and insists the simulation reproduces the live
/// front's resolution **event for event** (and its hit/miss totals).
/// Refuses traces a cold simulation cannot possibly reproduce — warm-start
/// recordings and overflowed recorders.
pub fn check_live(doc: &TraceDocument) -> Result<ReplayReport, ReplayError> {
    if doc.warm_entries > 0 {
        return Err(ReplayError::WarmTrace(doc.warm_entries));
    }
    if doc.dropped > 0 {
        return Err(ReplayError::DroppedEvents(doc.dropped));
    }
    let report = replay_document(doc, PolicyKind::Lru, Budgets::from_document(doc));
    if report.matches_live {
        Ok(report)
    } else {
        Err(ReplayError::Diverged(Box::new(report)))
    }
}
