//! Candidate memo-cache replacement policies for trace replay.
//!
//! Every policy simulates one cache family (the live front runs one
//! `projtile_cachesim::BoundedLru` per family per shard) over the hashed
//! keys carried by trace events. Entries are `(key, cost)` pairs — the lab
//! replays *accounting*, never payloads — and each policy answers the same
//! three operations the live install/lookup paths perform: residency check,
//! recency touch, and cost-charged insert with eviction.
//!
//! [`LruPolicy`] is the reference: it mirrors `BoundedLru` exactly,
//! including the two subtleties that matter for the event-exact differential
//! — peeks count as recency (the live map folds atomic peek stamps into its
//! recency list before choosing a victim, so under serialized traffic
//! `peek`, `get` and `insert` produce one total recency order), and the most
//! recently used entry is never evicted even when its cost alone exceeds the
//! budget. The other policies are counterfactual candidates scored by
//! [`crate::report::compare_policies`].

use std::collections::{BTreeMap, HashMap};

/// A simulated cache key: the event's cache-canonical family hash plus a
/// small component tag (tightness reports and their four component
/// artifacts share a family but occupy distinct entries).
pub type SimKey = u128;

/// Occupancy and eviction counters of one simulated cache family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimCacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Total cost of the resident entries.
    pub cost: u64,
    /// The configured cost budget.
    pub capacity: u64,
    /// Entries evicted (including TTL expirations, for the TTL policy).
    pub evictions: u64,
}

/// The operations trace replay performs against one simulated cache family.
pub trait PolicyCache {
    /// `true` iff `key` is resident, without touching recency.
    fn contains(&self, key: SimKey) -> bool;
    /// Marks `key` most recently used; `true` iff it was resident.
    fn touch(&mut self, key: SimKey) -> bool;
    /// Inserts (or replaces) `key` at `cost`, marks it most recently used,
    /// and enforces the policy's retention rule.
    fn insert(&mut self, key: SimKey, cost: u64);
    /// Lifetime counters.
    fn stats(&self) -> SimCacheStats;

    /// [`PolicyCache::insert`] only when `key` is absent — the live
    /// contains-guarded install path (tightness components, surfaces,
    /// slices). A resident entry is left untouched, exactly like the live
    /// guard (`contains` does not touch recency).
    fn insert_if_absent(&mut self, key: SimKey, cost: u64) {
        if !self.contains(key) {
            self.insert(key, cost);
        }
    }
}

/// The shared exact-LRU machinery: a key map plus a recency order on
/// logical ticks. Under serialized traffic this is order-isomorphic to the
/// live `BoundedLru` (peek stamps fold into exactly this order).
#[derive(Debug, Default)]
struct Core {
    map: HashMap<SimKey, (u64, u64)>, // key -> (cost, last tick)
    order: BTreeMap<u64, SimKey>,     // last tick -> key (ticks are unique)
    total: u64,
    clock: u64,
    evictions: u64,
}

impl Core {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn touch(&mut self, key: SimKey) -> bool {
        let tick = self.tick();
        match self.map.get_mut(&key) {
            Some((_, at)) => {
                self.order.remove(at);
                *at = tick;
                self.order.insert(tick, key);
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, key: SimKey, cost: u64) {
        let tick = self.tick();
        match self.map.get_mut(&key) {
            Some((old_cost, at)) => {
                self.total = self.total - *old_cost + cost;
                self.order.remove(at);
                *old_cost = cost;
                *at = tick;
                self.order.insert(tick, key);
            }
            None => {
                self.map.insert(key, (cost, tick));
                self.order.insert(tick, key);
                self.total += cost;
            }
        }
    }

    fn remove(&mut self, key: SimKey) -> Option<u64> {
        let (cost, at) = self.map.remove(&key)?;
        self.order.remove(&at);
        self.total -= cost;
        Some(cost)
    }

    /// Evicts least recently used entries until `capacity` is respected,
    /// never evicting the sole remaining (most recent) entry — the live
    /// `BoundedLru` keeps the newest insertion even when it alone exceeds
    /// the budget.
    fn evict_to_fit(&mut self, capacity: u64) -> Vec<(SimKey, u64)> {
        let mut out = Vec::new();
        while self.total > capacity && self.map.len() > 1 {
            let Some((&at, &key)) = self.order.iter().next() else {
                break;
            };
            let _ = at;
            if let Some(cost) = self.remove(key) {
                self.evictions += 1;
                out.push((key, cost));
            }
        }
        out
    }

    fn stats(&self, capacity: u64) -> SimCacheStats {
        SimCacheStats {
            entries: self.map.len(),
            cost: self.total,
            capacity,
            evictions: self.evictions,
        }
    }
}

/// Exact least-recently-used at a cost budget — the reference simulator
/// mirroring the live `BoundedLru` (see the module docs for the invariants
/// this preserves).
#[derive(Debug)]
pub struct LruPolicy {
    core: Core,
    capacity: u64,
}

impl LruPolicy {
    /// An empty cache retaining at most `capacity` cost units.
    pub fn new(capacity: u64) -> LruPolicy {
        LruPolicy {
            core: Core::default(),
            capacity,
        }
    }
}

impl PolicyCache for LruPolicy {
    fn contains(&self, key: SimKey) -> bool {
        self.core.map.contains_key(&key)
    }
    fn touch(&mut self, key: SimKey) -> bool {
        self.core.touch(key)
    }
    fn insert(&mut self, key: SimKey, cost: u64) {
        self.core.insert(key, cost);
        self.core.evict_to_fit(self.capacity);
    }
    fn stats(&self) -> SimCacheStats {
        self.core.stats(self.capacity)
    }
}

/// LRU plus a time-to-live: an entry untouched for more than `ttl` logical
/// ticks no longer answers lookups (lazy expiry, counted as an eviction).
/// Models a service that ages out stale memo entries to bound staleness
/// rather than only memory.
#[derive(Debug)]
pub struct TtlPolicy {
    core: Core,
    capacity: u64,
    ttl: u64,
}

impl TtlPolicy {
    /// An empty cache with the given budget and time-to-live (in touches
    /// across the whole family — the replay's logical clock).
    pub fn new(capacity: u64, ttl: u64) -> TtlPolicy {
        TtlPolicy {
            core: Core::default(),
            capacity,
            ttl,
        }
    }

    fn expired(&self, key: SimKey) -> bool {
        match self.core.map.get(&key) {
            Some((_, at)) => self.core.clock.saturating_sub(*at) > self.ttl,
            None => false,
        }
    }
}

impl PolicyCache for TtlPolicy {
    fn contains(&self, key: SimKey) -> bool {
        self.core.map.contains_key(&key) && !self.expired(key)
    }
    fn touch(&mut self, key: SimKey) -> bool {
        if self.expired(key) {
            self.core.remove(key);
            self.core.evictions += 1;
            // The touch still advances the clock, like any lookup.
            self.core.tick();
            return false;
        }
        self.core.touch(key)
    }
    fn insert(&mut self, key: SimKey, cost: u64) {
        self.core.insert(key, cost);
        self.core.evict_to_fit(self.capacity);
    }
    fn stats(&self) -> SimCacheStats {
        self.core.stats(self.capacity)
    }
}

/// LRU with cost-aware admission: an entry whose cost exceeds
/// `capacity / admit_denom` is never cached (the query recomputes every
/// time). Models protecting many small memo entries from a few bulky
/// surfaces wiping the family.
#[derive(Debug)]
pub struct AdmitPolicy {
    core: Core,
    capacity: u64,
    admit_denom: u64,
    bypassed: u64,
}

impl AdmitPolicy {
    /// An empty cache admitting only entries of cost at most
    /// `capacity / admit_denom` (`admit_denom` is clamped to at least 1).
    pub fn new(capacity: u64, admit_denom: u64) -> AdmitPolicy {
        AdmitPolicy {
            core: Core::default(),
            capacity,
            admit_denom: admit_denom.max(1),
            bypassed: 0,
        }
    }

    /// Inserts refused by the admission rule.
    pub fn bypassed(&self) -> u64 {
        self.bypassed
    }
}

impl PolicyCache for AdmitPolicy {
    fn contains(&self, key: SimKey) -> bool {
        self.core.map.contains_key(&key)
    }
    fn touch(&mut self, key: SimKey) -> bool {
        self.core.touch(key)
    }
    fn insert(&mut self, key: SimKey, cost: u64) {
        if cost > self.capacity / self.admit_denom {
            self.bypassed += 1;
            return;
        }
        self.core.insert(key, cost);
        self.core.evict_to_fit(self.capacity);
    }
    fn stats(&self) -> SimCacheStats {
        self.core.stats(self.capacity)
    }
}

/// Segmented LRU (a 2Q variant): new entries enter a probationary segment
/// (one quarter of the budget); a touch while probationary promotes to the
/// protected segment (three quarters). Protected overflow demotes back to
/// probation rather than evicting outright, so one burst of new keys cannot
/// flush the established working set.
#[derive(Debug)]
pub struct TwoQPolicy {
    probation: Core,
    protected: Core,
    probation_cap: u64,
    protected_cap: u64,
}

impl TwoQPolicy {
    /// An empty segmented cache splitting `capacity` 1:3 between the
    /// probationary and protected segments.
    pub fn new(capacity: u64) -> TwoQPolicy {
        let probation_cap = capacity / 4;
        TwoQPolicy {
            probation: Core::default(),
            protected: Core::default(),
            probation_cap,
            protected_cap: capacity - probation_cap,
        }
    }

    fn rebalance(&mut self) {
        // Protected overflow demotes (most demotions land as probation's
        // most recent entries); probation overflow evicts for real.
        for (key, cost) in self.protected.evict_to_fit(self.protected_cap) {
            self.protected.evictions -= 1; // demotion, not an eviction
            self.probation.insert(key, cost);
        }
        self.probation.evict_to_fit(self.probation_cap);
    }
}

impl PolicyCache for TwoQPolicy {
    fn contains(&self, key: SimKey) -> bool {
        self.protected.map.contains_key(&key) || self.probation.map.contains_key(&key)
    }
    fn touch(&mut self, key: SimKey) -> bool {
        if self.protected.touch(key) {
            return true;
        }
        if let Some(cost) = self.probation.remove(key) {
            self.protected.insert(key, cost);
            self.rebalance();
            return true;
        }
        false
    }
    fn insert(&mut self, key: SimKey, cost: u64) {
        if self.protected.map.contains_key(&key) {
            self.protected.insert(key, cost);
        } else {
            self.probation.insert(key, cost);
        }
        self.rebalance();
    }
    fn stats(&self) -> SimCacheStats {
        let a = self.probation.stats(self.probation_cap);
        let b = self.protected.stats(self.protected_cap);
        SimCacheStats {
            entries: a.entries + b.entries,
            cost: a.cost + b.cost,
            capacity: a.capacity + b.capacity,
            evictions: a.evictions + b.evictions,
        }
    }
}

/// The candidate policies the lab scores, with their default parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Exact LRU — the live policy and the differential reference.
    Lru,
    /// LRU with the given time-to-live in logical ticks.
    Ttl(u64),
    /// LRU admitting only entries of cost ≤ `capacity / denom`.
    Admit(u64),
    /// Segmented LRU (2Q) with a 1:3 probation/protected split.
    TwoQ,
}

impl PolicyKind {
    /// The default candidate set scored by policy comparisons.
    pub const CANDIDATES: [PolicyKind; 4] = [
        PolicyKind::Lru,
        PolicyKind::Ttl(2048),
        PolicyKind::Admit(8),
        PolicyKind::TwoQ,
    ];

    /// A short stable display name (column label in report tables).
    pub fn name(&self) -> String {
        match self {
            PolicyKind::Lru => "lru".to_string(),
            PolicyKind::Ttl(ttl) => format!("ttl({ttl})"),
            PolicyKind::Admit(denom) => format!("admit(1/{denom})"),
            PolicyKind::TwoQ => "2q".to_string(),
        }
    }

    /// Builds one simulated cache family at the given cost budget.
    pub fn build(&self, capacity: u64) -> Box<dyn PolicyCache> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::new(capacity)),
            PolicyKind::Ttl(ttl) => Box::new(TtlPolicy::new(capacity, *ttl)),
            PolicyKind::Admit(denom) => Box::new(AdmitPolicy::new(capacity, *denom)),
            PolicyKind::TwoQ => Box::new(TwoQPolicy::new(capacity)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent_but_never_the_sole_entry() {
        let mut lru = LruPolicy::new(30);
        lru.insert(1, 10);
        lru.insert(2, 10);
        lru.insert(3, 10);
        assert!(lru.touch(1));
        lru.insert(4, 10); // 2 is LRU
        assert!(!lru.contains(2));
        assert!(lru.contains(1) && lru.contains(3) && lru.contains(4));
        lru.insert(9, 1000); // oversized newest entry survives alone
        assert!(lru.contains(9));
        assert_eq!(lru.stats().entries, 1);
    }

    #[test]
    fn ttl_expires_stale_entries() {
        let mut ttl = TtlPolicy::new(1000, 1);
        ttl.insert(1, 1);
        assert!(ttl.touch(1));
        ttl.insert(2, 1);
        ttl.insert(3, 1);
        // Entry 1 was last touched 2 ticks ago (> ttl 1): expired.
        assert!(!ttl.contains(1));
        assert!(!ttl.touch(1));
        assert!(ttl.contains(3));
    }

    #[test]
    fn admit_refuses_bulky_entries() {
        let mut adm = AdmitPolicy::new(80, 8); // admit cost <= 10
        adm.insert(1, 10);
        adm.insert(2, 11);
        assert!(adm.contains(1));
        assert!(!adm.contains(2));
        assert_eq!(adm.bypassed(), 1);
    }

    #[test]
    fn two_q_protects_reused_entries_from_scan_floods() {
        let mut q = TwoQPolicy::new(40); // probation 10, protected 30
        q.insert(1, 5);
        assert!(q.touch(1)); // promoted to protected
        for k in 100..120 {
            q.insert(k, 5); // scan flood churns probation only
        }
        assert!(q.contains(1));
    }
}
