//! Policy comparison and budget-sweep reporting over a recorded trace.
//!
//! [`LabReport::build`] runs the full study — every candidate policy at the
//! recorded budgets, plus an exact-LRU sweep across budget scales — and
//! derives a concrete recommendation. [`render_report`] lays the study out
//! as plain text tables for the `projtile-lab` CLI.

use projtile_core::engine::TraceDocument;

use crate::policy::PolicyKind;
use crate::replay::{replay_document, Budgets, ReplayReport};

/// Budget scales (numerator, denominator) the LRU sweep evaluates.
pub const SWEEP_SCALES: [(u64, u64); 5] = [(1, 4), (1, 2), (1, 1), (2, 1), (4, 1)];

fn scale_label(num: u64, den: u64) -> String {
    if den == 1 {
        format!("{num}x")
    } else {
        format!("{num}/{den}x")
    }
}

/// Replays `doc` through every candidate policy
/// ([`PolicyKind::CANDIDATES`]) at the same per-shard budgets.
pub fn compare_policies(doc: &TraceDocument, budgets: Budgets) -> Vec<ReplayReport> {
    PolicyKind::CANDIDATES
        .iter()
        .map(|&policy| replay_document(doc, policy, budgets))
        .collect()
}

/// Replays `doc` through the exact-LRU simulator at `base` scaled by each
/// entry of [`SWEEP_SCALES`], labelling each report with its scale.
pub fn budget_sweep(doc: &TraceDocument, base: Budgets) -> Vec<(String, ReplayReport)> {
    SWEEP_SCALES
        .iter()
        .map(|&(num, den)| {
            let report = replay_document(doc, PolicyKind::Lru, base.scaled(num, den));
            (scale_label(num, den), report)
        })
        .collect()
}

/// The full policy/budget study over one recorded trace.
#[derive(Debug, Clone)]
pub struct LabReport {
    /// Events in the studied trace.
    pub events: usize,
    /// The recorded per-shard budgets the comparison ran at.
    pub budgets: Budgets,
    /// Candidate policies at the recorded budgets.
    pub policies: Vec<ReplayReport>,
    /// Exact-LRU replays at scaled budgets, labelled by scale.
    pub sweep: Vec<(String, ReplayReport)>,
    /// A concrete policy/budget recommendation derived from the tables.
    pub recommendation: String,
}

impl LabReport {
    /// Runs the full study over `doc` at its recorded budgets.
    pub fn build(doc: &TraceDocument) -> LabReport {
        let budgets = Budgets::from_document(doc);
        let policies = compare_policies(doc, budgets);
        let sweep = budget_sweep(doc, budgets);
        let recommendation = recommend(&policies, &sweep);
        LabReport {
            events: doc.events.len(),
            budgets,
            policies,
            sweep,
            recommendation,
        }
    }
}

/// The recommendation heuristic: the policy with the best byte-hit rate
/// (hit rate as tiebreak), and the smallest LRU budget scale whose hit rate
/// is within half a point of the sweep's best.
fn recommend(policies: &[ReplayReport], sweep: &[(String, ReplayReport)]) -> String {
    // First-listed candidate wins ties, so LRU (the incumbent) is only
    // displaced by a strictly better policy.
    let best_policy = policies
        .iter()
        .fold(None::<&ReplayReport>, |best, r| match best {
            Some(b) if (b.byte_hit_rate(), b.hit_rate()) >= (r.byte_hit_rate(), r.hit_rate()) => {
                Some(b)
            }
            _ => Some(r),
        });
    let best_rate = sweep
        .iter()
        .map(|(_, r)| r.hit_rate())
        .fold(0.0f64, f64::max);
    let frugal = sweep.iter().find(|(_, r)| r.hit_rate() + 0.5 >= best_rate);
    match (best_policy, frugal) {
        (Some(p), Some((label, r))) => format!(
            "recommend policy {} ({:.1}% hits, {:.1}% byte hits) with {} budgets \
             (results {}, slices {}, surfaces {} per shard at {:.1}% hits)",
            p.policy,
            p.hit_rate(),
            p.byte_hit_rate(),
            label,
            r.budgets.results,
            r.budgets.slices,
            r.budgets.surfaces,
            r.hit_rate()
        ),
        _ => "trace too small to recommend anything".to_string(),
    }
}

/// Lays out rows of equal arity as a padded text table.
fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let emit = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.len()..*w {
                out.push(' ');
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    emit(&mut out, &header);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    emit(&mut out, &rule);
    for row in rows {
        emit(&mut out, row);
    }
    out
}

fn policy_row(label: &str, r: &ReplayReport) -> Vec<String> {
    vec![
        label.to_string(),
        r.sim_hits.to_string(),
        r.sim_misses.to_string(),
        format!("{:.1}%", r.hit_rate()),
        format!("{:.1}%", r.byte_hit_rate()),
        r.evictions().to_string(),
    ]
}

/// Renders the study as plain text: a policy comparison table, an LRU
/// budget-sweep table, and the recommendation.
pub fn render_report(report: &LabReport) -> String {
    let mut out = format!(
        "trace: {} events; recorded per-shard budgets: results {}, slices {}, surfaces {}\n\n",
        report.events, report.budgets.results, report.budgets.slices, report.budgets.surfaces
    );
    out.push_str("policy comparison (recorded budgets)\n");
    let rows: Vec<Vec<String>> = report
        .policies
        .iter()
        .map(|r| policy_row(&r.policy, r))
        .collect();
    out.push_str(&table(
        &["policy", "hits", "misses", "hit%", "byte%", "evictions"],
        &rows,
    ));
    out.push_str("\nexact-LRU budget sweep\n");
    let rows: Vec<Vec<String>> = report
        .sweep
        .iter()
        .map(|(label, r)| policy_row(label, r))
        .collect();
    out.push_str(&table(
        &["budget", "hits", "misses", "hit%", "byte%", "evictions"],
        &rows,
    ));
    out.push('\n');
    out.push_str(&report.recommendation);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_pads_columns() {
        let text = table(&["a", "bb"], &[vec!["xxx".to_string(), "y".to_string()]]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a    bb");
        assert_eq!(lines[1], "---  --");
        assert_eq!(lines[2], "xxx  y");
    }

    #[test]
    fn scale_labels() {
        assert_eq!(scale_label(1, 4), "1/4x");
        assert_eq!(scale_label(2, 1), "2x");
    }
}
