//! Access statistics shared by every cache model.

use std::fmt;

/// Counters collected while simulating an access stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total number of word accesses observed.
    pub accesses: u64,
    /// Accesses served from fast memory.
    pub hits: u64,
    /// Accesses that required loading the word from slow memory.
    pub misses: u64,
    /// Words evicted from fast memory to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// A fresh, all-zero counter set.
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    /// Words transferred between slow and fast memory.
    ///
    /// In the paper's model every miss moves one word from slow to fast
    /// memory; evictions of (read-only) data need no write-back, and the
    /// lower bounds count loads, so this is simply the miss count.
    pub fn words_transferred(&self) -> u64 {
        self.misses
    }

    /// Miss ratio in `[0, 1]`; zero for an empty trace.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Records a hit.
    pub fn record_hit(&mut self) {
        self.accesses += 1;
        self.hits += 1;
    }

    /// Records a miss.
    pub fn record_miss(&mut self) {
        self.accesses += 1;
        self.misses += 1;
    }

    /// Records an eviction.
    pub fn record_eviction(&mut self) {
        self.evictions += 1;
    }

    /// Component-wise sum of two counter sets (useful when aggregating
    /// per-configuration simulations run in parallel).
    pub fn combined(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses + other.accesses,
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses ({:.2}% miss ratio), {} evictions",
            self.accesses,
            self.hits,
            self.misses,
            self.miss_ratio() * 100.0,
            self.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = CacheStats::new();
        s.record_miss();
        s.record_hit();
        s.record_hit();
        s.record_eviction();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.words_transferred(), 1);
        assert!((s.miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_zero_miss_ratio() {
        assert_eq!(CacheStats::new().miss_ratio(), 0.0);
    }

    #[test]
    fn combined_adds_componentwise() {
        let mut a = CacheStats::new();
        a.record_miss();
        let mut b = CacheStats::new();
        b.record_hit();
        b.record_hit();
        let c = a.combined(&b);
        assert_eq!(c.accesses, 3);
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn display_contains_key_numbers() {
        let mut s = CacheStats::new();
        s.record_miss();
        s.record_hit();
        let text = s.to_string();
        assert!(text.contains("2 accesses"));
        assert!(text.contains("1 misses"));
    }
}
