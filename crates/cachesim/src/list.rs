//! The O(1) intrusive recency-list machinery shared by the cache simulator
//! ([`crate::LruCache`]) and the bounded memoization map
//! ([`crate::BoundedLru`]).
//!
//! A [`RecencyList`] is a doubly-linked list threaded through a slab of
//! slots, with `head` the most recently used slot and `tail` the least
//! recently used. The list owns only the links; callers keep the per-slot
//! payloads in parallel storage indexed by the slot ids the list hands out.
//! Every operation — allocation, promotion, release — is O(1).

/// Sentinel slot index for list ends.
pub(crate) const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Link {
    /// Towards more recently used.
    prev: usize,
    /// Towards less recently used.
    next: usize,
}

/// An intrusive most-recently-used list over slab slot ids.
#[derive(Debug, Clone)]
pub(crate) struct RecencyList {
    links: Vec<Link>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl RecencyList {
    /// Creates an empty list.
    pub(crate) fn new() -> RecencyList {
        RecencyList {
            links: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Creates an empty list with room for `capacity` slots.
    pub(crate) fn with_capacity(capacity: usize) -> RecencyList {
        RecencyList {
            links: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of slots ever allocated (live plus free); parallel payload
    /// storage must be kept at least this long.
    #[cfg(test)]
    pub(crate) fn slot_bound(&self) -> usize {
        self.links.len()
    }

    /// The most recently used slot, if any.
    pub(crate) fn head(&self) -> Option<usize> {
        (self.head != NIL).then_some(self.head)
    }

    /// The least recently used slot, if any.
    pub(crate) fn tail(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Allocates a slot (reusing a freed one when possible) and links it at
    /// the most recently used position.
    pub(crate) fn alloc_front(&mut self) -> usize {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.links.push(Link {
                    prev: NIL,
                    next: NIL,
                });
                self.links.len() - 1
            }
        };
        self.link_front(slot);
        slot
    }

    /// Moves a live slot to the most recently used position.
    pub(crate) fn move_front(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.link_front(slot);
        }
    }

    /// Unlinks a live slot and returns it to the free pool.
    pub(crate) fn release(&mut self, slot: usize) {
        self.unlink(slot);
        self.free.push(slot);
    }

    /// Removes every slot.
    pub(crate) fn clear(&mut self) {
        self.links.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Slots from least to most recently used.
    pub(crate) fn iter_lru_to_mru(&self) -> impl Iterator<Item = usize> + '_ {
        let mut cursor = self.tail;
        std::iter::from_fn(move || {
            if cursor == NIL {
                None
            } else {
                let slot = cursor;
                cursor = self.links[slot].prev;
                Some(slot)
            }
        })
    }

    fn unlink(&mut self, slot: usize) {
        let Link { prev, next } = self.links[slot];
        if prev == NIL {
            self.head = next;
        } else {
            self.links[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.links[next].prev = prev;
        }
    }

    fn link_front(&mut self, slot: usize) {
        self.links[slot].prev = NIL;
        self.links[slot].next = self.head;
        if self.head != NIL {
            self.links[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_move_release_round_trip() {
        let mut list = RecencyList::new();
        let a = list.alloc_front();
        let b = list.alloc_front();
        let c = list.alloc_front();
        assert_eq!(list.head(), Some(c));
        assert_eq!(list.tail(), Some(a));
        assert_eq!(list.iter_lru_to_mru().collect::<Vec<_>>(), vec![a, b, c]);
        list.move_front(a);
        assert_eq!(list.head(), Some(a));
        assert_eq!(list.tail(), Some(b));
        list.release(b);
        assert_eq!(list.tail(), Some(c));
        // Freed slots are reused before the slab grows.
        let d = list.alloc_front();
        assert_eq!(d, b);
        assert_eq!(list.slot_bound(), 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut list = RecencyList::new();
        list.alloc_front();
        list.alloc_front();
        list.clear();
        assert_eq!(list.head(), None);
        assert_eq!(list.tail(), None);
        assert_eq!(list.iter_lru_to_mru().count(), 0);
    }
}
