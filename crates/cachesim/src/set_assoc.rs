//! Set-associative LRU cache.
//!
//! The paper's model is fully associative; real caches are not. This model is
//! used by the ablation benchmarks to confirm that the tilings' advantage over
//! naive schedules survives limited associativity (with the usual caveat that
//! pathological conflict misses can appear for power-of-two strides).

use crate::sim::Cache;
use crate::stats::CacheStats;

/// A set-associative cache with LRU replacement within each set and a line
/// size of one word. Addresses are mapped to sets by `addr % num_sets`.
#[derive(Debug, Clone)]
pub struct SetAssociativeCache {
    num_sets: usize,
    ways: usize,
    /// Per-set vectors of (addr, last-use time), at most `ways` long.
    sets: Vec<Vec<(u64, u64)>>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssociativeCache {
    /// Creates a cache with `num_sets` sets of `ways` ways each
    /// (total capacity `num_sets * ways` words).
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(num_sets: usize, ways: usize) -> SetAssociativeCache {
        assert!(num_sets > 0, "number of sets must be positive");
        assert!(ways > 0, "associativity must be positive");
        SetAssociativeCache {
            num_sets,
            ways,
            sets: vec![Vec::with_capacity(ways); num_sets],
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    /// Builds a cache of (approximately) `capacity` words with the given
    /// associativity, rounding the set count up so the total capacity is at
    /// least `capacity`.
    pub fn with_capacity(capacity: usize, ways: usize) -> SetAssociativeCache {
        assert!(
            capacity > 0 && ways > 0,
            "capacity and associativity must be positive"
        );
        let num_sets = capacity.div_ceil(ways).max(1);
        SetAssociativeCache::new(num_sets, ways)
    }

    /// Associativity (ways per set).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Number of resident words.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    fn set_of(&self, addr: u64) -> usize {
        (addr % self.num_sets as u64) as usize
    }
}

impl Cache for SetAssociativeCache {
    fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_of(addr);
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(a, _)| *a == addr) {
            entry.1 = clock;
            self.stats.record_hit();
            return true;
        }
        self.stats.record_miss();
        if set.len() >= self.ways {
            // Evict the within-set LRU entry.
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty set has an LRU entry");
            set.swap_remove(victim);
            self.stats.record_eviction();
        }
        set.push((addr, clock));
        false
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn capacity(&self) -> usize {
        self.num_sets * self.ways
    }

    fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.clock = 0;
        self.stats = CacheStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, LruCache};

    #[test]
    fn single_set_behaves_like_fully_associative_lru() {
        let trace: Vec<u64> = (0..300u64).map(|i| (i * 7 + 1) % 23).collect();
        let mut sa = SetAssociativeCache::new(1, 8);
        let mut fa = LruCache::new(8);
        let s = simulate(&mut sa, trace.iter().copied());
        let f = simulate(&mut fa, trace.iter().copied());
        assert_eq!(s.misses, f.misses);
        assert_eq!(s.hits, f.hits);
    }

    #[test]
    fn direct_mapped_conflicts() {
        // Two addresses mapping to the same set of a direct-mapped cache
        // thrash even though the capacity would hold both.
        let mut c = SetAssociativeCache::new(4, 1);
        let trace = [0u64, 4, 0, 4, 0, 4];
        let stats = simulate(&mut c, trace.iter().copied());
        assert_eq!(stats.misses, 6);
        // A 2-way cache of the same capacity has no such conflict.
        let mut c2 = SetAssociativeCache::new(2, 2);
        let stats2 = simulate(&mut c2, trace.iter().copied());
        assert_eq!(stats2.misses, 2);
    }

    #[test]
    fn capacity_and_occupancy() {
        let mut c = SetAssociativeCache::with_capacity(10, 4);
        assert!(c.capacity() >= 10);
        assert_eq!(c.ways(), 4);
        for addr in 0..100u64 {
            c.access(addr);
        }
        assert!(c.occupancy() <= c.capacity());
    }

    #[test]
    fn reset_clears_state() {
        let mut c = SetAssociativeCache::new(2, 2);
        c.access(1);
        c.access(2);
        c.reset();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().accesses, 0);
        assert!(!c.access(1));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_ways_rejected() {
        let _ = SetAssociativeCache::new(4, 0);
    }

    #[test]
    fn repeated_access_to_same_word_hits() {
        let mut c = SetAssociativeCache::new(8, 2);
        assert!(!c.access(42));
        for _ in 0..10 {
            assert!(c.access(42));
        }
        assert_eq!(c.stats().misses, 1);
    }
}
