//! Two-level memory-hierarchy simulators.
//!
//! The machine model of Dinh & Demmel (SPAA 2020, §2) is a processor attached
//! to a fast memory ("cache") of `M` words backed by an unbounded slow
//! memory; the quantity being bounded is the number of words moved between
//! the two while executing a nested-loop program. This crate makes that model
//! executable: feed it the word-address stream of a schedule and it reports
//! exactly how many words were transferred.
//!
//! Three replacement policies are provided:
//!
//! * [`LruCache`] — fully associative, least-recently-used. This is the
//!   standard executable stand-in for the model: LRU with capacity `2M` is
//!   2-competitive with the optimal policy, and for the blocked schedules the
//!   tilings produce its traffic is within a small constant of optimal.
//! * [`ideal`] — Belady's offline optimal (OPT/MIN) policy, usable on
//!   materialized traces; this is the literal "ideal cache" of the model and
//!   is what the experiment harness compares lower bounds against on small
//!   instances.
//! * [`SetAssociativeCache`] — a set-associative LRU used to check that the
//!   conclusions are not an artifact of full associativity.
//!
//! All caches operate on word addresses (`u64`) with a line size of one word,
//! matching the paper's word-granularity accounting.
//!
//! The crate additionally exposes [`BoundedLru`], a generic cost-aware
//! memoization map built on the same O(1) intrusive recency-list machinery
//! as [`LruCache`]; the `projtile-core` analysis engine uses it to bound its
//! memo caches for long-lived service deployments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounded;
pub mod ideal;
mod list;
mod lru;
mod set_assoc;
mod sim;
mod stats;

pub use bounded::{BoundedLru, BoundedLruStats};
pub use lru::LruCache;
pub use set_assoc::SetAssociativeCache;
pub use sim::{simulate, Cache};
pub use stats::CacheStats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_and_ideal_agree_on_tiny_traces() {
        // Sequential scan with no reuse: every access misses under any policy.
        let trace: Vec<u64> = (0..100).collect();
        let mut lru = LruCache::new(8);
        simulate(&mut lru, trace.iter().copied());
        let opt = ideal::simulate_ideal(&trace, 8);
        assert_eq!(lru.stats().misses, 100);
        assert_eq!(opt.misses, 100);
    }
}
