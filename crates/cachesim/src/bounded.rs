//! A bounded, cost-aware memoization map with O(1) least-recently-used
//! eviction.
//!
//! [`BoundedLru`] is the service-side sibling of the trace-driven
//! [`crate::LruCache`]: instead of simulating a memory hierarchy it *is* one
//! — a `HashMap` from arbitrary keys to arbitrary values whose total
//! retention is bounded by a caller-supplied **cost budget** (typically an
//! approximate heap size). Recency is tracked through the same intrusive
//! slab list as the simulator ([`crate::list::RecencyList`]), so every
//! lookup, touch and eviction is O(1) amortized.
//!
//! # Shared read paths
//!
//! A long-lived analysis service reads its memo maps from many threads under
//! a shared (read) lock, where the recency list cannot be re-threaded. For
//! that path [`BoundedLru::peek`] records the access in a per-entry atomic
//! stamp instead of moving the entry; the next exclusive operation folds the
//! stamps back into the list lazily — an eviction candidate whose stamp is
//! newer than its list position is promoted instead of evicted. Peeked-at
//! entries therefore count as recently used for eviction purposes without
//! the reader ever taking an exclusive lock.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::list::RecencyList;

/// Counters describing a [`BoundedLru`]'s lifetime behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BoundedLruStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Total cost of the resident entries.
    pub cost: u64,
    /// The configured cost budget.
    pub capacity: u64,
    /// Entries evicted since creation.
    pub evictions: u64,
}

struct Slot<K, V> {
    key: K,
    value: V,
    cost: u64,
    /// Most recent access tick, including shared-path peeks.
    stamp: AtomicU64,
    /// The tick already reflected in the entry's recency-list position; a
    /// `stamp` newer than this marks a pending lazy promotion.
    epoch: u64,
}

/// A memoization map bounded by a total cost budget, evicting least recently
/// used entries first. See the module docs of `cachesim::bounded` for the
/// shared-read-path (peek) semantics.
pub struct BoundedLru<K, V> {
    capacity: u64,
    total_cost: u64,
    map: HashMap<K, usize>,
    slots: Vec<Option<Slot<K, V>>>,
    list: RecencyList,
    clock: AtomicU64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> BoundedLru<K, V> {
    /// Creates an empty map retaining at most `capacity` cost units.
    ///
    /// A capacity of zero disables retention entirely except for the single
    /// most recent entry (the map always keeps the newest insertion so a
    /// compute-then-read sequence cannot lose its own result).
    pub fn new(capacity: u64) -> BoundedLru<K, V> {
        BoundedLru {
            capacity,
            total_cost: 0,
            map: HashMap::new(),
            slots: Vec::new(),
            list: RecencyList::new(),
            clock: AtomicU64::new(0),
            evictions: 0,
        }
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> BoundedLruStats {
        BoundedLruStats {
            entries: self.map.len(),
            cost: self.total_cost,
            capacity: self.capacity,
            evictions: self.evictions,
        }
    }

    /// `true` iff `key` is resident, without touching its recency.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Looks up `key` and marks it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &slot = self.map.get(key)?;
        self.list.move_front(slot);
        let tick = self.tick();
        let entry = self.slots[slot].as_mut().expect("mapped slot is live");
        entry.epoch = tick;
        *entry.stamp.get_mut() = tick;
        Some(
            &self.slots[slot]
                .as_ref()
                .expect("mapped slot is live")
                .value,
        )
    }

    /// Looks up `key` **without exclusive access**, recording the access in
    /// the entry's atomic stamp; the next exclusive operation folds the
    /// stamp into the recency order (lazy promotion). This is the shared
    /// read-lock path of a concurrent service front.
    // lint: allow(L008) expect pins map/order-list coherence maintained by every mutation
    pub fn peek(&self, key: &K) -> Option<&V> {
        let &slot = self.map.get(key)?;
        let entry = self.slots[slot].as_ref().expect("mapped slot is live");
        entry.stamp.store(self.tick(), Ordering::Relaxed);
        Some(&entry.value)
    }

    /// Inserts (or replaces) `key` with the given retention cost, marks it
    /// most recently used, and evicts least recently used entries until the
    /// budget is respected again. The just-inserted entry is never evicted,
    /// even when its cost alone exceeds the budget.
    pub fn insert(&mut self, key: K, value: V, cost: u64) {
        let tick = self.tick();
        if let Some(&slot) = self.map.get(&key) {
            self.list.move_front(slot);
            let entry = self.slots[slot].as_mut().expect("mapped slot is live");
            self.total_cost = self.total_cost - entry.cost + cost;
            entry.value = value;
            entry.cost = cost;
            entry.epoch = tick;
            *entry.stamp.get_mut() = tick;
        } else {
            let slot = self.list.alloc_front();
            if slot == self.slots.len() {
                self.slots.push(None);
            }
            self.slots[slot] = Some(Slot {
                key: key.clone(),
                value,
                cost,
                stamp: AtomicU64::new(tick),
                epoch: tick,
            });
            self.map.insert(key, slot);
            self.total_cost += cost;
        }
        self.evict_to_fit();
    }

    /// Removes `key`, returning its value if it was resident.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let slot = self.map.remove(key)?;
        self.list.release(slot);
        let entry = self.slots[slot].take().expect("mapped slot is live");
        self.total_cost -= entry.cost;
        Some(entry.value)
    }

    /// Changes the cost budget, evicting as needed to respect a smaller one.
    pub fn set_capacity(&mut self, capacity: u64) {
        self.capacity = capacity;
        self.evict_to_fit();
    }

    /// Entries from least to most recently used (pending lazy promotions are
    /// folded in first, so the order reflects peeks too).
    // lint: allow(L008) expect pins map/order-list coherence maintained by every mutation
    pub fn iter_lru_to_mru(&mut self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.resort_by_effective_access();
        let slots = &self.slots;
        self.list.iter_lru_to_mru().map(move |slot| {
            let entry = slots[slot].as_ref().expect("listed slot is live");
            (&entry.key, &entry.value)
        })
    }

    /// Evicts from the tail until the budget is respected, keeping at least
    /// the most recently used entry. A tail entry whose atomic stamp is
    /// newer than its list position was peeked at since it was last
    /// positioned; the pending stamps are then folded into the list (exact
    /// re-sort by effective access time — rare, amortized over the peeks
    /// that made it necessary) before eviction resumes, so the victim is
    /// always the true least recently used entry, peeks included.
    // lint: allow(L008) expect pins map/order-list coherence maintained by every mutation
    fn evict_to_fit(&mut self) {
        while self.total_cost > self.capacity {
            let Some(victim) = self.list.tail() else {
                break;
            };
            if Some(victim) == self.list.head() {
                break; // never evict the sole (most recent) entry
            }
            let entry = self.slots[victim].as_mut().expect("tail slot is live");
            if *entry.stamp.get_mut() > entry.epoch {
                self.resort_by_effective_access();
                continue;
            }
            let entry = self.slots[victim].take().expect("tail slot is live");
            self.map.remove(&entry.key);
            self.total_cost -= entry.cost;
            self.list.release(victim);
            self.evictions += 1;
        }
    }

    /// Folds every pending peek stamp into the recency list by re-threading
    /// it in order of effective access time `max(epoch, stamp)`. Exclusive
    /// operations hand out strictly increasing ticks and peeks record them
    /// atomically, so this restores the exact least-recently-used order that
    /// a fully synchronized map would have. O(n log n); called only when an
    /// eviction candidate has a pending stamp, or by whole-map traversals.
    // lint: allow(L008) expect pins map/order-list coherence maintained by every mutation
    fn resort_by_effective_access(&mut self) {
        let mut order: Vec<(u64, usize)> = self
            .list
            .iter_lru_to_mru()
            .map(|slot| {
                let entry = self.slots[slot].as_ref().expect("listed slot is live");
                let effective = entry.stamp.load(Ordering::Relaxed).max(entry.epoch);
                (effective, slot)
            })
            .collect();
        // Oldest first: moving each to the front in ascending order leaves
        // the list sorted most-recent-first.
        order.sort_unstable();
        for (effective, slot) in order {
            let entry = self.slots[slot].as_mut().expect("listed slot is live");
            entry.epoch = effective;
            *entry.stamp.get_mut() = effective;
            self.list.move_front(slot);
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resident_keys(map: &mut BoundedLru<u32, String>) -> Vec<u32> {
        map.iter_lru_to_mru().map(|(k, _)| *k).collect()
    }

    #[test]
    fn evicts_least_recently_used_by_cost() {
        let mut m: BoundedLru<u32, String> = BoundedLru::new(30);
        m.insert(1, "a".into(), 10);
        m.insert(2, "b".into(), 10);
        m.insert(3, "c".into(), 10);
        assert_eq!(m.len(), 3);
        m.get(&1); // 2 is now LRU
        m.insert(4, "d".into(), 10);
        assert!(!m.contains(&2));
        assert!(m.contains(&1) && m.contains(&3) && m.contains(&4));
        assert_eq!(m.stats().evictions, 1);
        assert_eq!(m.stats().cost, 30);
    }

    #[test]
    fn costs_drive_eviction_counts() {
        let mut m: BoundedLru<u32, String> = BoundedLru::new(100);
        for k in 0..10 {
            m.insert(k, "x".into(), 10);
        }
        // A single big entry displaces as many small ones as needed (here:
        // all of them — even 95 + 10 would still be over budget).
        m.insert(99, "big".into(), 95);
        assert!(m.contains(&99));
        assert_eq!(m.stats().cost, 95);
        assert_eq!(m.len(), 1);
        assert_eq!(m.stats().evictions, 10);
    }

    #[test]
    fn newest_entry_survives_even_over_budget() {
        let mut m: BoundedLru<u32, String> = BoundedLru::new(10);
        m.insert(1, "huge".into(), 1000);
        assert!(m.contains(&1));
        m.insert(2, "huge2".into(), 2000);
        assert!(m.contains(&2));
        assert!(!m.contains(&1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn replacing_updates_cost() {
        let mut m: BoundedLru<u32, String> = BoundedLru::new(100);
        m.insert(1, "a".into(), 40);
        m.insert(1, "b".into(), 70);
        assert_eq!(m.stats().cost, 70);
        assert_eq!(m.get(&1).map(String::as_str), Some("b"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn peek_protects_entries_from_eviction() {
        let mut m: BoundedLru<u32, String> = BoundedLru::new(30);
        m.insert(1, "a".into(), 10);
        m.insert(2, "b".into(), 10);
        m.insert(3, "c".into(), 10);
        // Shared-path read of the LRU entry: no exclusive access, but the
        // stamp marks it recently used.
        assert_eq!(m.peek(&1).map(String::as_str), Some("a"));
        m.insert(4, "d".into(), 10);
        // 1 was lazily promoted; 2 (the true LRU) was evicted instead.
        assert!(m.contains(&1));
        assert!(!m.contains(&2));
    }

    #[test]
    fn lru_iteration_reflects_peeks() {
        let mut m: BoundedLru<u32, String> = BoundedLru::new(1000);
        m.insert(1, "a".into(), 1);
        m.insert(2, "b".into(), 1);
        m.insert(3, "c".into(), 1);
        m.peek(&2);
        m.peek(&1);
        assert_eq!(resident_keys(&mut m), vec![3, 2, 1]);
    }

    #[test]
    fn set_capacity_evicts_down() {
        let mut m: BoundedLru<u32, String> = BoundedLru::new(100);
        for k in 0..10 {
            m.insert(k, "x".into(), 10);
        }
        m.set_capacity(25);
        assert_eq!(m.len(), 2);
        assert_eq!(resident_keys(&mut m), vec![8, 9]);
    }

    #[test]
    fn remove_releases_cost() {
        let mut m: BoundedLru<u32, String> = BoundedLru::new(100);
        m.insert(1, "a".into(), 60);
        assert_eq!(m.remove(&1), Some("a".into()));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.stats().cost, 0);
        m.insert(2, "b".into(), 100);
        assert!(m.contains(&2));
    }

    #[test]
    fn eviction_order_matches_reference_under_mixed_traffic() {
        // Differential check against a simple clock-ordered reference, with
        // interleaved inserts, gets and peeks.
        use std::collections::BTreeMap;
        let mut fast: BoundedLru<u64, u64> = BoundedLru::new(8);
        // reference: key -> (clock, cost), eviction = smallest clock while
        // over budget (never the newest).
        let mut reference: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut clock = 0u64;
        let mut x = 7u64;
        for _ in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 12;
            let op = (x >> 20) % 3;
            clock += 1;
            match op {
                0 => {
                    fast.insert(key, key, 1);
                    let newest = key;
                    reference.insert(key, (clock, 1));
                    let total =
                        |r: &BTreeMap<u64, (u64, u64)>| r.values().map(|(_, c)| *c).sum::<u64>();
                    while total(&reference) > 8 {
                        let victim = reference
                            .iter()
                            .filter(|(k, _)| **k != newest || reference.len() == 1)
                            .min_by_key(|(_, (t, _))| *t)
                            .map(|(k, _)| *k)
                            .expect("over budget implies non-empty");
                        if victim == newest {
                            break;
                        }
                        reference.remove(&victim);
                    }
                }
                1 => {
                    let f = fast.get(&key).copied();
                    let r = reference.get(&key).map(|_| key);
                    assert_eq!(f, r, "get {key}");
                    if r.is_some() {
                        reference.insert(key, (clock, 1));
                    }
                }
                _ => {
                    let f = fast.peek(&key).copied();
                    let r = reference.get(&key).map(|_| key);
                    assert_eq!(f, r, "peek {key}");
                    if r.is_some() {
                        reference.insert(key, (clock, 1));
                    }
                }
            }
            assert_eq!(fast.len(), reference.len());
        }
    }
}
