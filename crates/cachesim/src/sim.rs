//! The cache trait and the trace-driven simulation loop.

use crate::stats::CacheStats;

/// An online cache model operating on word addresses.
pub trait Cache {
    /// Processes one word access; returns `true` on a hit.
    fn access(&mut self, addr: u64) -> bool;

    /// Counters accumulated so far.
    fn stats(&self) -> &CacheStats;

    /// Fast-memory capacity in words.
    fn capacity(&self) -> usize;

    /// Clears the contents and the counters.
    fn reset(&mut self);
}

/// Drives `cache` with an address stream and returns the final counters.
///
/// The stream is consumed lazily, so callers can feed schedules of billions of
/// accesses without materializing them (the tiled executor in `projtile-exec`
/// does exactly that).
pub fn simulate<C: Cache, I: IntoIterator<Item = u64>>(cache: &mut C, trace: I) -> CacheStats {
    for addr in trace {
        cache.access(addr);
    }
    *cache.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LruCache;

    #[test]
    fn simulate_consumes_iterator_lazily() {
        let mut cache = LruCache::new(4);
        // An iterator with interior state proves laziness is at least possible;
        // correctness is what we check.
        let stats = simulate(&mut cache, (0..10u64).map(|i| i % 2));
        assert_eq!(stats.accesses, 10);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 8);
    }

    #[test]
    fn simulate_returns_same_stats_as_cache() {
        let mut cache = LruCache::new(2);
        let stats = simulate(&mut cache, vec![1, 2, 3, 1]);
        assert_eq!(&stats, cache.stats());
    }
}
