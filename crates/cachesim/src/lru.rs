//! Fully associative least-recently-used cache.

use std::collections::HashMap;

use crate::list::RecencyList;
use crate::sim::Cache;
use crate::stats::CacheStats;

/// A fully associative LRU cache over word addresses with a line size of one
/// word.
///
/// Recency is the shared intrusive slab list of `list::RecencyList`
/// (`head` = most recently used, `tail` = least recently used), with a
/// `HashMap` from address to slab slot and the per-slot addresses kept in
/// parallel storage. Every operation — residency check, touch, eviction — is
/// O(1) (amortized for the hash map), replacing the seed's
/// `BTreeMap`-by-recency design whose eviction was O(log M). Eviction order
/// is identical to true LRU. The same list machinery backs the bounded
/// memoization map [`crate::BoundedLru`] used by the analysis service.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    /// addr -> slot in the recency list.
    resident: HashMap<u64, usize>,
    /// Per-slot addresses, parallel to the list's slots.
    addrs: Vec<u64>,
    list: RecencyList,
    stats: CacheStats,
}

impl LruCache {
    /// Creates an empty cache holding `capacity` words.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> LruCache {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            resident: HashMap::with_capacity(capacity),
            addrs: Vec::with_capacity(capacity),
            list: RecencyList::with_capacity(capacity),
            stats: CacheStats::new(),
        }
    }

    /// Number of words currently resident.
    pub fn occupancy(&self) -> usize {
        self.resident.len()
    }

    /// Returns `true` iff `addr` is currently resident (without touching it).
    pub fn contains(&self, addr: u64) -> bool {
        self.resident.contains_key(&addr)
    }

    /// Inserts a new address at the most recently used position.
    fn insert_front(&mut self, addr: u64) {
        let slot = self.list.alloc_front();
        if slot == self.addrs.len() {
            self.addrs.push(addr);
        } else {
            self.addrs[slot] = addr;
        }
        self.resident.insert(addr, slot);
    }

    /// Removes and returns the least recently used address.
    fn evict_lru(&mut self) -> u64 {
        let slot = self.list.tail().expect("evicting from an empty cache");
        let victim = self.addrs[slot];
        self.list.release(slot);
        self.resident.remove(&victim);
        victim
    }
}

impl Cache for LruCache {
    fn access(&mut self, addr: u64) -> bool {
        if let Some(&slot) = self.resident.get(&addr) {
            self.stats.record_hit();
            self.list.move_front(slot);
            true
        } else {
            self.stats.record_miss();
            if self.resident.len() >= self.capacity {
                self.evict_lru();
                self.stats.record_eviction();
            }
            self.insert_front(addr);
            false
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn reset(&mut self) {
        self.resident.clear();
        self.addrs.clear();
        self.list.clear();
        self.stats = CacheStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;

    #[test]
    fn hits_on_resident_words() {
        let mut c = LruCache::new(2);
        assert!(!c.access(10));
        assert!(c.access(10));
        assert!(!c.access(11));
        assert!(c.access(10));
        assert!(c.access(11));
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 3);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        c.access(3); // evicts 2
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(!c.contains(2));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = LruCache::new(3);
        for addr in 0..100u64 {
            c.access(addr % 10);
            assert!(c.occupancy() <= 3);
        }
    }

    #[test]
    fn cyclic_scan_larger_than_capacity_always_misses() {
        // The classic LRU pathology: scanning N > M words cyclically misses
        // every time.
        let mut c = LruCache::new(4);
        let trace: Vec<u64> = (0..5u64).cycle().take(50).collect();
        let stats = simulate(&mut c, trace.iter().copied());
        assert_eq!(stats.misses, 50);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn working_set_within_capacity_misses_once_per_word() {
        let mut c = LruCache::new(8);
        let trace: Vec<u64> = (0..8u64).cycle().take(800).collect();
        let stats = simulate(&mut c, trace.iter().copied());
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.hits, 792);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.reset();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().accesses, 0);
        assert!(!c.contains(1));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::new(0);
    }

    #[test]
    fn lru_inclusion_property() {
        // A larger LRU cache never misses more than a smaller one on the same
        // trace (stack property of LRU).
        let trace: Vec<u64> = (0..200u64).map(|i| (i * 7 + i / 3) % 37).collect();
        let mut small = LruCache::new(8);
        let mut large = LruCache::new(16);
        let s = simulate(&mut small, trace.iter().copied());
        let l = simulate(&mut large, trace.iter().copied());
        assert!(l.misses <= s.misses);
    }

    /// The seed's `BTreeMap`-by-recency implementation, kept as a test oracle
    /// so the slab/intrusive-list rewrite can be checked for *identical*
    /// eviction behaviour, not just matching hit counts.
    #[derive(Debug)]
    struct ReferenceLru {
        capacity: usize,
        clock: u64,
        resident: HashMap<u64, u64>,
        by_recency: std::collections::BTreeMap<u64, u64>,
    }

    impl ReferenceLru {
        fn new(capacity: usize) -> ReferenceLru {
            ReferenceLru {
                capacity,
                clock: 0,
                resident: HashMap::new(),
                by_recency: std::collections::BTreeMap::new(),
            }
        }

        fn touch(&mut self, addr: u64) {
            self.clock += 1;
            if let Some(old) = self.resident.insert(addr, self.clock) {
                self.by_recency.remove(&old);
            }
            self.by_recency.insert(self.clock, addr);
        }

        /// Returns (hit, evicted address if any).
        fn access(&mut self, addr: u64) -> (bool, Option<u64>) {
            if self.resident.contains_key(&addr) {
                self.touch(addr);
                (true, None)
            } else {
                let mut evicted = None;
                if self.resident.len() >= self.capacity {
                    let (&oldest, &victim) =
                        self.by_recency.iter().next().expect("non-empty cache");
                    self.by_recency.remove(&oldest);
                    self.resident.remove(&victim);
                    evicted = Some(victim);
                }
                self.touch(addr);
                (false, evicted)
            }
        }
    }

    #[test]
    fn eviction_order_identical_to_reference_btreemap_lru() {
        // Pseudo-random trace with reuse; after every access the hit/miss
        // outcome and the full resident set must match the seed design.
        for capacity in [1usize, 2, 3, 7, 16] {
            let mut fast = LruCache::new(capacity);
            let mut reference = ReferenceLru::new(capacity);
            let mut x = 12345u64;
            for step in 0..5000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let addr = (x >> 33) % 40;
                let (ref_hit, ref_evicted) = reference.access(addr);
                let fast_hit = fast.access(addr);
                assert_eq!(fast_hit, ref_hit, "cap {capacity} step {step} addr {addr}");
                if let Some(v) = ref_evicted {
                    assert!(
                        !fast.contains(v),
                        "cap {capacity} step {step}: {v} must be evicted"
                    );
                }
                assert_eq!(fast.occupancy(), reference.resident.len());
                for (&a, _) in reference.resident.iter() {
                    assert!(
                        fast.contains(a),
                        "cap {capacity} step {step}: {a} must be resident"
                    );
                }
            }
        }
    }
}
