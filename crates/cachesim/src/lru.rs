//! Fully associative least-recently-used cache.

use std::collections::{BTreeMap, HashMap};

use crate::sim::Cache;
use crate::stats::CacheStats;

/// A fully associative LRU cache over word addresses with a line size of one
/// word.
///
/// Recency is tracked with a monotonically increasing logical clock: a
/// `HashMap` gives O(1) expected residency checks and a `BTreeMap` keyed by
/// last-use time gives O(log M) eviction of the least recently used word.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    clock: u64,
    /// addr -> last-use time
    resident: HashMap<u64, u64>,
    /// last-use time -> addr (times are unique because the clock is monotone)
    by_recency: BTreeMap<u64, u64>,
    stats: CacheStats,
}

impl LruCache {
    /// Creates an empty cache holding `capacity` words.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> LruCache {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            clock: 0,
            resident: HashMap::with_capacity(capacity),
            by_recency: BTreeMap::new(),
            stats: CacheStats::new(),
        }
    }

    /// Number of words currently resident.
    pub fn occupancy(&self) -> usize {
        self.resident.len()
    }

    /// Returns `true` iff `addr` is currently resident (without touching it).
    pub fn contains(&self, addr: u64) -> bool {
        self.resident.contains_key(&addr)
    }

    fn touch(&mut self, addr: u64) {
        self.clock += 1;
        if let Some(old) = self.resident.insert(addr, self.clock) {
            self.by_recency.remove(&old);
        }
        self.by_recency.insert(self.clock, addr);
    }
}

impl Cache for LruCache {
    fn access(&mut self, addr: u64) -> bool {
        if self.resident.contains_key(&addr) {
            self.stats.record_hit();
            self.touch(addr);
            true
        } else {
            self.stats.record_miss();
            if self.resident.len() >= self.capacity {
                // Evict the least recently used word.
                let (&oldest_time, &victim) =
                    self.by_recency.iter().next().expect("non-empty cache has an LRU entry");
                self.by_recency.remove(&oldest_time);
                self.resident.remove(&victim);
                self.stats.record_eviction();
            }
            self.touch(addr);
            false
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn reset(&mut self) {
        self.clock = 0;
        self.resident.clear();
        self.by_recency.clear();
        self.stats = CacheStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;

    #[test]
    fn hits_on_resident_words() {
        let mut c = LruCache::new(2);
        assert!(!c.access(10));
        assert!(c.access(10));
        assert!(!c.access(11));
        assert!(c.access(10));
        assert!(c.access(11));
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 3);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        c.access(3); // evicts 2
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(!c.contains(2));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = LruCache::new(3);
        for addr in 0..100u64 {
            c.access(addr % 10);
            assert!(c.occupancy() <= 3);
        }
    }

    #[test]
    fn cyclic_scan_larger_than_capacity_always_misses() {
        // The classic LRU pathology: scanning N > M words cyclically misses
        // every time.
        let mut c = LruCache::new(4);
        let trace: Vec<u64> = (0..5u64).cycle().take(50).collect();
        let stats = simulate(&mut c, trace.iter().copied());
        assert_eq!(stats.misses, 50);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn working_set_within_capacity_misses_once_per_word() {
        let mut c = LruCache::new(8);
        let trace: Vec<u64> = (0..8u64).cycle().take(800).collect();
        let stats = simulate(&mut c, trace.iter().copied());
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.hits, 792);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.reset();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().accesses, 0);
        assert!(!c.contains(1));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::new(0);
    }

    #[test]
    fn lru_inclusion_property() {
        // A larger LRU cache never misses more than a smaller one on the same
        // trace (stack property of LRU).
        let trace: Vec<u64> = (0..200u64).map(|i| (i * 7 + i / 3) % 37).collect();
        let mut small = LruCache::new(8);
        let mut large = LruCache::new(16);
        let s = simulate(&mut small, trace.iter().copied());
        let l = simulate(&mut large, trace.iter().copied());
        assert!(l.misses <= s.misses);
    }
}
