//! Belady's offline optimal replacement policy (OPT/MIN).
//!
//! The paper's machine model assumes an ideal cache: data movement is
//! scheduled with full knowledge of the future. On materialized traces this
//! module computes that optimum exactly, which lets the experiment harness
//! compare measured traffic directly against the analytic lower bounds without
//! the (small) constant-factor slack an online policy introduces.

use std::collections::{BTreeSet, HashMap};

use crate::stats::CacheStats;

/// Simulates Belady's optimal replacement on a fully associative cache of
/// `capacity` words over the given address trace and returns the counters.
///
/// # Panics
/// Panics if `capacity == 0`.
pub fn simulate_ideal(trace: &[u64], capacity: usize) -> CacheStats {
    assert!(capacity > 0, "cache capacity must be positive");
    let mut stats = CacheStats::new();

    // next_use[i] = position of the next access to trace[i]'s address after i,
    // or usize::MAX if never accessed again.
    let mut next_use = vec![usize::MAX; trace.len()];
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    for (i, &addr) in trace.iter().enumerate().rev() {
        next_use[i] = last_seen.get(&addr).copied().unwrap_or(usize::MAX);
        last_seen.insert(addr, i);
    }

    // Resident set, with an ordered index on (next use, addr) for O(log M)
    // farthest-in-future eviction. `usize::MAX` sorts last, so dead words are
    // evicted first, as OPT requires.
    let mut resident: HashMap<u64, usize> = HashMap::with_capacity(capacity);
    let mut by_next_use: BTreeSet<(usize, u64)> = BTreeSet::new();

    for (i, &addr) in trace.iter().enumerate() {
        let upcoming = next_use[i];
        if let Some(&current_next) = resident.get(&addr) {
            stats.record_hit();
            by_next_use.remove(&(current_next, addr));
            resident.insert(addr, upcoming);
            by_next_use.insert((upcoming, addr));
        } else {
            stats.record_miss();
            if resident.len() >= capacity {
                let &(victim_next, victim) = by_next_use
                    .iter()
                    .next_back()
                    .expect("non-empty resident set");
                by_next_use.remove(&(victim_next, victim));
                resident.remove(&victim);
                stats.record_eviction();
            }
            resident.insert(addr, upcoming);
            by_next_use.insert((upcoming, addr));
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, LruCache};

    #[test]
    fn compulsory_misses_only_when_capacity_suffices() {
        let trace: Vec<u64> = vec![1, 2, 3, 1, 2, 3, 1, 2, 3];
        let stats = simulate_ideal(&trace, 3);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 6);
    }

    #[test]
    fn classic_belady_example_beats_lru() {
        // Cyclic scan of 4 addresses with capacity 3: LRU thrashes (all
        // misses), OPT keeps part of the working set.
        let trace: Vec<u64> = (0..4u64).cycle().take(40).collect();
        let opt = simulate_ideal(&trace, 3);
        let mut lru = LruCache::new(3);
        let lru_stats = simulate(&mut lru, trace.iter().copied());
        assert_eq!(lru_stats.misses, 40);
        assert!(opt.misses < lru_stats.misses);
        // OPT pays the 4 compulsory misses plus at most two misses per
        // subsequent wrap-around of the scan (9 more cycles); LRU pays 4 per.
        assert!(opt.misses >= 4);
        assert!(opt.misses <= 4 + 2 * 9);
    }

    #[test]
    fn opt_never_worse_than_lru() {
        // Pseudo-random-ish trace; OPT must be at least as good as LRU for
        // every capacity (OPT is optimal among all policies).
        let trace: Vec<u64> = (0..500u64).map(|i| (i * 31 + i / 7) % 53).collect();
        for capacity in [1usize, 2, 4, 8, 16, 32] {
            let opt = simulate_ideal(&trace, capacity);
            let mut lru = LruCache::new(capacity);
            let l = simulate(&mut lru, trace.iter().copied());
            assert!(
                opt.misses <= l.misses,
                "OPT ({}) worse than LRU ({}) at capacity {}",
                opt.misses,
                l.misses,
                capacity
            );
            // Both at least pay the compulsory misses.
            let distinct = trace.iter().collect::<std::collections::HashSet<_>>().len() as u64;
            assert!(opt.misses >= distinct);
        }
    }

    #[test]
    fn lru_is_at_most_capacity_competitive() {
        // Sleator–Tarjan: LRU with capacity k on any trace misses at most
        // (roughly) k/(k-h+1) times OPT with capacity h; with equal capacity
        // the ratio is at most the capacity. A loose sanity check.
        let trace: Vec<u64> = (0..300u64).map(|i| (i * 13) % 29).collect();
        let capacity = 8;
        let opt = simulate_ideal(&trace, capacity);
        let mut lru = LruCache::new(capacity);
        let l = simulate(&mut lru, trace.iter().copied());
        assert!(l.misses <= opt.misses * capacity as u64);
    }

    #[test]
    fn capacity_one_misses_every_change() {
        let trace = vec![5, 5, 6, 6, 5];
        let stats = simulate_ideal(&trace, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn empty_trace() {
        let stats = simulate_ideal(&[], 4);
        assert_eq!(stats.accesses, 0);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = simulate_ideal(&[1, 2, 3], 0);
    }

    #[test]
    fn monotone_in_capacity() {
        let trace: Vec<u64> = (0..400u64).map(|i| (i * 17 + 3) % 61).collect();
        let mut prev = u64::MAX;
        for capacity in [1usize, 2, 4, 8, 16, 32, 64] {
            let misses = simulate_ideal(&trace, capacity).misses;
            assert!(misses <= prev, "OPT misses must not increase with capacity");
            prev = misses;
        }
    }
}
