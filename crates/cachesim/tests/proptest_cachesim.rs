//! Property tests for the cache simulators on random traces.

use projtile_cachesim::{ideal, simulate, Cache, LruCache, SetAssociativeCache};
use proptest::prelude::*;
use std::collections::HashSet;

fn trace_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..64, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counters_are_consistent(trace in trace_strategy(), capacity in 1usize..32) {
        let mut lru = LruCache::new(capacity);
        let stats = simulate(&mut lru, trace.iter().copied());
        prop_assert_eq!(stats.accesses as usize, trace.len());
        prop_assert_eq!(stats.hits + stats.misses, stats.accesses);
        prop_assert!(stats.evictions <= stats.misses);
        prop_assert!(lru.occupancy() <= capacity);
    }

    #[test]
    fn compulsory_misses_are_a_floor_and_accesses_a_ceiling(
        trace in trace_strategy(),
        capacity in 1usize..32,
    ) {
        let distinct = trace.iter().collect::<HashSet<_>>().len() as u64;
        let mut lru = LruCache::new(capacity);
        let l = simulate(&mut lru, trace.iter().copied());
        let o = ideal::simulate_ideal(&trace, capacity);
        for stats in [l, o] {
            prop_assert!(stats.misses >= distinct);
            prop_assert!(stats.misses <= stats.accesses);
        }
    }

    #[test]
    fn belady_is_optimal_wrt_lru_and_monotone(trace in trace_strategy()) {
        let mut prev = u64::MAX;
        for capacity in [1usize, 2, 4, 8, 16, 32] {
            let opt = ideal::simulate_ideal(&trace, capacity);
            let mut lru = LruCache::new(capacity);
            let l = simulate(&mut lru, trace.iter().copied());
            prop_assert!(opt.misses <= l.misses, "capacity {capacity}");
            prop_assert!(opt.misses <= prev, "OPT not monotone at {capacity}");
            prev = opt.misses;
        }
    }

    #[test]
    fn lru_inclusion_property(trace in trace_strategy()) {
        // LRU is a stack algorithm: a larger cache never misses more.
        let mut prev = u64::MAX;
        for capacity in [1usize, 2, 4, 8, 16, 32, 64] {
            let mut lru = LruCache::new(capacity);
            let stats = simulate(&mut lru, trace.iter().copied());
            prop_assert!(stats.misses <= prev, "capacity {capacity}");
            prev = stats.misses;
        }
    }

    #[test]
    fn full_associativity_is_a_special_case(trace in trace_strategy(), ways in 1usize..16) {
        // A set-associative cache with a single set is exactly the fully
        // associative LRU of the same capacity.
        let mut sa = SetAssociativeCache::new(1, ways);
        let mut fa = LruCache::new(ways);
        let s = simulate(&mut sa, trace.iter().copied());
        let f = simulate(&mut fa, trace.iter().copied());
        prop_assert_eq!(s.misses, f.misses);
        prop_assert_eq!(s.hits, f.hits);
    }

    #[test]
    fn set_associative_counters_consistent_and_bounded(
        trace in trace_strategy(),
        sets in 1usize..8,
        ways in 1usize..8,
    ) {
        // (Note: limited associativity does not always lose to full
        // associativity under LRU — cyclic scans are a counterexample — so we
        // check consistency and the compulsory/optimal floors instead.)
        let mut sa = SetAssociativeCache::new(sets, ways);
        let s = simulate(&mut sa, trace.iter().copied());
        prop_assert_eq!(s.accesses as usize, trace.len());
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(sa.occupancy() <= sa.capacity());
        let distinct = trace.iter().collect::<HashSet<_>>().len() as u64;
        prop_assert!(s.misses >= distinct);
        // No policy of the same total capacity beats Belady.
        let opt = ideal::simulate_ideal(&trace, sets * ways);
        prop_assert!(s.misses >= opt.misses);
    }

    #[test]
    fn reset_restores_initial_behaviour(trace in trace_strategy(), capacity in 1usize..16) {
        let mut cache = LruCache::new(capacity);
        let first = simulate(&mut cache, trace.iter().copied());
        cache.reset();
        let second = simulate(&mut cache, trace.iter().copied());
        prop_assert_eq!(first, second);
    }
}
