//! Minimal data-parallel utilities built on `crossbeam` scoped threads.
//!
//! The workspace's allowed dependency set includes `crossbeam` but not a
//! full work-stealing runtime, so this crate provides the four primitives the
//! rest of `projtile` actually needs, in the data-parallel style the HPC
//! guides recommend (independent work items, no shared mutable state,
//! deterministic output order):
//!
//! * [`par_map`] — apply a function to every element of a slice in parallel,
//!   returning results in input order;
//! * [`par_map_indexed`] — the same, with the element index passed through
//!   (used for parameter sweeps where the index identifies the configuration);
//! * [`par_map_with`] — the same, with a per-worker state created once per
//!   chunk and threaded through that chunk's items in order (used for
//!   warm-started LP sweeps, where the state is a solver context whose warm
//!   starts compound along the chunk);
//! * [`par_reduce`] — parallel map-fold: each worker folds its own chunk and
//!   only the per-chunk partial results are combined on the calling thread.
//!
//! Work is split into contiguous chunks, one per worker thread, which is the
//! right shape for this workspace: every parallel call site (the `2^d`
//! Theorem-2 subset sweep, parameter sweeps over cache sizes, batched cache
//! simulations) has items of comparable cost. Inputs smaller than
//! [`PARALLEL_THRESHOLD`] are processed sequentially to avoid paying thread
//! start-up cost on tiny workloads.
//!
//! A panic inside a worker is re-raised on the calling thread with its
//! **original payload** (via [`std::panic::resume_unwind`]), so assertion
//! messages from inside parallel sweeps survive intact. If several workers
//! panic, the payload of the lowest-indexed chunk wins deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Inputs shorter than this are processed on the calling thread.
pub const PARALLEL_THRESHOLD: usize = 16;

/// Number of worker threads used by the parallel primitives.
///
/// Respects the `PROJTILE_THREADS` environment variable when set to a positive
/// integer; otherwise uses the machine's available parallelism. The setting is
/// read and parsed **once** per process and cached: later changes to the
/// environment variable have no effect, which keeps concurrently-running
/// callers (and tests) from racing on `set_var`/`remove_var`. An invalid
/// setting (zero, or not an integer) is reported loudly on stderr and ignored.
pub fn num_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| num_threads_from(std::env::var("PROJTILE_THREADS").ok().as_deref()))
}

/// The uncached policy behind [`num_threads`]: resolves an optional
/// `PROJTILE_THREADS` setting to a worker count, warning on invalid values.
fn num_threads_from(setting: Option<&str>) -> usize {
    if let Some(raw) = setting {
        match parse_thread_setting(raw) {
            Ok(n) => return n,
            Err(why) => {
                eprintln!(
                    "projtile-par: ignoring invalid PROJTILE_THREADS={raw:?}: {why}; \
                     using available parallelism"
                );
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a `PROJTILE_THREADS` value: a positive integer, or an error
/// explaining why the setting is unusable.
fn parse_thread_setting(raw: &str) -> Result<usize, &'static str> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err("thread count must be at least 1"),
        Ok(n) => Ok(n),
        Err(_) => Err("not an unsigned integer"),
    }
}

/// Runs `worker` over one contiguous chunk per thread and returns the
/// per-chunk results in chunk order. `worker` receives the chunk's base index
/// and the chunk itself. Panics in any worker are re-raised on the calling
/// thread with the original payload (first chunk wins).
///
/// The caller guarantees `items` is non-empty and that a parallel run is
/// worthwhile; the sequential small-input path lives in the public wrappers.
// lint: allow(L008) expect: scoped worker threads are always joined and cannot outlive the scope
fn run_chunked<T, R, W>(items: &[T], chunk_size: usize, worker: W) -> Vec<R>
where
    T: Sync,
    R: Send,
    W: Fn(usize, &[T]) -> R + Sync,
{
    let num_chunks = items.len().div_ceil(chunk_size);
    let outcome = crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(num_chunks);
        for (w, chunk) in items.chunks(chunk_size).enumerate() {
            let worker = &worker;
            let base = w * chunk_size;
            handles.push(scope.spawn(move |_| worker(base, chunk)));
        }
        // Join every handle explicitly so a panicking worker surfaces here
        // (as an `Err` carrying its payload) instead of tearing down the
        // scope with a generic "a scoped thread panicked" message.
        let mut out: Vec<Option<R>> = Vec::with_capacity(num_chunks);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(r) => out.push(Some(r)),
                Err(payload) => {
                    out.push(None);
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        (out, first_panic)
    });
    let (results, first_panic) = match outcome {
        Ok(pair) => pair,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|slot| slot.expect("non-panicking chunk produced a result"))
        .collect()
}

/// Applies `f` to every element of `items` and collects the results in input
/// order, splitting the work across [`num_threads`] scoped threads.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], but `f` also receives the element's index.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, || (), |(), i, item| f(i, item))
}

/// Like [`par_map_indexed`], but each worker owns a mutable state created by
/// `init` once per contiguous chunk and passed to `f` for every item of that
/// chunk, **in index order within the chunk**.
///
/// This is the batched-sweep primitive: when the state is a warm-started LP
/// solver context, consecutive items of a chunk re-enter simplex from the
/// previous item's optimal basis, so warm starts compound along the chunk
/// while chunks stay independent. Results are returned in input order.
///
/// The state is an **accelerator, not an accumulator**: chunk boundaries
/// (and therefore the number of `init` calls) depend on the input length and
/// the thread count, so each item's result must not depend on which items
/// the state has already seen — `f(&mut init(), i, item)` must equal
/// `f(&mut s, i, item)` for a state `s` that already processed any prefix.
/// Warm-started solver contexts guarantee exactly that (canonicalized
/// results are path-independent); a running sum would not.
pub fn par_map_with<T, R, S, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = num_threads().min(n.max(1));
    if n < PARALLEL_THRESHOLD || workers <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    let chunk_size = n.div_ceil(workers);
    let per_chunk: Vec<Vec<R>> = run_chunked(items, chunk_size, |base, chunk| {
        let mut state = init();
        chunk
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, base + i, t))
            .collect()
    });
    let mut collected = Vec::with_capacity(n);
    for chunk in per_chunk {
        collected.extend(chunk);
    }
    collected
}

/// Spawns `workers` scoped threads, each running `f(worker_index)`, and
/// returns the results in worker-index order once all have finished.
///
/// This is the **concurrent-callers** primitive, complementing the
/// data-parallel `par_map` family: where `par_map` splits one workload
/// across threads, `fan_out` models several independent clients hammering a
/// shared resource at once (a `SharedEngine` front, a pool) — exactly the
/// shape of the multi-threaded stress tests and the `engine/concurrent`
/// bench workloads. Always spawns real threads, regardless of
/// [`PARALLEL_THRESHOLD`] and `PROJTILE_THREADS` (a stress test asking for 4
/// workers means 4 threads). A panic in any worker is re-raised on the
/// calling thread with its original payload (lowest worker index wins).
// lint: allow(L008) expect: scoped worker threads are always joined and cannot outlive the scope
pub fn fan_out<R, F>(workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if workers == 0 {
        return Vec::new();
    }
    let outcome = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move |_| f(w))
            })
            .collect();
        let mut out: Vec<Option<R>> = Vec::with_capacity(workers);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(r) => out.push(Some(r)),
                Err(payload) => {
                    out.push(None);
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        (out, first_panic)
    });
    let (results, first_panic) = match outcome {
        Ok(pair) => pair,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|slot| slot.expect("non-panicking worker produced a result"))
        .collect()
}

/// Parallel map-reduce: applies `map` to every element and folds the results
/// with the associative `combine`, starting from `identity`.
///
/// Each worker folds its **own chunk** on its own thread (seeding the fold
/// with its chunk's first mapped value), and only the per-chunk partial
/// results are combined on the calling thread, in chunk-index order. No
/// intermediate `Vec` of mapped values is materialized. `combine` must be
/// associative and `identity` its neutral element; given that, the result
/// equals the sequential left fold, and is deterministic for a fixed thread
/// count because both the intra-chunk folds and the final combine run in
/// index order.
pub fn par_reduce<T, R, M, C>(items: &[T], identity: R, map: M, combine: C) -> R
where
    T: Sync,
    R: Send,
    M: Fn(&T) -> R + Sync,
    C: Fn(R, R) -> R + Sync,
{
    let n = items.len();
    let workers = num_threads().min(n.max(1));
    if n < PARALLEL_THRESHOLD || workers <= 1 {
        return items.iter().fold(identity, |acc, t| combine(acc, map(t)));
    }
    let chunk_size = n.div_ceil(workers);
    let partials: Vec<R> = run_chunked(items, chunk_size, |_base, chunk| {
        // Chunks are non-empty by construction, so the fold can be seeded
        // with the first mapped value; associativity makes this equal to a
        // fold from the identity.
        let (first, rest) = chunk.split_first().expect("chunks are non-empty");
        rest.iter().fold(map(first), |acc, t| combine(acc, map(t)))
    });
    partials.into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that read or mutate process-global state (environment
    /// variables): `cargo test` runs tests of one binary concurrently, so
    /// unserialized `set_var`/`remove_var` calls race.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_small_input_sequential_path() {
        let items = vec![1, 2, 3];
        assert_eq!(par_map(&items, |&x| x + 1), vec![2, 3, 4]);
        let empty: Vec<i32> = vec![];
        assert_eq!(par_map(&empty, |&x| x), Vec::<i32>::new());
    }

    #[test]
    fn par_map_indexed_passes_correct_indices() {
        let items: Vec<u32> = (0..500).map(|i| i * 2).collect();
        let out = par_map_indexed(&items, |i, &x| (i, x));
        for (i, (idx, val)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*val, items[i]);
        }
    }

    #[test]
    fn par_map_with_threads_state_in_chunk_order() {
        // The state records every index it sees; within each chunk the
        // indices must be consecutive and increasing, and the concatenated
        // output must be in global order.
        let items: Vec<u64> = (0..300).collect();
        let out = par_map_with(&items, Vec::new, |seen: &mut Vec<usize>, i, &x| {
            if let Some(&last) = seen.last() {
                assert_eq!(i, last + 1, "chunk items visited out of order");
            }
            seen.push(i);
            (i, x, seen.len())
        });
        for (i, (idx, val, nth)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*val, items[i]);
            // nth-in-chunk restarts at 1 on every chunk boundary.
            assert!(*nth >= 1);
        }
    }

    #[test]
    fn par_map_with_sequential_path_uses_one_state() {
        let items = vec![10u64, 20, 30];
        let out = par_map_with(
            &items,
            || 0u64,
            |acc, _, &x| {
                *acc += x;
                *acc
            },
        );
        assert_eq!(out, vec![10, 30, 60]);
    }

    #[test]
    fn par_reduce_sums() {
        let items: Vec<u64> = (1..=1000).collect();
        let total = par_reduce(&items, 0u64, |&x| x, |a, b| a + b);
        assert_eq!(total, 500_500);
    }

    #[test]
    fn par_reduce_with_non_scalar_accumulator() {
        let items: Vec<u64> = (0..100).collect();
        let maxima = par_reduce(
            &items,
            (0u64, 0u64),
            |&x| (x, x % 7),
            |a, b| (a.0.max(b.0), a.1.max(b.1)),
        );
        assert_eq!(maxima, (99, 6));
    }

    #[test]
    fn par_reduce_matches_sequential_fold() {
        for n in [0usize, 1, 15, 16, 17, 100, 257, 1000] {
            let items: Vec<u64> = (0..n as u64).collect();
            let par = par_reduce(&items, 1u64, |&x| x + 1, |a, b| a.wrapping_mul(b));
            let seq = items.iter().fold(1u64, |acc, &x| acc.wrapping_mul(x + 1));
            assert_eq!(par, seq, "mismatch at n = {n}");
        }
    }

    #[test]
    fn worker_panic_payload_is_preserved() {
        let items: Vec<u64> = (0..200).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                assert!(x != 137, "descriptive panic message for item {x}");
                x
            })
        }))
        .expect_err("the sweep must panic");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a message");
        assert!(
            msg.contains("descriptive panic message for item 137"),
            "original payload lost: {msg:?}"
        );
    }

    #[test]
    fn fan_out_runs_every_worker_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        let results = fan_out(4, |w| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            live.fetch_sub(1, Ordering::SeqCst);
            w * 10
        });
        assert_eq!(results, vec![0, 10, 20, 30]);
        // All four workers were alive at once (real threads, no threshold).
        assert_eq!(peak.load(Ordering::SeqCst), 4);
        assert_eq!(fan_out(0, |w| w), Vec::<usize>::new());
    }

    #[test]
    fn fan_out_preserves_panic_payloads() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fan_out(3, |w| {
                assert!(w != 1, "worker {w} panics descriptively");
                w
            })
        }))
        .expect_err("the fan-out must panic");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a message");
        assert!(msg.contains("worker 1 panics descriptively"), "{msg:?}");
    }

    #[test]
    fn num_threads_is_positive_and_stable() {
        let _guard = ENV_LOCK.lock();
        let first = num_threads();
        assert!(first >= 1);
        // Cached: a later (invalid) env setting cannot change the answer.
        std::env::set_var("PROJTILE_THREADS", "0");
        assert_eq!(num_threads(), first);
        std::env::remove_var("PROJTILE_THREADS");
    }

    #[test]
    fn thread_setting_parsing() {
        assert_eq!(parse_thread_setting("1"), Ok(1));
        assert_eq!(parse_thread_setting(" 8 "), Ok(8));
        assert!(parse_thread_setting("0").is_err());
        assert!(parse_thread_setting("-3").is_err());
        assert!(parse_thread_setting("many").is_err());
        assert!(parse_thread_setting("").is_err());
    }

    #[test]
    fn invalid_settings_fall_back_to_machine_parallelism() {
        let fallback = num_threads_from(None);
        assert!(fallback >= 1);
        assert_eq!(num_threads_from(Some("0")), fallback);
        assert_eq!(num_threads_from(Some("garbage")), fallback);
        assert_eq!(num_threads_from(Some("6")), 6);
    }

    #[test]
    fn results_identical_to_sequential_for_various_sizes() {
        for n in [0usize, 1, 15, 16, 17, 100, 257] {
            let items: Vec<usize> = (0..n).collect();
            let par = par_map(&items, |&x| x * 3 + 1);
            let seq: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(par, seq, "mismatch at n = {n}");
        }
    }
}
