//! Minimal data-parallel utilities built on `crossbeam` scoped threads.
//!
//! The workspace's allowed dependency set includes `crossbeam` but not a
//! full work-stealing runtime, so this crate provides the three primitives the
//! rest of `projtile` actually needs, in the data-parallel style the HPC
//! guides recommend (independent work items, no shared mutable state,
//! deterministic output order):
//!
//! * [`par_map`] — apply a function to every element of a slice in parallel,
//!   returning results in input order;
//! * [`par_map_indexed`] — the same, with the element index passed through
//!   (used for parameter sweeps where the index identifies the configuration);
//! * [`par_reduce`] — parallel map followed by an associative fold.
//!
//! Work is split into contiguous chunks, one per worker thread, which is the
//! right shape for this workspace: every parallel call site (the `2^d`
//! Theorem-2 subset sweep, parameter sweeps over cache sizes, batched cache
//! simulations) has items of comparable cost. Inputs smaller than
//! [`PARALLEL_THRESHOLD`] are processed sequentially to avoid paying thread
//! start-up cost on tiny workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

use parking_lot::Mutex;

/// Inputs shorter than this are processed on the calling thread.
pub const PARALLEL_THRESHOLD: usize = 16;

/// Number of worker threads used by the parallel primitives.
///
/// Respects the `PROJTILE_THREADS` environment variable when set to a positive
/// integer; otherwise uses the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("PROJTILE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every element of `items` and collects the results in input
/// order, splitting the work across [`num_threads`] scoped threads.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], but `f` also receives the element's index.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = num_threads().min(n.max(1));
    if n < PARALLEL_THRESHOLD || workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // One contiguous chunk per worker; results are stitched back in order.
    let chunk_size = n.div_ceil(workers);
    let num_chunks = n.div_ceil(chunk_size);
    let results: Mutex<Vec<Option<Vec<R>>>> = Mutex::new((0..num_chunks).map(|_| None).collect());
    crossbeam::scope(|scope| {
        for (w, chunk) in items.chunks(chunk_size).enumerate() {
            let f = &f;
            let results = &results;
            let base = w * chunk_size;
            scope.spawn(move |_| {
                let out: Vec<R> = chunk
                    .iter()
                    .enumerate()
                    .map(|(i, t)| f(base + i, t))
                    .collect();
                results.lock()[w] = Some(out);
            });
        }
    })
    .expect("worker thread panicked");

    let mut collected = Vec::with_capacity(n);
    for slot in results.into_inner() {
        collected.extend(slot.expect("every chunk produces results"));
    }
    collected
}

/// Parallel map-reduce: applies `map` to every element and folds the results
/// with the associative `combine`, starting from `identity`.
///
/// `combine` must be associative and `identity` its neutral element; the fold
/// order across chunks is unspecified (but deterministic for a fixed thread
/// count because chunks are combined in index order).
pub fn par_reduce<T, R, M, C>(items: &[T], identity: R, map: M, combine: C) -> R
where
    T: Sync,
    R: Send + Clone,
    M: Fn(&T) -> R + Sync,
    C: Fn(R, R) -> R,
{
    let mapped = par_map(items, map);
    mapped.into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_small_input_sequential_path() {
        let items = vec![1, 2, 3];
        assert_eq!(par_map(&items, |&x| x + 1), vec![2, 3, 4]);
        let empty: Vec<i32> = vec![];
        assert_eq!(par_map(&empty, |&x| x), Vec::<i32>::new());
    }

    #[test]
    fn par_map_indexed_passes_correct_indices() {
        let items: Vec<u32> = (0..500).map(|i| i * 2).collect();
        let out = par_map_indexed(&items, |i, &x| (i, x));
        for (i, (idx, val)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*val, items[i]);
        }
    }

    #[test]
    fn par_reduce_sums() {
        let items: Vec<u64> = (1..=1000).collect();
        let total = par_reduce(&items, 0u64, |&x| x, |a, b| a + b);
        assert_eq!(total, 500_500);
    }

    #[test]
    fn par_reduce_with_non_scalar_accumulator() {
        let items: Vec<u64> = (0..100).collect();
        let maxima = par_reduce(
            &items,
            (0u64, 0u64),
            |&x| (x, x % 7),
            |a, b| (a.0.max(b.0), a.1.max(b.1)),
        );
        assert_eq!(maxima, (99, 6));
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn results_identical_to_sequential_for_various_sizes() {
        for n in [0usize, 1, 15, 16, 17, 100, 257] {
            let items: Vec<usize> = (0..n).collect();
            let par = par_map(&items, |&x| x * 3 + 1);
            let seq: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(par, seq, "mismatch at n = {n}");
        }
    }
}
