//! Exact and approximate logarithms for loop-bound exponents.
//!
//! The arbitrary-bound theory of the paper works in "log base M" space: every
//! loop bound `L_i` enters the linear programs as `β_i = log_M L_i`, and every
//! tile dimension leaves them as `b_i = M^{λ_i}`. To keep the optimality and
//! tightness checks exact, this module represents these logarithms as
//! [`Rational`]s whenever `L` and `M` are powers of a common integer base
//! (which covers every instance used in the tests and benchmarks: powers of
//! two), and falls back to a controlled continued-fraction approximation
//! otherwise.

use crate::{BigInt, Rational};

/// Returns the exact integer `k`-th root of `x` if `x` is a perfect `k`-th
/// power, i.e. the `r` with `r^k == x`.
pub fn integer_root(x: u128, k: u32) -> Option<u128> {
    if k == 0 {
        return None;
    }
    if x == 0 || x == 1 || k == 1 {
        return Some(x);
    }
    // Binary search on r in [1, x].
    let mut lo: u128 = 1;
    let mut hi: u128 = 1u128 << (128 / k).min(127);
    while hi.checked_pow(k).is_some_and(|p| p < x) {
        hi = hi.saturating_mul(2);
    }
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        match mid.checked_pow(k) {
            Some(p) if p == x => return Some(mid),
            Some(p) if p < x => lo = mid + 1,
            _ => {
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
        }
    }
    None
}

/// Decomposes `x >= 2` as `c^e` with `e` maximal (so `c` is not itself a
/// perfect power). Returns `(c, e)`.
// lint: allow(L008) asserts pin the n >= 2 precondition established by exact_log
pub fn perfect_power_decomposition(x: u128) -> (u128, u32) {
    assert!(x >= 2, "perfect power decomposition requires x >= 2");
    let max_exp = 127 - x.leading_zeros().min(126);
    for e in (2..=max_exp.max(2)).rev() {
        if let Some(r) = integer_root(x, e) {
            if r >= 2 {
                return (r, e);
            }
        }
    }
    (x, 1)
}

/// Exact `log_base(x)` as a rational, if `x` and `base` are both integer
/// powers of a common integer `c >= 2`. Returns `Some(p/q)` where `x = c^p`
/// and `base = c^q`. `log_base(1) == 0` for any base `>= 2`.
pub fn exact_log(x: u128, base: u128) -> Option<Rational> {
    if base < 2 || x == 0 {
        return None;
    }
    if x == 1 {
        return Some(Rational::zero());
    }
    let (c, q) = perfect_power_decomposition(base);
    // Check whether x is a power of c.
    let mut acc: u128 = 1;
    let mut p: u32 = 0;
    while acc < x {
        acc = acc.checked_mul(c)?;
        p += 1;
    }
    if acc == x {
        Some(Rational::from_frac(BigInt::from(p), BigInt::from(q)))
    } else {
        None
    }
}

/// Exact base-2 logarithm of `x`, if `x` is a power of two.
pub fn log2_exact(x: u128) -> Option<u32> {
    if x != 0 && x.is_power_of_two() {
        Some(x.trailing_zeros())
    } else {
        None
    }
}

/// `β = log_M L` as a rational: exact if possible (see [`exact_log`]),
/// otherwise the best continued-fraction approximation of the floating-point
/// logarithm with denominator at most `2^20`.
///
/// # Panics
/// Panics if `m < 2` or `l == 0`.
// lint: allow(L008) asserts pin m >= 2 and bound >= 1, validated at the engine boundary
pub fn beta(l: u128, m: u128) -> Rational {
    assert!(m >= 2, "cache size M must be at least 2");
    assert!(l >= 1, "loop bound L must be at least 1");
    if let Some(exact) = exact_log(l, m) {
        return exact;
    }
    let approx = (l as f64).ln() / (m as f64).ln();
    Rational::approx_f64(approx, 1 << 20).unwrap_or_else(Rational::zero)
}

/// `M^r` computed exactly when possible: requires `r = p/q >= 0` and `M` to be
/// a perfect `q`-th power. Returns `None` otherwise or on overflow.
pub fn exact_pow(m: u128, r: &Rational) -> Option<u128> {
    if r.is_negative() {
        return None;
    }
    if r.is_zero() {
        return Some(1);
    }
    let p = r.numer().to_u64()?;
    let q = r.denom().to_u64()?;
    let root = integer_root(m, u32::try_from(q).ok()?)?;
    let exp = u32::try_from(p).ok()?;
    root.checked_pow(exp)
}

/// `M^r` as a floating-point number (for reporting and tile rounding when an
/// exact power does not exist).
pub fn approx_pow(m: u128, r: &Rational) -> f64 {
    (m as f64).powf(r.to_f64())
}

/// Floor of `M^r` as an integer, preferring the exact path.
pub fn floor_pow(m: u128, r: &Rational) -> u128 {
    if let Some(exact) = exact_pow(m, r) {
        return exact;
    }
    let approx = approx_pow(m, r);
    if approx >= u128::MAX as f64 {
        u128::MAX
    } else {
        approx.floor().max(1.0) as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio;

    #[test]
    fn integer_root_basics() {
        assert_eq!(integer_root(27, 3), Some(3));
        assert_eq!(integer_root(28, 3), None);
        assert_eq!(integer_root(1, 5), Some(1));
        assert_eq!(integer_root(0, 5), Some(0));
        assert_eq!(integer_root(1024, 10), Some(2));
        assert_eq!(integer_root(1 << 40, 4), Some(1 << 10));
        assert_eq!(integer_root(10, 0), None);
        assert_eq!(integer_root(7, 1), Some(7));
    }

    #[test]
    fn perfect_power() {
        assert_eq!(perfect_power_decomposition(64), (2, 6));
        assert_eq!(perfect_power_decomposition(36), (6, 2));
        assert_eq!(perfect_power_decomposition(7), (7, 1));
        assert_eq!(perfect_power_decomposition(2), (2, 1));
        assert_eq!(perfect_power_decomposition(1000000), (10, 6));
    }

    #[test]
    fn exact_log_powers_of_two() {
        assert_eq!(exact_log(1, 1024), Some(Rational::zero()));
        assert_eq!(exact_log(32, 1024), Some(ratio(1, 2)));
        assert_eq!(exact_log(1024, 1024), Some(Rational::one()));
        assert_eq!(exact_log(1 << 20, 1 << 10), Some(ratio(2, 1)));
        assert_eq!(exact_log(2, 1024), Some(ratio(1, 10)));
        assert_eq!(exact_log(3, 1024), None);
        assert_eq!(exact_log(9, 27), Some(ratio(2, 3)));
        assert_eq!(exact_log(0, 1024), None);
        assert_eq!(exact_log(8, 1), None);
    }

    #[test]
    fn log2_exact_works() {
        assert_eq!(log2_exact(1), Some(0));
        assert_eq!(log2_exact(4096), Some(12));
        assert_eq!(log2_exact(3), None);
        assert_eq!(log2_exact(0), None);
    }

    #[test]
    fn beta_exact_and_approx() {
        assert_eq!(beta(32, 1024), ratio(1, 2));
        assert_eq!(beta(1, 1024), Rational::zero());
        // Non power-of-two: approximate but close.
        let b = beta(1000, 1024);
        assert!((b.to_f64() - (1000f64).ln() / (1024f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn exact_pow_roundtrip() {
        assert_eq!(exact_pow(1024, &ratio(1, 2)), Some(32));
        assert_eq!(exact_pow(1024, &ratio(3, 2)), Some(32768));
        assert_eq!(exact_pow(1024, &Rational::zero()), Some(1));
        assert_eq!(exact_pow(1000, &ratio(1, 3)), Some(10));
        assert_eq!(exact_pow(1000, &ratio(1, 7)), None);
        assert_eq!(exact_pow(1024, &ratio(-1, 2)), None);
    }

    #[test]
    fn floor_pow_prefers_exact() {
        assert_eq!(floor_pow(1024, &ratio(1, 2)), 32);
        assert_eq!(floor_pow(1024, &Rational::one()), 1024);
        // Approximate path still sane.
        let v = floor_pow(1000, &ratio(1, 2));
        assert!((31..=32).contains(&v));
    }

    #[test]
    fn beta_consistency_with_pow() {
        for &(l, m) in &[(16u128, 256u128), (64, 4096), (2, 65536), (1, 1024)] {
            let b = beta(l, m);
            assert_eq!(exact_pow(m, &b), Some(l));
        }
    }
}
